"""Setuptools entry point.

A ``setup.py`` is kept alongside ``pyproject.toml`` so that editable installs
work in offline environments whose setuptools lacks PEP 660 wheel support.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "LANTERN reproduction: natural language generation for query execution plans "
        "(SIGMOD 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
