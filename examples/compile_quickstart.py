"""Quickstart for LANTERN-ZERO: mmap boot, int8 decode, compiled narrations.

Walks the zero-work serving stack in one process:

1. train a small NEURAL-LANTERN on the DBLP workload and save it with
   ``weights_layout="mmap"`` (raw aligned bytes instead of npz);
2. boot from the mapped checkpoint: parameters come back as read-only
   shared views — no decompression, no copies — and ``/metrics``-style
   memory info shows the mapping;
3. flip the model to ``int8`` inference (per-row absmax scales, float32
   accumulation) and show the decode stays token-identical on real
   signatures;
4. pre-decode the workload with :func:`repro.nlg.compile.compile_plans`,
   freeze the ranked candidates into a compiled cache file, mount it in a
   fresh facade, and narrate the whole workload **without a single beam
   search**.

Run with:  python examples/compile_quickstart.py

The command-line equivalent (what you would run operationally):

    python -m repro.nlg.train --workload dblp --weights-layout mmap --out ckpt/dblp
    python -m repro.nlg.compile --checkpoint ckpt/dblp --workload dblp --out dblp.cache.json
    python -m repro.service --checkpoint ckpt/dblp --compiled-cache dblp.cache.json
"""

import tempfile
import time
from pathlib import Path

from repro.core import Lantern
from repro.core.acts import align_acts_with_narration, decompose_lot_into_acts
from repro.nlg.cache import CompiledCache
from repro.nlg.compile import compile_plans
from repro.nlg.train import train_workload_lantern


def main() -> None:
    print("=" * 72)
    print("1. Train a small NEURAL-LANTERN and save it in the mmap layout")
    print("=" * 72)
    lantern, database, queries, _, _ = train_workload_lantern(
        queries=12, hidden_dim=32, attention_dim=16, train_cap=160, validation_cap=32
    )
    trees = [lantern.plan_for_sql(database, sql) for sql in queries[:6]]
    with tempfile.TemporaryDirectory() as scratch:
        checkpoint = Path(scratch) / "dblp-zero"
        lantern.save(checkpoint, weights_layout="mmap")
        names = sorted(f.name for f in checkpoint.iterdir())
        print(f"saved {names} (weights are raw 64-byte-aligned bytes)\n")

        print("=" * 72)
        print("2. Boot from the mapping: read-only shared views, zero copies")
        print("=" * 72)
        started = time.perf_counter()
        loaded = Lantern.load(checkpoint)
        load_ms = (time.perf_counter() - started) * 1000
        info = loaded.neural.model.weights_memory_info()
        print(
            f"loaded in {load_ms:.1f} ms — {info['parameter_count']} parameters, "
            f"{info['bytes'] / 1024:.0f} KiB, mmap_backed={info['mmap_backed']}\n"
        )

        print("=" * 72)
        print("3. int8 inference: same tokens, smaller matmuls")
        print("=" * 72)
        model = loaded.neural.model
        signatures = []
        for tree in trees[:3]:
            narration = loaded.describe_plan(tree)  # rule pass exposes the acts
            acts = align_acts_with_narration(
                decompose_lot_into_acts(narration.lot), narration
            )
            signatures.extend(act.input_tokens() for act in acts)
        float64_decodes = model.beam_decode_batch(signatures, beam_size=2)
        model.quantize("int8")
        int8_decodes = model.beam_decode_batch(signatures, beam_size=2)
        model.dequantize()
        agreement = sum(a == b for a, b in zip(float64_decodes, int8_decodes))
        print(
            f"token agreement on {len(signatures)} act signatures: "
            f"{agreement}/{len(signatures)}\n"
        )

        print("=" * 72)
        print("4. Compile the workload, mount it, narrate with zero matmuls")
        print("=" * 72)
        compiled = compile_plans(loaded, trees)
        cache_file = Path(scratch) / "dblp.cache.json"
        compiled.save(cache_file)
        print(
            f"compiled {len(compiled)} act signatures "
            f"(beam={compiled.beam_size}, precision={compiled.precision}) "
            f"into {cache_file.name}"
        )

        served = Lantern.load(checkpoint)
        served.neural.decode_cache.mount_compiled(CompiledCache.load(cache_file))
        for tree in trees:
            narration = served.describe_plan(tree, mode="neural")
        stats = served.neural.decode_cache.stats()
        print(f"served {len(trees)} plans — cache stats: {stats}")
        print("last narration:", narration.text[:140], "...")
        assert stats["compiled_hits"] > 0, "expected compiled-tier hits"


if __name__ == "__main__":
    main()
