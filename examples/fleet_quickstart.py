"""Quickstart for LANTERN-FLEET: sharded multi-process serving.

Boots a 2-worker fleet in-process (rule-based narration, ephemeral ports),
then walks the operational surface from ``docs/operations.md``: signature
routing and shard stickiness, a mixed batch split across shards and
rejoined in order, a worker crash with automatic respawn into the same
shard, a draining rolling restart, the grafted router→worker traces, and
the aggregated metrics document.

Run with:  python examples/fleet_quickstart.py

To serve standalone instead (router on :8600 by default):

    python -m repro.service.fleet --workers 4
    python -m repro.service.fleet --workers 4 --checkpoint ckpt/dblp
"""

import time

from repro.service import LanternClient
from repro.service.fleet import FleetConfig, LanternFleet
from repro.workloads import build_dblp_database

QUERIES = [
    "SELECT count(*) FROM publication p WHERE p.year > 2005",
    """
    SELECT i.venue, count(*) AS papers
    FROM inproceedings i, publication p
    WHERE i.paper_key = p.pub_key AND p.year > 2005
    GROUP BY i.venue
    """,
    "SELECT p.title FROM publication p ORDER BY p.year DESC LIMIT 10",
]


def main() -> None:
    database = build_dblp_database()
    plans = [database.explain(query, output_format="json") for query in QUERIES]

    fleet = LanternFleet(FleetConfig(port=0, num_workers=2, heartbeat_interval_s=0.2))
    host, port = fleet.start()
    client = LanternClient(f"http://{host}:{port}")
    print(f"LANTERN-FLEET router up on http://{host}:{port}")
    for worker_id, handle in sorted(fleet.workers.items()):
        print(f"  worker {worker_id}: http://{handle.host}:{handle.port} (pid {handle.process.pid})")

    print()
    print("=" * 72)
    print("1. Signature routing: the same plan shape always hits the same shard")
    print("=" * 72)
    for plan in plans:
        first = client.narrate(plan)
        again = client.narrate(plan)
        assert first["worker_id"] == again["worker_id"]
        print(f"  {first['worker_id']}  {first['narration']['text'][:96]}...")

    print()
    print("=" * 72)
    print("2. One batch, split per shard, rejoined in request order")
    print("=" * 72)
    batch = client.narrate_batch(plans + plans)
    shards = [item["worker_id"] for item in batch["results"]]
    print(f"  {batch['count']} plans answered by shards {shards}")
    print(f"  per-shard counts: {batch['workers']}")

    print()
    print("=" * 72)
    print("3. Crash a worker: requests re-route, the heartbeat respawns it")
    print("=" * 72)
    victim_id = shards[0]
    victim = fleet.workers[victim_id]
    victim.process.kill()
    victim.process.wait(timeout=10)
    result = client.narrate(plans[0])  # confirmed-dead: safely re-routed
    print(f"  {victim_id} killed; request answered by {result['worker_id']}")
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        successor = fleet.workers[victim_id]
        if successor.alive and successor.generation == 2 and victim_id in fleet.ring:
            break
        time.sleep(0.1)
    print(f"  {victim_id} respawned as generation {fleet.workers[victim_id].generation}")
    back = client.narrate(plans[0])
    print(f"  shard ownership restored: routed to {back['worker_id']}")

    print()
    print("=" * 72)
    print("4. Draining rolling restart (what POST /admin/restart does)")
    print("=" * 72)
    status, body = client.request_json("POST", "/admin/restart", {})
    generations = {
        worker_id: handle.generation for worker_id, handle in sorted(fleet.workers.items())
    }
    print(f"  HTTP {status}: restarted {body['restarted']}, generations now {generations}")

    print()
    print("=" * 72)
    print("5. Traces cross the process boundary (router → worker span trees)")
    print("=" * 72)
    traced = client.narrate(plans[1])
    for trace in client.trace(limit=16)["slowest"]:
        if trace.get("trace_id") != traced["trace_id"]:
            continue
        stages = [child["name"] for child in trace.get("children", [])]
        print(f"  router: {trace['name']} ({trace['duration_ms']} ms) stages={stages}")
        for span in trace.get("worker_spans", []):
            print(f"    worker {span['worker_id']}: {span['name']} ({span['duration_ms']} ms)")

    print()
    print("=" * 72)
    print("6. Aggregated metrics: one scrape for the whole fleet")
    print("=" * 72)
    fleet_stats = client.metrics()["fleet"]
    print(f"  workers alive: {fleet_stats['alive']}/{fleet_stats['workers']}")
    print(f"  respawns: {fleet_stats['respawns']}  restarts: {fleet_stats['restarts']}")
    for worker_id, shard in sorted(fleet_stats["per_shard"].items()):
        print(
            f"  {worker_id}: generation {shard['generation']}, "
            f"routed {shard['routed']}, requests {shard.get('requests_total', 0)}"
        )

    client.close()
    fleet.stop()
    print("\nfleet stopped cleanly")


if __name__ == "__main__":
    main()
