"""Train NEURAL-LANTERN end to end and compare it with RULE-LANTERN.

Reproduces the §6 pipeline at laptop scale: generate random queries over the
DBLP schema, build the act→description training set (with paraphrase
diversification and Table 1 tags), train the QEP2Seq model, and then narrate
an unseen query with both generators so the wording difference is visible.

Run with:  python examples/train_neural_lantern.py          (about a minute)
"""

from repro.core import Lantern, LanternConfig
from repro.nlg.neural_lantern import NeuralLantern
from repro.nlg.seq2seq import Seq2SeqConfig
from repro.workloads import build_dblp_database
from repro.workloads.dblp import DBLP_JOIN_GRAPH
from repro.workloads.generator import RandomQueryGenerator


def main() -> None:
    database = build_dblp_database(publication_count=600)
    generator = RandomQueryGenerator(database, DBLP_JOIN_GRAPH, seed=1)
    training_queries = [generated.sql for generated in generator.generate(40)]

    print(f"training NEURAL-LANTERN on {len(training_queries)} random DBLP queries ...")
    neural, result = NeuralLantern.fit(
        workloads=[(database, training_queries, "postgresql", "dblp")],
        config=Seq2SeqConfig(hidden_dim=64, attention_dim=32, learning_rate=0.01, batch_size=8),
        embedding_family="word2vec",
        pretrained_embeddings=True,
        epochs=10,
    )
    final = result.history.final
    print(
        f"dataset: {result.dataset.size} samples | "
        f"final validation loss {final.validation_loss:.3f}, accuracy {final.validation_accuracy:.2f}"
    )

    lantern = Lantern(neural=neural, config=LanternConfig(frequency_threshold=3))
    unseen_query = (
        "SELECT i.venue, count(*) AS papers FROM inproceedings i, publication p "
        "WHERE i.paper_key = p.pub_key AND p.year > 2012 "
        "GROUP BY i.venue ORDER BY papers DESC LIMIT 5"
    )
    tree = lantern.plan_for_sql(database, unseen_query)

    print("\n--- RULE-LANTERN ---")
    print(lantern.render(lantern.describe_plan(tree, mode="rule")))
    print("\n--- NEURAL-LANTERN (diversified wording, same facts) ---")
    print(lantern.render(lantern.describe_plan(tree, mode="neural")))

    bleu = neural.test_bleu(result.dataset.validation_samples[:20], beam_size=2)
    print(f"\nvalidation BLEU (beam 2, 20 samples): {bleu:.1f}")


if __name__ == "__main__":
    main()
