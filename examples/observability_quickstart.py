"""Quickstart for LANTERN-SCOPE: traces, stage metrics, training telemetry.

Walks the observability layer in one process:

1. start a service with tracing on and a JSONL trace log, narrate a few
   plans, and fetch the slowest trace — a span tree covering admission,
   queue wait, batch assembly, the fused decode (with cache hit/miss and
   precision tags), and the response write;
2. read the same run as metrics: the JSON ``/metrics`` document's new
   ``stages`` histograms, then the Prometheus text exposition every
   scraper parses (``GET /metrics?format=prometheus``);
3. attach :class:`~repro.nlg.training.TelemetryHooks` to a tiny training
   run and replay the per-epoch throughput/gradient-norm stream it wrote.

Run with:  python examples/observability_quickstart.py

The command-line equivalents (what you would run operationally):

    python -m repro.service --trace-log traces.jsonl
    curl localhost:8080/trace
    curl 'localhost:8080/metrics?format=prometheus'
    python -m repro.nlg.train --workload dblp --telemetry run.jsonl --out ckpt
"""

import json
import tempfile
from pathlib import Path

from repro.obs import format_span_tree, read_events, validate_exposition
from repro.service import LanternClient, build_service

PLAN = {
    "Plan": {
        "Node Type": "Aggregate",
        "Strategy": "Hashed",
        "Plans": [
            {
                "Node Type": "Hash Join",
                "Hash Cond": "(a.id = w.author_key)",
                "Plans": [
                    {"Node Type": "Seq Scan", "Relation Name": "author"},
                    {
                        "Node Type": "Hash",
                        "Plans": [{"Node Type": "Seq Scan", "Relation Name": "writes"}],
                    },
                ],
            }
        ],
    }
}


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="lantern-scope-"))
    trace_log = workdir / "traces.jsonl"

    print("=" * 72)
    print("1. Trace a request end to end")
    print("=" * 72)
    service = build_service(port=0, trace_log=str(trace_log))
    host, port = service.start()
    client = LanternClient(f"http://{host}:{port}")
    try:
        for _ in range(5):
            result = client.narrate(PLAN)
        print(f"response carries its trace id: {result['trace_id']}")
        trace = client.trace(limit=1)["slowest"][0]
        print("slowest recent trace (GET /trace):")
        print(format_span_tree(trace, indent=1))
        decode = next(c for c in trace["children"] if c["name"] == "decode")
        print(f"decode tags: {decode['tags']}")

        print()
        print("=" * 72)
        print("2. The same run as metrics")
        print("=" * 72)
        metrics = client.metrics()
        print("per-stage latency histograms (JSON /metrics -> stages):")
        for stage, summary in metrics["stages"].items():
            print(f"  {stage:<16} p50 {summary['p50']:>8.3f} ms   p99 {summary['p99']:>8.3f} ms")
        exposition = client.prometheus_metrics()
        samples = validate_exposition(exposition)
        print(f"\nPrometheus exposition: {samples} samples, e.g.:")
        for line in exposition.splitlines():
            if line.startswith("lantern_stage_latency_seconds_count"):
                print(f"  {line}")
        print("\nscrape config:")
        print("  scrape_configs:")
        print("    - job_name: lantern")
        print("      metrics_path: /metrics")
        print("      params: {format: [prometheus]}")
        print(f"      static_configs: [{{targets: ['{host}:{port}']}}]")
    finally:
        client.close()
        service.stop()

    sampled = list(read_events(trace_log))
    print(f"\n--trace-log mirrored {len(sampled)} traces to {trace_log}")

    print()
    print("=" * 72)
    print("3. Training telemetry")
    print("=" * 72)
    from repro.nlg.train import main as train_main

    telemetry = workdir / "run.jsonl"
    train_main(
        [
            "--workload", "dblp",
            "--queries", "3",
            "--epochs", "2",
            "--hidden-dim", "24",
            "--attention-dim", "12",
            "--telemetry", str(telemetry),
            "--out", str(workdir / "ckpt"),
        ]
    )
    print("\nreplaying the telemetry stream:")
    for event in read_events(telemetry):
        if event["event"] == "epoch":
            print(
                f"  epoch {event['epoch']}: loss {event['train_loss']:.3f}, "
                f"{event['tokens_per_second']:.0f} tokens/s, "
                f"grad norm {event['grad_norm']:.4f}"
            )
        elif event["event"] == "train_end":
            print(f"  done: {event['epochs']} epochs in {event['total_seconds']:.2f}s")


if __name__ == "__main__":
    main()
