"""A classroom session over the TPC-H workload, on two engines.

Demonstrates the scenario from the paper's introduction: a learner poses
analytical queries against a TPC-H database and compares how the same query
is executed "as PostgreSQL" and "as SQL Server" — LANTERN narrates both
because the operator labels live in the declarative POOL catalog, not in
code.  The NEURON baseline is shown failing on the SQL Server plan.

Run with:  python examples/tpch_classroom_session.py
"""

from repro.baselines import Neuron
from repro.core import Lantern
from repro.core.presentation import render_annotated_tree
from repro.workloads import build_tpch_database, tpch_queries


def main() -> None:
    print("building the TPC-H database (scale 0.002) ...")
    database = build_tpch_database(scale=0.002)
    lantern = Lantern()
    neuron = Neuron()

    query = tpch_queries()[2]  # Q3: shipping priority
    print(f"\nWorkload {query.name} — {query.title}\n{query.sql}\n")

    for engine, label in (("postgresql", "PostgreSQL"), ("sqlserver", "SQL Server")):
        tree = lantern.plan_for_sql(database, query.sql, engine=engine)
        narration = lantern.describe_plan(tree)
        print("=" * 72)
        print(f"{label} plan operators: {', '.join(tree.operator_names())}")
        print("-" * 72)
        print(lantern.render(narration))
        print()
        baseline = neuron.try_narrate(tree)
        if baseline is None:
            print(f"NEURON baseline: cannot translate the {label} plan "
                  "(its rules are hard-coded for PostgreSQL operator names)\n")
        else:
            print(f"NEURON baseline translates the {label} plan "
                  f"({len(baseline.steps)} steps, fixed wording)\n")

    # the annotated-tree presentation mode compared in US 6
    tree = lantern.plan_for_sql(database, query.sql)
    narration = lantern.describe_plan(tree)
    print("=" * 72)
    print("US 6 alternative presentation: the NL-annotated visual tree")
    print("=" * 72)
    print(render_annotated_tree(tree, narration))


if __name__ == "__main__":
    main()
