"""Authoring operator labels with POOL (the subject-matter-expert workflow).

Shows the declarative side of LANTERN (paper §4): creating a new operator
object for a third engine (DB2's zigzag join), querying the POEM store,
composing description templates, and transferring descriptions across
engines with UPDATE ... REPLACE — then narrating a plan with the edited
labels to show that wording changes require no code changes.

Run with:  python examples/pool_authoring.py
"""

from repro.core import Lantern
from repro.pool import PoolSession, build_default_store
from repro.workloads import build_dblp_database


def main() -> None:
    store = build_default_store()
    session = PoolSession(store)

    print("== retrieval ==")
    print(session.execute("SELECT defn FROM pg WHERE name = 'hashjoin'"))
    print([obj.name for obj in session.execute("SELECT * FROM pg WHERE name LIKE '%join'")])
    print("compiled SQL:", session.compiled_sql("SELECT defn FROM pg WHERE name = 'hashjoin'"))

    print("\n== template composition (COMPOSE) ==")
    print(session.execute("COMPOSE hash FROM pg"))
    print(session.execute(
        "COMPOSE hash, hashjoin FROM pg USING hashjoin.desc = 'perform hash join on'"
    ))

    print("\n== creating an operator for another engine (DB2 zigzag join) ==")
    session.execute(
        "CREATE POPERATOR zzjoin FOR db2 (ALIAS = 'zigzag join', TYPE = 'binary', "
        "DESC = 'perform zigzag join on', COND = 'true')"
    )
    session.execute(
        "UPDATE db2 SET defn = (SELECT defn FROM pg WHERE pg.name = 'hashjoin') "
        "WHERE db2.name = 'zzjoin'"
    )
    print(session.execute("SELECT alias, defn FROM db2 WHERE name = 'zzjoin'"))

    print("\n== transferring a description with REPLACE ==")
    session.execute(
        "UPDATE pg SET desc = REPLACE((SELECT desc FROM pg AS pg2 WHERE pg2.name = 'hashjoin'), "
        "'hash', 'nested loop') WHERE pg.name = 'nestedloop'"
    )
    print("nested loop description is now:", store.get("pg", "nestedloop").description)

    print("\n== the edited labels flow straight into the narration ==")
    session.execute(
        "UPDATE pg SET desc = 'read one after another every row of' WHERE pg.name = 'seqscan'"
    )
    database = build_dblp_database(publication_count=500)
    lantern = Lantern(store=store)
    narration = lantern.describe_sql(
        database, "SELECT count(*) FROM publication p WHERE p.year > 2015"
    )
    print(lantern.render(narration))


if __name__ == "__main__":
    main()
