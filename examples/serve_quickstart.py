"""Quickstart for LANTERN-SERVE: narrate plans over HTTP.

Starts the narration service in-process on an ephemeral port, then plays a
client session against it: one plan per wire format (PostgreSQL EXPLAIN
JSON, SQL Server showplan XML, MySQL EXPLAIN JSON, and the parsed-tree wire
format), a malformed payload to show the structured 400, a burst of
concurrent requests to exercise the micro-batcher, and a final ``/metrics``
scrape.

Run with:  python examples/serve_quickstart.py

To serve standalone instead (same API, default port 8517):

    python -m repro.service                 # rule-based narration
    python -m repro.service --neural        # + the demo neural generator
"""

import threading

from repro.service import LanternClient, LanternServiceError, build_service
from repro.workloads import build_dblp_database

QUERY = """
    SELECT i.venue, count(*) AS papers
    FROM inproceedings i, publication p
    WHERE i.paper_key = p.pub_key AND p.year > 2005
    GROUP BY i.venue
"""


def main() -> None:
    database = build_dblp_database()
    service = build_service(port=0)  # ephemeral port; port=8517 is the default
    host, port = service.start()
    client = LanternClient(f"http://{host}:{port}")
    print(f"LANTERN-SERVE up on http://{host}:{port}\n")

    print("=" * 72)
    print("1. One plan per wire format, auto-detected by the ingestion registry")
    print("=" * 72)
    for output_format in ("json", "xml", "mysql"):
        payload = database.explain(QUERY, output_format=output_format)
        result = client.narrate(payload)
        print(f"[{result['format']}]")
        print(" ", result["narration"]["text"][:160], "...\n")
    tree = service.lantern.plan_for_sql(database, QUERY)
    result = client.narrate(tree.to_dict())
    print(f"[{result['format']}] (an already-parsed tree, shipped as JSON)")
    print(" ", result["narration"]["text"][:160], "...\n")

    print("=" * 72)
    print("2. Malformed payloads come back as structured 400s")
    print("=" * 72)
    try:
        client.narrate("EXPLAIN refused to explain")
    except LanternServiceError as error:
        print(f"HTTP {error.status}: attempted formats = {error.body['attempted_formats']}\n")

    print("=" * 72)
    print("3. A concurrent burst (the micro-batcher coalesces these)")
    print("=" * 72)
    payload = database.explain(QUERY, output_format="json")

    def burst() -> None:
        for _ in range(5):
            client.narrate(payload)

    threads = [threading.Thread(target=burst) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    metrics = client.metrics()
    print(f"requests: {metrics['requests']['total']}")
    print(f"latency p50/p99: {metrics['latency_ms']['p50']} / {metrics['latency_ms']['p99']} ms")
    print(
        f"batches: {metrics['batching']['batches']} "
        f"(avg size {metrics['batching']['avg_batch_size']}, "
        f"max {metrics['batching']['max_batch_size']})"
    )
    print(f"rule-memo hit rate: {metrics['rule_memo']['hit_rate']:.2f}")

    service.stop()


if __name__ == "__main__":
    main()
