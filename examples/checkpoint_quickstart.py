"""Quickstart for LANTERN-PERSIST: train once, checkpoint, boot warm forever.

Walks the full checkpoint lifecycle in one process:

1. train a small NEURAL-LANTERN on the DBLP workload (the expensive step a
   checkpoint exists to amortize);
2. serve a little traffic so the facade accumulates state worth keeping
   (wording-cycle exposures, habituation counters, a warm decode cache);
3. ``Lantern.save`` → a versioned checkpoint directory (npz weights + JSON
   manifest with an integrity digest);
4. ``Lantern.load`` → a second facade that narrates **token-identically**,
   milliseconds instead of a retraining run;
5. tamper with the weights to show the structured ``CheckpointError``.

Run with:  python examples/checkpoint_quickstart.py

The command-line equivalent (what you would run operationally):

    python -m repro.nlg.train --workload dblp --out ckpt/dblp --warm-cache
    python -m repro.service --checkpoint ckpt/dblp
"""

import tempfile
import time
from pathlib import Path

from repro.core import Lantern
from repro.errors import CheckpointError
from repro.nlg.train import train_workload_lantern


def main() -> None:
    print("=" * 72)
    print("1. Train a small NEURAL-LANTERN (the step a checkpoint amortizes)")
    print("=" * 72)
    # the same canonical recipe the train CLI and `--neural` serving flag
    # use; see examples/train_neural_lantern.py for the explicit pipeline
    started = time.perf_counter()
    lantern, database, queries, _, _ = train_workload_lantern(
        queries=12, hidden_dim=32, attention_dim=16, train_cap=160, validation_cap=32
    )
    train_seconds = time.perf_counter() - started
    print(f"trained in {train_seconds:.1f}s\n")

    print("=" * 72)
    print("2. Serve some traffic, then checkpoint the accumulated state")
    print("=" * 72)
    trees = [lantern.plan_for_sql(database, sql) for sql in queries[:4]]
    for tree in trees:
        lantern.describe_plan(tree, mode="neural")
    with tempfile.TemporaryDirectory() as scratch:
        checkpoint = Path(scratch) / "dblp-checkpoint"
        lantern.save(checkpoint)
        size = sum(f.stat().st_size for f in checkpoint.iterdir())
        print(f"saved {sorted(f.name for f in checkpoint.iterdir())} ({size / 1024:.0f} KiB)\n")

        print("=" * 72)
        print("3. Warm boot: load the checkpoint into a fresh facade")
        print("=" * 72)
        started = time.perf_counter()
        loaded = Lantern.load(checkpoint)
        load_seconds = time.perf_counter() - started
        print(
            f"loaded in {load_seconds * 1000:.1f} ms "
            f"({train_seconds / load_seconds:.0f}x faster than retraining)"
        )
        print(f"decode cache came back warm: {loaded.neural.decode_cache.stats()}\n")

        print("=" * 72)
        print("4. Token-identical continuation from the saved state")
        print("=" * 72)
        for tree in trees[:2]:
            expected = lantern.describe_plan(tree, mode="neural").text
            actual = loaded.describe_plan(tree, mode="neural").text
            assert actual == expected
            print("match:", actual[:140], "...\n")

        print("=" * 72)
        print("5. Corruption is caught by the integrity digest")
        print("=" * 72)
        weights = checkpoint / "weights.npz"
        blob = bytearray(weights.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        weights.write_bytes(bytes(blob))
        try:
            Lantern.load(checkpoint)
        except CheckpointError as error:
            print(f"CheckpointError, as expected: {error}")


if __name__ == "__main__":
    main()
