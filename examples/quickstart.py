"""Quickstart: narrate the execution plan of a SQL query.

Builds the small DBLP-style teaching database, asks the mini engine for the
query execution plan of the paper's running example (Example 3.1), and prints
the three QEP formats learners are shown: the raw EXPLAIN JSON, the visual
operator tree, and the RULE-LANTERN natural-language description.

Run with:  python examples/quickstart.py
"""

from repro.core import Lantern
from repro.plans.visual import render_visual_tree
from repro.workloads import build_dblp_database

QUERY = """
    SELECT DISTINCT i.proceeding_key
    FROM inproceedings i, publication p
    WHERE i.paper_key = p.pub_key AND p.title LIKE '%July%'
    GROUP BY i.proceeding_key
    HAVING count(*) > 2
"""


def main() -> None:
    database = build_dblp_database()
    lantern = Lantern()

    print("=" * 72)
    print("1. The raw plan (what PostgreSQL-style EXPLAIN JSON looks like)")
    print("=" * 72)
    explain_json = database.explain(QUERY, output_format="json")
    print(explain_json[:800] + "\n... (truncated)\n")

    tree = lantern.parse_plan(explain_json, "postgres-json")

    print("=" * 72)
    print("2. The visual operator tree")
    print("=" * 72)
    print(render_visual_tree(tree, show_details=True))
    print()

    print("=" * 72)
    print("3. The RULE-LANTERN natural-language description")
    print("=" * 72)
    narration = lantern.describe_plan(tree)
    print(lantern.render(narration))
    print()

    print("Definition lookup (the POOL 'defn' attribute):")
    from repro.core.rule_lantern import RuleLantern

    narrator = RuleLantern(lantern.store, poem_source="pg")
    for operator in ("Hash Join", "Seq Scan", "Unique"):
        print(" *", narrator.describe_operator(operator))


if __name__ == "__main__":
    main()
