"""Quickstart: narrate the execution plan of a SQL query.

Builds the small DBLP-style teaching database, asks the mini engine for the
query execution plan of the paper's running example (Example 3.1), and prints
the three QEP formats learners are shown: the raw EXPLAIN JSON, the visual
operator tree, and the RULE-LANTERN natural-language description.  A final
performance section trains a tiny NEURAL-LANTERN and shows the batched +
cached neural narration path in action.

Run with:  python examples/quickstart.py
"""

import time

from repro.core import Lantern
from repro.plans.visual import render_visual_tree
from repro.workloads import build_dblp_database

QUERY = """
    SELECT DISTINCT i.proceeding_key
    FROM inproceedings i, publication p
    WHERE i.paper_key = p.pub_key AND p.title LIKE '%July%'
    GROUP BY i.proceeding_key
    HAVING count(*) > 2
"""


def main() -> None:
    database = build_dblp_database()
    lantern = Lantern()

    print("=" * 72)
    print("1. The raw plan (what PostgreSQL-style EXPLAIN JSON looks like)")
    print("=" * 72)
    explain_json = database.explain(QUERY, output_format="json")
    print(explain_json[:800] + "\n... (truncated)\n")

    tree = lantern.parse_plan(explain_json, "postgres-json")

    print("=" * 72)
    print("2. The visual operator tree")
    print("=" * 72)
    print(render_visual_tree(tree, show_details=True))
    print()

    print("=" * 72)
    print("3. The RULE-LANTERN natural-language description")
    print("=" * 72)
    narration = lantern.describe_plan(tree)
    print(lantern.render(narration))
    print()

    print("Definition lookup (the POOL 'defn' attribute):")
    from repro.core.rule_lantern import RuleLantern

    narrator = RuleLantern(lantern.store, poem_source="pg")
    for operator in ("Hash Join", "Seq Scan", "Unique"):
        print(" *", narrator.describe_operator(operator))
    print()

    performance_section(database, tree)


def performance_section(database, tree) -> None:
    """Performance: batched beam search + the act-signature decode cache.

    NEURAL-LANTERN decodes every neural-bound act of a plan in ONE fused
    beam-search call (one padded encoder forward, all beams of all acts
    advancing as a single tensor per timestep), and memoizes the ranked
    candidates per act signature in an LRU cache.  Because the US-5 policy
    routes only *frequently repeated* operators to the neural generator, the
    cache is warm in steady state and narration becomes near-instant — while
    the exposure-based cycling through beam alternatives (varied wording)
    survives caching.  Knobs: ``LanternConfig.decode_cache_size`` and
    ``LanternConfig.decode_cache_enabled``.
    """
    from repro.core.lantern import LanternConfig
    from repro.nlg.neural_lantern import NeuralLantern
    from repro.nlg.seq2seq import Seq2SeqConfig

    print("=" * 72)
    print("4. Performance: batched + cached NEURAL-LANTERN narration")
    print("=" * 72)
    print("training a tiny QEP2Seq (a few seconds)...")
    queries = [
        "SELECT count(*) FROM publication p WHERE p.year > 2010",
        "SELECT p.title FROM publication p, inproceedings i WHERE i.paper_key = p.pub_key LIMIT 5",
        "SELECT i.venue, count(*) AS n FROM inproceedings i GROUP BY i.venue",
    ]
    neural, _ = NeuralLantern.fit(
        [(database, queries, "postgresql", "dblp")],
        config=Seq2SeqConfig(hidden_dim=48, attention_dim=24, seed=1),
        epochs=18,
    )
    facade = Lantern(
        neural=neural,
        config=LanternConfig(decode_cache_size=256, decode_cache_enabled=True),
    )
    started = time.perf_counter()
    facade.describe_plan(tree, mode="neural")
    cold = time.perf_counter() - started
    started = time.perf_counter()
    narration = facade.describe_plan(tree, mode="neural")
    warm = time.perf_counter() - started
    print(f"first neural narration (cold cache): {cold * 1000:.1f} ms")
    print(f"repeat neural narration (warm cache): {warm * 1000:.1f} ms")
    print(f"decode cache stats: {neural.decode_cache.stats()}")
    print("sample neural step:", narration.steps[0].text)
    print()
    print("To serve narrations to concurrent clients over HTTP, run")
    print("`python -m repro.service` (see examples/serve_quickstart.py).")


if __name__ == "__main__":
    main()
