"""LANTERN-ZERO memory-mapped checkpoints: zero-copy boot, copy-on-train.

``weights_layout="mmap"`` writes raw aligned bytes the loader maps straight
into read-only :class:`~repro.nlg.nn.layers.Parameter` views — no
decompression, no array copies, no optimizer-state allocation.  Contracts:

* a mapped model decodes token-identically to its npz twin;
* mapped parameters are read-only shared views until training *materializes*
  them (copy-on-train), after which training behaves exactly as before;
* integrity is never weaker than npz: structural bounds are checked on every
  load, and ``verify_checkpoint`` / ``load(..., verify=True)`` digest the
  full byte stream in both layouts.
"""

import json

import numpy as np
import pytest

from repro.core import Lantern, LanternConfig
from repro.errors import CheckpointFormatError, CheckpointIntegrityError
from repro.nlg.neural_lantern import NeuralLantern
from repro.nlg.persistence import (
    MANIFEST_FILE,
    WEIGHTS_BIN_FILE,
    WEIGHTS_FILE,
    load_qep2seq,
    save_lantern,
    save_qep2seq,
    verify_checkpoint,
)

SQLS = [
    "SELECT count(*) FROM publication p WHERE p.year > 2005",
    "SELECT p.venue_key FROM publication p WHERE p.year > 1999 ORDER BY p.venue_key",
]


@pytest.fixture()
def mmap_checkpoint(trained_neural, tmp_path):
    target = save_qep2seq(trained_neural.model, tmp_path / "mapped", weights_layout="mmap")
    return target


class TestMmapRoundTrip:
    def test_layout_on_disk(self, mmap_checkpoint):
        assert (mmap_checkpoint / WEIGHTS_BIN_FILE).exists()
        assert not (mmap_checkpoint / WEIGHTS_FILE).exists()
        manifest = json.loads((mmap_checkpoint / MANIFEST_FILE).read_text())
        assert manifest["weights_layout"] == "mmap"
        index = manifest["weights_index"]
        assert index and all(entry["offset"] % 64 == 0 for entry in index)

    def test_decodes_identically_and_maps_read_only(self, trained_neural, mmap_checkpoint):
        model = trained_neural.model
        loaded = load_qep2seq(mmap_checkpoint)
        parameters = loaded.parameters()
        assert parameters and all(p.mmap_backed for p in parameters)
        assert all(not p.value.flags.writeable for p in parameters)
        info = loaded.weights_memory_info()
        assert info["mmap_backed"] is True
        assert info["bytes"] == sum(p.value.nbytes for p in parameters)

        originals = {p.name: p.value for p in model.parameters()}
        for parameter in parameters:
            np.testing.assert_array_equal(parameter.value, originals[parameter.name])
        sources = [s.source_tokens for s in trained_neural.dataset.samples[:5]]
        assert loaded.beam_decode_batch(sources, beam_size=2) == model.beam_decode_batch(
            sources, beam_size=2
        )

    def test_copy_on_train(self, trained_neural, mmap_checkpoint):
        """Training a mapped model must transparently materialize private
        writable copies — and only then."""
        loaded = load_qep2seq(mmap_checkpoint)
        samples = trained_neural.dataset.train_samples[:4]
        batch = loaded.make_batch(
            [s.source_tokens for s in samples], [s.target_tokens for s in samples]
        )
        loss, _ = loaded.train_batch(batch)
        assert np.isfinite(loss)
        assert all(not p.mmap_backed for p in loaded.parameters())
        assert all(p.value.flags.writeable for p in loaded.parameters())
        assert loaded.weights_memory_info()["mmap_backed"] is False

    def test_quantized_mmap_checkpoint(self, trained_neural, tmp_path):
        """quantize mode and mmap layout compose: the manifest records both,
        and the loaded model re-quantizes from the mapped master weights."""
        model = trained_neural.model
        sources = [s.source_tokens for s in trained_neural.dataset.samples[:5]]
        model.quantize("int8")
        try:
            expected = model.beam_decode_batch(sources, beam_size=2)
            target = save_qep2seq(model, tmp_path / "both", weights_layout="mmap")
        finally:
            model.dequantize()
        loaded = load_qep2seq(target)
        assert loaded.config.quantize == "int8"
        assert all(p.mmap_backed for p in loaded.parameters())
        assert loaded.beam_decode_batch(sources, beam_size=2) == expected

    def test_overwrite_swaps_layout_files(self, trained_neural, tmp_path):
        """Re-saving under the other layout must not leave a stale weights
        file for a future loader to trip on."""
        model = trained_neural.model
        target = tmp_path / "swap"
        save_qep2seq(model, target, weights_layout="mmap")
        save_qep2seq(model, target, weights_layout="npz")
        assert (target / WEIGHTS_FILE).exists()
        assert not (target / WEIGHTS_BIN_FILE).exists()
        save_qep2seq(model, target, weights_layout="mmap")
        assert (target / WEIGHTS_BIN_FILE).exists()
        assert not (target / WEIGHTS_FILE).exists()
        load_qep2seq(target)  # and the final state loads


class TestFacadeLevel:
    def test_lantern_facade_mmap_parity(self, dblp_db, trained_neural, tmp_path):
        lantern = Lantern(
            neural=NeuralLantern(trained_neural.model, beam_size=2),
            config=LanternConfig(seed=None),
        )
        trees = [lantern.plan_for_sql(dblp_db, sql) for sql in SQLS]
        for tree in trees:
            lantern.describe_plan(tree, mode="neural")
        target = save_lantern(lantern, tmp_path / "facade", weights_layout="mmap")
        assert verify_checkpoint(target) is True

        loaded = Lantern.load(target)
        expected = [lantern.describe_plan(t, mode="neural").text for t in trees]
        actual = [loaded.describe_plan(t, mode="neural").text for t in trees]
        assert actual == expected

    def test_save_method_passes_layout_through(self, trained_neural, tmp_path):
        lantern = Lantern(
            neural=NeuralLantern(trained_neural.model, beam_size=2),
            config=LanternConfig(seed=None),
        )
        lantern.save(tmp_path / "via-method", weights_layout="mmap")
        assert (tmp_path / "via-method" / WEIGHTS_BIN_FILE).exists()


class TestMmapIntegrity:
    def test_verify_checkpoint_both_layouts(self, trained_neural, tmp_path):
        for layout in ("npz", "mmap"):
            target = save_qep2seq(
                trained_neural.model, tmp_path / layout, weights_layout=layout
            )
            assert verify_checkpoint(target) is True

    def test_truncated_bin_fails_structurally(self, mmap_checkpoint):
        """A short file is caught by the offset-bounds check on EVERY load,
        even without the full digest pass."""
        bin_path = mmap_checkpoint / WEIGHTS_BIN_FILE
        blob = bin_path.read_bytes()
        bin_path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointIntegrityError, match="truncated"):
            load_qep2seq(mmap_checkpoint)
        with pytest.raises(CheckpointIntegrityError):
            verify_checkpoint(mmap_checkpoint)

    def test_flipped_byte_fails_digest_verification(self, mmap_checkpoint):
        bin_path = mmap_checkpoint / WEIGHTS_BIN_FILE
        blob = bytearray(bin_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        bin_path.write_bytes(bytes(blob))
        # structurally sound, so the fast default load succeeds ...
        load_qep2seq(mmap_checkpoint)
        # ... but both explicit verification paths catch the corruption
        with pytest.raises(CheckpointIntegrityError, match="digest mismatch"):
            verify_checkpoint(mmap_checkpoint)
        with pytest.raises(CheckpointIntegrityError, match="digest mismatch"):
            load_qep2seq(mmap_checkpoint, verify=True)

    def test_missing_bin_file(self, mmap_checkpoint):
        (mmap_checkpoint / WEIGHTS_BIN_FILE).unlink()
        with pytest.raises(CheckpointFormatError, match="missing"):
            load_qep2seq(mmap_checkpoint)

    def test_verify_checkpoint_missing_path(self, tmp_path):
        with pytest.raises(CheckpointFormatError):
            verify_checkpoint(tmp_path / "nowhere")
