"""LANTERN-SCOPE core: histograms, spans, event logs, Prometheus exposition.

The load-bearing contracts: histogram percentiles never return NaN and stay
inside the observed range; span trees report durations and offsets that a
renderer can tile into a timeline; a disabled tracer costs nothing and
breaks nothing; the event log survives concurrent emitters; and the
exposition renderer emits only lines ``validate_exposition`` accepts.
"""

import json
import math
import threading
import time

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    JsonEventLog,
    NOOP_SPAN,
    PrometheusWriter,
    TraceStore,
    Tracer,
    format_span_tree,
    percentile,
    read_events,
    validate_exposition,
)
from repro.service.telemetry import ServiceTelemetry


class TestExactPercentile:
    def test_empty_and_single(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 1.0) == 7.0

    def test_interpolation_is_exact(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == pytest.approx(50.5)
        assert percentile(values, 0.99) == pytest.approx(99.01)
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 100.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0


class TestHistogram:
    def test_rejects_bad_bounds(self):
        for bounds in ((), (1.0, 1.0), (2.0, 1.0)):
            with pytest.raises(ValueError, match="strictly increasing"):
                Histogram(bounds)

    def test_empty_histogram_answers_zero(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(0.5) == 0.0
        assert histogram.snapshot()["max"] == 0.0

    def test_single_observation_is_exact(self):
        histogram = Histogram()
        histogram.observe(0.0123)
        for fraction in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert histogram.percentile(fraction) == pytest.approx(0.0123)
        assert histogram.mean == pytest.approx(0.0123)

    def test_percentiles_never_nan_and_stay_in_range(self):
        histogram = Histogram((1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):  # last lands in +Inf bucket
            histogram.observe(value)
        for fraction in (0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
            estimate = histogram.percentile(fraction)
            assert not math.isnan(estimate)
            assert 0.5 <= estimate <= 100.0

    def test_overflow_bucket_clamps_to_observed_max(self):
        histogram = Histogram((1.0,))
        histogram.observe(50.0)
        histogram.observe(90.0)
        # everything is in the open-ended bucket; the upper edge must be
        # the observed max, not infinity
        assert histogram.percentile(0.99) <= 90.0
        assert histogram.percentile(0.01) >= 1.0  # lower edge = last bound

    def test_bucket_boundary_is_inclusive_upper(self):
        histogram = Histogram((1.0, 2.0))
        histogram.observe(1.0)  # exactly on a bound: belongs to that bucket
        assert histogram.bucket_counts == [1, 0, 0]
        histogram.observe(1.0000001)
        assert histogram.bucket_counts == [1, 1, 0]

    def test_estimate_within_one_bucket_width(self):
        histogram = Histogram(DEFAULT_LATENCY_BUCKETS)
        values = [0.0002 * (i + 1) for i in range(500)]  # 0.2 ms .. 100 ms
        for value in values:
            histogram.observe(value)
        for fraction in (0.5, 0.9, 0.99):
            exact = percentile(values, fraction)
            estimate = histogram.percentile(fraction)
            # the containing bucket's width bounds the estimation error
            index = 0
            while index < len(DEFAULT_LATENCY_BUCKETS) and DEFAULT_LATENCY_BUCKETS[index] < exact:
                index += 1
            lower = DEFAULT_LATENCY_BUCKETS[index - 1] if index else 0.0
            upper = DEFAULT_LATENCY_BUCKETS[min(index, len(DEFAULT_LATENCY_BUCKETS) - 1)]
            assert abs(estimate - exact) <= (upper - lower) + 1e-12

    def test_snapshot_scales_and_rounds(self):
        histogram = Histogram()
        histogram.observe(0.002)
        snapshot = histogram.snapshot(scale=1000.0, digits=3)
        assert snapshot == {
            "count": 1, "mean": 2.0, "p50": 2.0, "p90": 2.0, "p99": 2.0, "max": 2.0,
        }

    def test_cumulative_buckets_end_at_inf_total(self):
        histogram = Histogram((1.0, 2.0))
        for value in (0.5, 1.5, 9.0, 9.0):
            histogram.observe(value)
        pairs = histogram.cumulative_buckets()
        assert pairs == [(1.0, 1), (2.0, 2), (float("inf"), 4)]


class TestSpansAndTracer:
    def test_span_tree_shape(self):
        tracer = Tracer(store=TraceStore())
        with tracer.trace("request", endpoint="/narrate") as root:
            with root.child("admission"):
                pass
            root.add_child_at("queue_wait", root.start, root.start + 0.005)
        document = tracer.last_trace()
        assert document["name"] == "request"
        assert document["tags"] == {"endpoint": "/narrate"}
        assert document["trace_id"]
        assert [child["name"] for child in document["children"]] == [
            "admission", "queue_wait",
        ]
        assert document["children"][1]["duration_ms"] == pytest.approx(5.0)
        assert document["children"][1]["offset_ms"] == pytest.approx(0.0)

    def test_thread_local_nesting(self):
        tracer = Tracer(store=TraceStore())
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert tracer.current().name == "inner"
        document = tracer.last_trace()
        assert document["name"] == "outer"
        assert document["children"][0]["name"] == "inner"
        assert tracer.current() is None

    def test_exception_tags_error_class(self):
        tracer = Tracer(store=TraceStore())
        with pytest.raises(KeyError):
            with tracer.trace("doomed"):
                raise KeyError("nope")
        assert tracer.last_trace()["tags"] == {"error": "KeyError"}

    def test_disabled_tracer_hands_out_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.trace("ignored")
        assert span is NOOP_SPAN
        assert not span  # falsy: `if root:` guards skip reporting
        with span.child("still-noop") as child:
            child.tag(anything="goes")
            child.add_child_at("x", 0.0, 1.0)
        assert span.to_dict() == {}
        assert tracer.last_trace() is None

    def test_store_ranks_slowest(self):
        store = TraceStore(window=8, keep=2)
        tracer = Tracer(store=store)
        for milliseconds in (3, 9, 1, 5):
            root = tracer.trace("work", ms=milliseconds)
            root.end = None
            root.start = time.perf_counter() - milliseconds / 1000.0
            root.finish()
        slowest = store.slowest()
        assert [trace["tags"]["ms"] for trace in slowest] == [9, 5]  # keep=2
        assert [trace["tags"]["ms"] for trace in store.slowest(4)] == [9, 5, 3, 1]
        assert store.completed == 4
        assert len(store) == 4

    def test_store_window_evicts_oldest(self):
        store = TraceStore(window=2)
        tracer = Tracer(store=store)
        for index in range(3):
            with tracer.trace("t", index=index):
                pass
        assert store.completed == 3
        assert len(store) == 2
        assert store.latest()["tags"]["index"] == 2

    def test_sampled_logging_is_deterministic(self, tmp_path):
        log = JsonEventLog(tmp_path / "traces.jsonl")
        tracer = Tracer(store=TraceStore(), log=log, log_every=3)
        for _ in range(9):
            with tracer.trace("sampled"):
                pass
        log.close()
        events = list(read_events(log.path))
        assert len(events) == 3  # every 3rd of 9
        assert all(event["event"] == "trace" for event in events)

    def test_finish_listener_sees_roots_only(self):
        tracer = Tracer(store=TraceStore())
        seen = []
        tracer.add_finish_listener(lambda root: seen.append(root.name))
        with tracer.trace("root"):
            with tracer.span("child"):
                pass
        assert seen == ["root"]

    def test_format_span_tree_renders_all_spans(self):
        tracer = Tracer(store=TraceStore())
        with tracer.trace("root", mode="rule") as root:
            with root.child("stage"):
                pass
        text = format_span_tree(tracer.last_trace())
        assert "root" in text and "stage" in text and "mode=rule" in text
        assert format_span_tree({}) == ""


class TestJsonEventLog:
    def test_round_trip_and_ts_stamp(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonEventLog(path) as log:
            log.emit({"event": "epoch", "loss": 1.5})
            log.emit({"event": "epoch", "loss": 1.2})
        events = list(read_events(path))
        assert [event["event"] for event in events] == ["epoch", "epoch"]
        assert all(event["ts"] > 0 for event in events)
        assert events[1]["loss"] == 1.2

    def test_emit_after_close_is_a_noop(self, tmp_path):
        log = JsonEventLog(tmp_path / "events.jsonl")
        log.emit({"event": "one"})
        log.close()
        log.emit({"event": "two"})  # silently dropped, no crash
        log.close()  # idempotent
        assert log.emitted == 1
        assert len(list(read_events(log.path))) == 1

    def test_concurrent_emitters_never_interleave(self, tmp_path):
        path = tmp_path / "contended.jsonl"
        log = JsonEventLog(path)

        def emit_many(worker: int) -> None:
            for index in range(50):
                log.emit({"event": "tick", "worker": worker, "index": index})

        threads = [threading.Thread(target=emit_many, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.close()
        events = list(read_events(path))  # json.loads raises on torn lines
        assert len(events) == 400
        assert log.emitted == 400

    def test_non_json_values_stringify(self, tmp_path):
        with JsonEventLog(tmp_path / "odd.jsonl") as log:
            log.emit({"event": "odd", "path": tmp_path})
        (event,) = read_events(log.path)
        assert event["path"] == str(tmp_path)


class TestPrometheusExposition:
    def test_writer_families_render_and_validate(self):
        writer = PrometheusWriter()
        writer.counter(
            "requests_total", "Finished requests.",
            [({"endpoint": "/narrate"}, 41), ({"endpoint": "/metrics"}, 3)],
        )
        writer.gauge("queue_depth", "Queued requests.", [(None, 0)])
        histogram = Histogram((0.001, 0.01))
        histogram.observe(0.0005)
        histogram.observe(0.5)
        writer.histogram("latency_seconds", "Latency.", [({"stage": "decode"}, histogram)])
        text = writer.render()
        assert 'lantern_requests_total{endpoint="/narrate"} 41' in text
        assert 'lantern_latency_seconds_bucket{stage="decode",le="+Inf"} 2' in text
        assert 'lantern_latency_seconds_count{stage="decode"} 2' in text
        assert validate_exposition(text) == 2 + 1 + (3 + 2)  # buckets + sum + count

    def test_label_values_are_escaped(self):
        writer = PrometheusWriter()
        writer.counter("odd_total", "Odd labels.", [({"k": 'a"b\\c\nd'}, 1)])
        text = writer.render()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert validate_exposition(text) == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "",  # no samples at all
            "# COMMENT wrong form\nlantern_x 1",
            "lantern_x{unbalanced 1",
            "lantern_x notanumber",
            "lantern bad name 1notfloat",
        ],
    )
    def test_validator_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            validate_exposition(bad)


class TestTelemetryContention:
    THREADS = 8

    def test_contended_recorders_lose_nothing(self):
        """8 threads hammering every recorder: totals must balance exactly
        and the snapshot/exposition must render mid-flight without error."""
        telemetry = ServiceTelemetry()
        rounds = 200
        snapshot_errors: list[Exception] = []

        def record(worker: int) -> None:
            for index in range(rounds):
                status = (200, 200, 429, 503, 400)[index % 5]
                telemetry.record_request(
                    status, 0.001 * (worker + 1),
                    plan_format="postgres-json", mode="rule",
                )
                telemetry.record_request(200, 0.0001, endpoint="/healthz")
                telemetry.record_stage("decode", 0.002)
                telemetry.record_batch(worker + 1)
                if status == 400:
                    telemetry.record_batch_failure(ValueError("boom"))
                if index % 50 == 0:
                    try:
                        telemetry.snapshot(queue_depth=1)
                        validate_exposition(telemetry.prometheus())
                    except Exception as error:  # noqa: BLE001 - recorded
                        snapshot_errors.append(error)

        threads = [
            threading.Thread(target=record, args=(i,)) for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not snapshot_errors

        total = self.THREADS * rounds
        snapshot = telemetry.snapshot()
        requests = snapshot["requests"]
        assert requests["total"] == total * 2  # /narrate + /healthz each round
        assert requests["by_status"]["200"] == total * 2 // 5 + total
        assert requests["rejected_overload"] == total // 5
        assert requests["timed_out"] == total // 5
        assert requests["by_endpoint"]["/healthz"] == total
        assert snapshot["latency_ms"]["count"] == total * 2 // 5  # narrate 200s only
        assert snapshot["stages"]["decode"]["count"] == total
        assert snapshot["batching"]["batches"] == total
        assert snapshot["batching"]["batches_failed"] == total // 5
        assert snapshot["batching"]["batch_errors"] == {"ValueError": total // 5}
        assert validate_exposition(telemetry.prometheus()) > 0

    def test_healthz_latency_does_not_pollute_narrate_percentiles(self):
        telemetry = ServiceTelemetry()
        for _ in range(10):
            telemetry.record_request(200, 0.010)  # /narrate: 10 ms
            telemetry.record_request(200, 9.0, endpoint="/healthz")  # slow probe
        snapshot = telemetry.snapshot()
        assert snapshot["latency_ms"]["p99"] < 100  # /narrate only
        assert snapshot["latency_ms_by_endpoint"]["/healthz"]["p50"] > 1000
