"""LANTERN-SERVE: concurrent serving, micro-batching, admission control.

The load-bearing contracts: narrations served over HTTP under thread
contention are identical to direct ``Lantern`` calls; all wire formats go
through the auto-detecting registry; malformed payloads come back as
structured 400s; a full queue answers 429; and the shared decode cache keeps
hitting under contention.
"""

import threading
import time

import pytest

from repro.core import Lantern, LanternConfig
from repro.core.acts import align_acts_with_narration, decompose_lot_into_acts
from repro.core.narration import Narration
from repro.errors import ServiceOverloadError, ServiceTimeoutError
from repro.nlg.tokenizer import detokenize
from repro.service import (
    BatcherConfig,
    LanternClient,
    LanternServiceError,
    MicroBatcher,
    ServiceTelemetry,
    build_service,
)
from repro.service.telemetry import percentile

SQLS = [
    "SELECT count(*) FROM publication p WHERE p.year > 2003",
    "SELECT p.venue_key FROM publication p WHERE p.year > 1999 ORDER BY p.venue_key",
    (
        "SELECT i.venue, count(*) AS n FROM inproceedings i, publication p "
        "WHERE i.paper_key = p.pub_key GROUP BY i.venue"
    ),
    "SELECT DISTINCT p.venue_key FROM publication p",
]

FORMATS = ("json", "xml", "mysql")


@pytest.fixture(scope="module")
def payloads(dblp_db) -> list[str]:
    """Mixed pg/mssql/mysql serializations of several plans."""
    produced = []
    for i, sql in enumerate(SQLS * 3):
        produced.append(dblp_db.explain(sql, output_format=FORMATS[i % 3]))
    return produced


@pytest.fixture(scope="module")
def rule_service(payloads):
    service = build_service(port=0)
    host, port = service.start()
    yield service, LanternClient(f"http://{host}:{port}")
    service.stop()


class TestEndpoints:
    def test_healthz(self, rule_service):
        _, client = rule_service
        health = client.healthz()
        assert health["status"] == "ok"
        assert "mysql-json" in health["formats"]
        assert health["neural_attached"] is False

    def test_narrate_all_wire_formats(self, rule_service, payloads, dblp_db):
        service, client = rule_service
        for payload in payloads[:6]:
            result = client.narrate(payload)
            assert result["narration"]["steps"]
            assert result["narration"]["steps"][-1]["is_final"]
        # the parsed-tree wire format
        tree = service.lantern.plan_for_sql(dblp_db, SQLS[0])
        result = client.narrate(tree.to_dict())
        assert result["format"] == "operator-tree-json"
        assert result["narration"]["text"]

    def test_explicit_format_and_presentation(self, rule_service, payloads):
        _, client = rule_service
        result = client.narrate(payloads[0], plan_format="postgres-json", presentation="document")
        assert result["format"] == "postgres-json"
        assert result["rendered"].startswith("The query is executed as follows.")

    def test_malformed_plan_is_structured_400(self, rule_service):
        _, client = rule_service
        with pytest.raises(LanternServiceError) as excinfo:
            client.narrate("EXPLAIN says no")
        assert excinfo.value.status == 400
        assert excinfo.value.body["error"] == "plan_format"
        assert "postgres-json" in excinfo.value.body["attempted_formats"]

    def test_malformed_plan_with_explicit_format_is_400(self, rule_service):
        _, client = rule_service
        for plan, plan_format in (
            ({"root": {}}, "operator-tree-json"),
            ("garbage", "tree"),
            ("{not json", "postgres-json"),
        ):
            with pytest.raises(LanternServiceError) as excinfo:
                client.narrate(plan, plan_format=plan_format)
            assert excinfo.value.status == 400
            assert excinfo.value.body["error"] == "plan_format"

    @pytest.mark.parametrize(
        "body, detail",
        [
            ({}, "plan"),
            ({"plan": "[]", "mode": "telepathic"}, "mode"),
            ({"plan": "[]", "presentation": "interpretive-dance"}, "presentation"),
        ],
    )
    def test_invalid_request_bodies(self, rule_service, body, detail):
        _, client = rule_service
        with pytest.raises(LanternServiceError) as excinfo:
            client._request("POST", "/narrate", body)
        assert excinfo.value.status == 400
        assert detail in excinfo.value.body["message"]

    def test_oversized_body_closes_the_connection(self, rule_service):
        """413 without draining the body must not desync a keep-alive
        stream: the server says Connection: close and means it."""
        import http.client

        from repro.service.server import MAX_BODY_BYTES

        service, _ = rule_service
        host, port = service._httpd.server_address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.putrequest("POST", "/narrate")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(MAX_BODY_BYTES + 10))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
            assert response.getheader("Connection") == "close"
            response.read()
        finally:
            connection.close()

    def test_post_path_query_string_is_ignored(self, rule_service, payloads):
        _, client = rule_service
        result = client._request(
            "POST", "/narrate?client=classroom-7", {"plan": payloads[0]}
        )
        assert result["narration"]["steps"]

    def test_unknown_paths_404(self, rule_service):
        _, client = rule_service
        for method, path in (("POST", "/decant"), ("GET", "/narrate")):
            with pytest.raises(LanternServiceError) as excinfo:
                client._request(method, path, {"plan": "[]"} if method == "POST" else None)
            assert excinfo.value.status == 404

    def test_metrics_shape(self, rule_service):
        _, client = rule_service
        metrics = client.metrics()
        assert metrics["requests"]["total"] >= 1
        assert {"p50", "p90", "p99"} <= metrics["latency_ms"].keys()
        assert metrics["batching"]["batches"] >= 1
        assert "rule_memo" in metrics  # deterministic default narrator


class TestConcurrentRuleServing:
    THREADS = 8
    ROUNDS = 4

    def test_contended_narrations_match_direct_calls(self, rule_service, payloads):
        """N threads hammering mixed formats get exactly what a direct,
        single-threaded Lantern would have produced for each payload."""
        service, client = rule_service
        reference = Lantern(config=LanternConfig(seed=None))
        expected = {
            payload: reference.describe_plan(reference.parse_plan(payload)).text
            for payload in payloads
        }
        failures: list[str] = []

        def hammer(offset: int) -> None:
            mine = payloads[offset::2] * self.ROUNDS
            for payload in mine:
                served = client.narrate(payload)["narration"]["text"]
                if served != expected[payload]:
                    failures.append(f"mismatch for payload[{offset}]")

        threads = [
            threading.Thread(target=hammer, args=(i % 2,)) for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        metrics = client.metrics()
        assert metrics["requests"]["by_status"].get("500", 0) == 0
        assert metrics["rule_memo"]["hit_rate"] > 0.5  # repeated shapes memoize


@pytest.fixture(scope="module")
def neural_service(trained_neural, payloads):
    """A service with the trained generator attached (fresh shared state)."""
    exposure_before = dict(trained_neural._act_exposure)
    trained_neural._act_exposure.clear()
    trained_neural.decode_cache.clear()
    facade = Lantern(neural=trained_neural, config=LanternConfig(seed=None))
    service = build_service(lantern=facade, port=0)
    host, port = service.start()
    yield service, LanternClient(f"http://{host}:{port}")
    service.stop()
    trained_neural.decode_cache.clear()
    trained_neural._act_exposure.clear()
    trained_neural._act_exposure.update(exposure_before)


class TestNeuralServing:
    def test_sequential_neural_parity_with_direct_calls(
        self, neural_service, payloads, trained_neural
    ):
        """One client, fixed order: served neural narrations are
        token-identical to direct describe_plan calls from fresh state."""
        service, client = neural_service
        trained_neural._act_exposure.clear()
        trained_neural.decode_cache.clear()
        served = [
            client.narrate(payload, mode="neural")["narration"]["text"]
            for payload in payloads
        ]
        trained_neural._act_exposure.clear()
        trained_neural.decode_cache.clear()
        reference = Lantern(neural=trained_neural, config=LanternConfig(seed=None))
        direct = [
            reference.describe_plan(reference.parse_plan(payload), mode="neural").text
            for payload in payloads
        ]
        assert served == direct

    def test_contended_neural_serving_hits_cache(
        self, neural_service, payloads, trained_neural
    ):
        """Under contention the exact wording depends on arrival order (the
        anti-boredom cycle), so each served step must equal one of the ranked
        beam finalizations for that step — and the shared decode cache must
        keep serving hits."""
        service, client = neural_service
        reference = Lantern(config=LanternConfig(seed=None))
        acceptable: dict[str, list[set[str]]] = {}
        for payload in payloads:
            narration = reference.describe_plan(reference.parse_plan(payload))
            acts = align_acts_with_narration(
                decompose_lot_into_acts(narration.lot), narration
            )
            per_step = []
            for act, step in zip(acts, narration.steps):
                candidates = trained_neural.model.beam_decode_candidates(
                    act.input_tokens(), beam_size=trained_neural._effective_beam_size()
                )
                per_step.append(
                    {
                        trained_neural._finalize(detokenize(tokens), step)
                        for tokens in candidates
                        if tokens
                    }
                )
            acceptable[payload] = per_step

        trained_neural.decode_cache.clear()
        failures: list[str] = []

        def hammer(offset: int) -> None:
            for payload in payloads[offset::2] * 3:
                steps = client.narrate(payload, mode="neural")["narration"]["steps"]
                for index, step in enumerate(steps):
                    if step["text"] not in acceptable[payload][index]:
                        failures.append(f"step {index} off-beam for payload[{offset}]")

        threads = [threading.Thread(target=hammer, args=(i % 2,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        cache_stats = client.metrics()["decode_cache"]
        assert cache_stats["hit_rate"] > 0
        assert cache_stats["hits"] > 0


class _BlockingLantern:
    """Stands in for a Lantern whose narration blocks until released."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.calls = 0

    def describe_plans(self, trees, mode, collect_errors=True):
        self.calls += 1
        assert self.release.wait(timeout=30)
        return [Narration(steps=[]) for _ in trees]


class TestAdmissionControl:
    def test_full_queue_rejects_with_overload(self):
        lantern = _BlockingLantern()
        batcher = MicroBatcher(
            lantern, BatcherConfig(max_batch_size=1, max_queue_depth=2)
        )
        batcher.start()
        try:
            submitters = [
                threading.Thread(target=lambda: batcher.submit(object()), daemon=True)
                for _ in range(3)
            ]
            for submitter in submitters:
                submitter.start()
            deadline = time.monotonic() + 5
            # worker holds one request; two more fill the bounded queue
            while batcher.queue_depth < 2 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert batcher.queue_depth == 2
            with pytest.raises(ServiceOverloadError, match="queue is full"):
                batcher.submit(object())
        finally:
            lantern.release.set()
            for submitter in submitters:
                submitter.join(timeout=5)
            batcher.stop()

    def test_slow_narration_times_out(self):
        lantern = _BlockingLantern()
        batcher = MicroBatcher(lantern, BatcherConfig(request_timeout_s=0.05))
        batcher.start()
        try:
            with pytest.raises(ServiceTimeoutError, match="not produced within"):
                batcher.submit(object())
        finally:
            lantern.release.set()
            batcher.stop()

    def test_submit_without_worker_fails_fast(self):
        batcher = MicroBatcher(_BlockingLantern())
        with pytest.raises(ServiceTimeoutError, match="not running"):
            batcher.submit(object())


class TestShutdown:
    def test_stop_fails_pending_requests_promptly(self):
        """Regression: requests that miss the drain window must not block
        their submitters for the full request_timeout_s."""
        lantern = _BlockingLantern()
        batcher = MicroBatcher(
            lantern, BatcherConfig(max_batch_size=1, request_timeout_s=30.0)
        )
        batcher.start()
        outcomes: list[object] = []

        def call() -> None:
            try:
                outcomes.append(batcher.submit(object()))
            except Exception as error:  # noqa: BLE001 - recorded for assertions
                outcomes.append(error)

        submitters = [threading.Thread(target=call, daemon=True) for _ in range(3)]
        for submitter in submitters:
            submitter.start()
        deadline = time.monotonic() + 5
        # the worker holds one request in flight; two more sit in the queue
        while (
            lantern.calls < 1 or batcher.queue_depth < 2
        ) and time.monotonic() < deadline:
            time.sleep(0.005)
        assert lantern.calls == 1
        assert batcher.queue_depth == 2

        started = time.monotonic()
        batcher.stop(drain_timeout_s=0.2)  # worker is blocked; drain expires
        stop_elapsed = time.monotonic() - started
        lantern.release.set()  # let the in-flight narration finish
        for submitter in submitters:
            submitter.join(timeout=5)
        assert not any(submitter.is_alive() for submitter in submitters)

        assert stop_elapsed < 5  # nowhere near request_timeout_s
        shutdown_errors = [
            outcome
            for outcome in outcomes
            if isinstance(outcome, ServiceTimeoutError) and "shut down" in str(outcome)
        ]
        assert len(shutdown_errors) == 2  # both queued requests failed promptly

    def test_start_does_not_resurrect_a_stuck_worker(self):
        """A worker stuck past the drain window keeps its slot: start() must
        not run a second worker alongside it (the facade's state is only
        safe under a single narration thread)."""
        lantern = _BlockingLantern()
        batcher = MicroBatcher(lantern, BatcherConfig(max_batch_size=1))
        batcher.start()
        first_worker = batcher._worker
        submitter = threading.Thread(
            target=lambda: batcher.submit(object()), daemon=True
        )
        submitter.start()
        deadline = time.monotonic() + 5
        while lantern.calls < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert lantern.calls == 1  # worker is now blocked mid-narration

        batcher.stop(drain_timeout_s=0.1)  # join expires; worker still stuck
        assert batcher._worker is first_worker  # reference kept ...
        batcher.start()
        assert batcher._worker is first_worker  # ... so start() is a no-op

        lantern.release.set()
        submitter.join(timeout=5)
        first_worker.join(timeout=5)
        assert not first_worker.is_alive()  # exits on its own once unblocked

    def test_submit_rechecks_liveness_after_enqueue(self):
        """Regression: a worker dying between the aliveness check and the
        enqueue must not strand the request until its timeout."""
        lantern = _BlockingLantern()
        batcher = MicroBatcher(lantern)
        hold = threading.Event()
        fake_worker = threading.Thread(target=hold.wait, daemon=True)
        fake_worker.start()
        batcher._worker = fake_worker  # alive at the pre-check ...

        real_put = batcher._queue.put_nowait

        def racing_put(request):
            real_put(request)
            hold.set()  # ... dead right after the enqueue
            fake_worker.join(timeout=5)

        batcher._queue.put_nowait = racing_put
        started = time.monotonic()
        with pytest.raises(ServiceTimeoutError, match="worker exited"):
            batcher.submit(object(), timeout_s=10.0)
        assert time.monotonic() - started < 5  # failed fast, not at timeout_s

        # the orphan is still queued but already answered: a restarted worker
        # must drain it WITHOUT narrating it for a submitter that left
        batcher._queue.put_nowait = real_put
        lantern.release.set()
        batcher.start()
        deadline = time.monotonic() + 5
        while batcher.queue_depth and time.monotonic() < deadline:
            time.sleep(0.005)
        assert batcher.queue_depth == 0
        assert lantern.calls == 0  # skipped, not decoded
        batcher.stop()


class TestMemoryMetrics:
    def test_rss_reported_for_rule_service(self, rule_service):
        _, client = rule_service
        memory = client.metrics()["memory"]
        assert memory["rss_bytes"] > 0
        assert "weights_bytes" not in memory  # no neural generator attached

    def test_weights_footprint_and_mmap_flag(self, trained_neural, tmp_path):
        """LANTERN-ZERO observability: /metrics must say how big the model
        is and whether its pages are mmap-shared with the checkpoint file."""
        from repro.nlg.neural_lantern import NeuralLantern
        from repro.nlg.persistence import load_qep2seq, save_qep2seq
        from repro.service.server import LanternService

        facade = Lantern(
            neural=NeuralLantern(trained_neural.model, beam_size=2),
            config=LanternConfig(seed=None),
        )
        private = LanternService(lantern=facade).memory_info()
        assert private["weights_bytes"] > 0
        assert private["weights_parameter_count"] == trained_neural.model.parameter_count()
        assert private["weights_mmap_shared"] is False

        target = save_qep2seq(trained_neural.model, tmp_path / "mapped", weights_layout="mmap")
        mapped_facade = Lantern(
            neural=NeuralLantern(load_qep2seq(target), beam_size=2),
            config=LanternConfig(seed=None),
        )
        shared = LanternService(lantern=mapped_facade).memory_info()
        assert shared["weights_mmap_shared"] is True
        assert shared["weights_bytes"] == private["weights_bytes"]


class TestKeepAliveClient:
    def test_connection_is_reused_across_requests(self, rule_service, payloads):
        service, _ = rule_service
        host, port = service._httpd.server_address
        with LanternClient(f"http://{host}:{port}") as client:
            client.healthz()
            first_socket = client._connection.sock
            assert first_socket is not None
            client.narrate(payloads[0])
            client.metrics()
            assert client._connection.sock is first_socket  # same TCP stream

    def test_keep_alive_false_closes_per_request(self, rule_service):
        service, _ = rule_service
        host, port = service._httpd.server_address
        client = LanternClient(f"http://{host}:{port}", keep_alive=False)
        client.healthz()
        assert client._connection is None

    def test_stale_connection_is_retried_transparently(self, rule_service, payloads):
        """A kept-alive socket the peer (or an idle timeout) tore down must
        not surface as an error — the request is replayed on a fresh
        connection, exactly once, and only because it never reached a live
        server socket."""
        service, _ = rule_service
        host, port = service._httpd.server_address
        with LanternClient(f"http://{host}:{port}") as client:
            client.healthz()
            client._connection.sock.close()  # simulate server-side teardown
            result = client.narrate(payloads[0])
            assert result["narration"]["text"]

    def test_fresh_connection_failure_is_not_retried(self):
        """Against a dead endpoint the first attempt is on a FRESH
        connection, so the client fails immediately with ServiceError."""
        from repro.errors import ServiceError

        client = LanternClient("http://127.0.0.1:9")  # discard port: nothing listens
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()

    def test_close_is_idempotent_and_reopens_lazily(self, rule_service):
        service, _ = rule_service
        host, port = service._httpd.server_address
        client = LanternClient(f"http://{host}:{port}")
        client.close()
        client.close()
        assert client.healthz()["status"] == "ok"  # reconnects on demand
        client.close()


def _heavy_plan() -> dict:
    """A 13-relation hash-join chain under Sort+Aggregate: enough narration
    work that the traced stages dominate the request's fixed overheads."""

    def scan(relation: str) -> dict:
        return {"Node Type": "Seq Scan", "Relation Name": relation}

    plan = scan("author")
    for index, relation in enumerate(
        ["publication", "writes", "venue", "cite", "domain", "conference",
         "journal", "keyword", "affiliation", "topic", "citation", "series"]
    ):
        plan = {
            "Node Type": "Hash Join",
            "Hash Cond": f"(t{index}.id = {relation}.id)",
            "Plans": [plan, {"Node Type": "Hash", "Plans": [scan(relation)]}],
        }
    return {
        "Plan": {
            "Node Type": "Aggregate",
            "Strategy": "Hashed",
            "Plans": [{"Node Type": "Sort", "Sort Key": ["x"], "Plans": [plan]}],
        }
    }


class TestTracing:
    REQUIRED_STAGES = {"admission", "queue_wait", "batch_assembly", "decode", "respond"}

    def test_single_narrate_yields_complete_trace(self):
        """Acceptance: one POST /narrate produces a retrievable span tree
        covering admission → queue wait → batch assembly → decode (with
        cache and precision tags) → respond, whose stage durations tile the
        recorded end-to-end latency to within 10%."""
        service = build_service(port=0)
        host, port = service.start()
        client = LanternClient(f"http://{host}:{port}")
        try:
            traces = []
            for _ in range(3):  # the ratio check keeps the best of three
                result = client.narrate(_heavy_plan())
                assert result["narration"]["steps"]
                trace_id = result["trace_id"]
                document = client.trace()
                assert document["enabled"] is True
                (trace,) = [
                    candidate
                    for candidate in document["slowest"]
                    if candidate["trace_id"] == trace_id
                ]
                traces.append(trace)

            ratios = []
            for trace in traces:
                assert trace["name"] == "POST /narrate"
                assert trace["tags"]["status"] == 200
                children = {child["name"]: child for child in trace["children"]}
                assert self.REQUIRED_STAGES <= children.keys()
                decode = children["decode"]["tags"]
                assert decode["batch_size"] >= 1
                assert decode["mode"] == "rule"
                assert decode["precision"] == "rule"  # no neural generator
                assert decode["cache_hits"] >= 0 and decode["cache_misses"] >= 0
                stage_sum = sum(child["duration_ms"] for child in trace["children"])
                assert stage_sum <= trace["duration_ms"] * 1.001  # stages nest inside
                ratios.append(stage_sum / trace["duration_ms"])
            assert max(ratios) >= 0.90, f"stage coverage too low: {ratios}"
        finally:
            client.close()
            service.stop()

    def test_trace_endpoint_shape_and_limit(self, rule_service, payloads):
        _, client = rule_service
        client.narrate(payloads[0])
        client.narrate(payloads[1])
        document = client.trace(limit=1)
        assert document["completed"] >= 2
        assert len(document["slowest"]) == 1
        root = document["slowest"][0]
        assert root["trace_id"] and root["children"]

    def test_tracing_can_be_disabled(self, payloads):
        service = build_service(port=0, tracing_enabled=False)
        host, port = service.start()
        client = LanternClient(f"http://{host}:{port}")
        try:
            result = client.narrate(payloads[0])
            assert "trace_id" not in result
            document = client.trace()
            assert document["enabled"] is False
            assert document["slowest"] == []
        finally:
            client.close()
            service.stop()

    def test_trace_log_writes_sampled_jsonl(self, payloads, tmp_path):
        from repro.obs import read_events

        log_path = tmp_path / "traces.jsonl"
        service = build_service(port=0, trace_log=str(log_path), trace_log_every=2)
        host, port = service.start()
        client = LanternClient(f"http://{host}:{port}")
        try:
            for _ in range(4):
                client.narrate(payloads[0])
        finally:
            client.close()
            service.stop()  # closes the log
        events = list(read_events(log_path))
        assert len(events) == 2  # every 2nd of 4
        assert all(event["event"] == "trace" for event in events)
        assert all(event["name"] == "POST /narrate" for event in events)


class TestObservabilityEndpoints:
    def test_prometheus_exposition_parses(self, rule_service, payloads):
        from repro.obs import validate_exposition

        _, client = rule_service
        client.narrate(payloads[0])
        text = client.prometheus_metrics()
        assert validate_exposition(text) > 20
        for needle in (
            'lantern_requests_total{endpoint="/narrate"}',
            'lantern_request_latency_seconds_bucket{endpoint="/narrate",le="+Inf"}',
            'lantern_stage_latency_seconds_bucket{stage="decode"',
            "lantern_batches_total",
            "lantern_batches_failed_total 0",
            "lantern_queue_depth 0",
            'lantern_rule_memo_lookups_total{outcome="hit"}',
        ):
            assert needle in text, f"missing {needle}"

    def test_endpoint_breakdown_keeps_narrate_percentiles_clean(
        self, rule_service, payloads
    ):
        _, client = rule_service
        client.narrate(payloads[0])
        client.healthz()
        client.metrics()  # a scrape is itself recorded — visible next scrape
        metrics = client.metrics()
        by_endpoint = metrics["requests"]["by_endpoint"]
        assert by_endpoint["/narrate"] >= 1
        assert by_endpoint["/healthz"] >= 1
        assert by_endpoint["/metrics"] >= 1
        # the headline latency document counts only /narrate successes
        assert 1 <= metrics["latency_ms"]["count"] <= by_endpoint["/narrate"]
        assert metrics["latency_ms"] == metrics["latency_ms_by_endpoint"]["/narrate"]
        assert "/healthz" in metrics["latency_ms_by_endpoint"]
        assert set(metrics["stages"]) >= {"admission", "decode", "respond"}
        assert metrics["tracing"]["enabled"] is True

    def test_batch_failures_are_counted_by_error_class(self, payloads):
        class _ExplodingLantern(Lantern):
            def describe_plans(self, trees, mode, collect_errors=True):
                raise RuntimeError("decoder fell over")

        service = build_service(lantern=_ExplodingLantern(), port=0)
        host, port = service.start()
        client = LanternClient(f"http://{host}:{port}")
        try:
            with pytest.raises(LanternServiceError) as excinfo:
                client.narrate(payloads[0])
            assert excinfo.value.status == 500
            metrics = client.metrics()
            assert metrics["batching"]["batches_failed"] == 1
            assert metrics["batching"]["batch_errors"] == {"RuntimeError": 1}
            assert "lantern_batches_failed_total 1" in client.prometheus_metrics()
        finally:
            client.close()
            service.stop()


class TestTelemetry:
    def test_percentiles(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == pytest.approx(50.5)
        assert percentile(values, 0.99) == pytest.approx(99.01)
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.9) == 7.0

    def test_snapshot_aggregates(self):
        telemetry = ServiceTelemetry()
        telemetry.record_request(200, 0.010, plan_format="postgres-json", mode="rule")
        telemetry.record_request(429, 0.001)
        telemetry.record_batch(4)
        snapshot = telemetry.snapshot(decode_cache_stats={"hits": 1}, queue_depth=3)
        assert snapshot["requests"]["total"] == 2
        assert snapshot["requests"]["rejected_overload"] == 1
        assert snapshot["requests"]["by_format"] == {"postgres-json": 1}
        assert snapshot["latency_ms"]["count"] == 1  # only 200s count
        assert snapshot["batching"]["avg_batch_size"] == 4
        assert snapshot["batching"]["queue_depth"] == 3
        assert snapshot["decode_cache"] == {"hits": 1}
