"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.tags import abstract_step_text, restore_step_text
from repro.nlg.metrics import bleu_score, self_bleu, token_error_count
from repro.nlg.paraphrase import ParaphraseEngine
from repro.nlg.tokenizer import tokenize
from repro.nlg.vocab import Vocabulary
from repro.sqlengine import Database, DataType
from repro.sqlengine.expressions import evaluate
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.statistics import SelectivityEstimator, analyze_table
from repro.study.boredom import HabituationModel, text_similarity

_settings = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])

words = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
token_lists = st.lists(words, min_size=1, max_size=12)


class TestVocabularyProperties:
    @given(tokens=token_lists)
    @_settings
    def test_encode_decode_roundtrip(self, tokens):
        vocabulary = Vocabulary(tokens)
        assert vocabulary.decode(vocabulary.encode(tokens)) == tokens

    @given(tokens=token_lists)
    @_settings
    def test_ids_are_unique_and_stable(self, tokens):
        vocabulary = Vocabulary(tokens)
        ids = [vocabulary.id_of(token) for token in set(tokens)]
        assert len(ids) == len(set(ids))


class TestMetricsProperties:
    @given(tokens=token_lists)
    @_settings
    def test_bleu_identity_is_maximal(self, tokens):
        assert bleu_score(tokens, [tokens]) >= bleu_score(tokens + ["zzz"], [tokens])

    @given(tokens=st.lists(words, min_size=2, max_size=10))
    @_settings
    def test_bleu_within_bounds(self, tokens):
        score = bleu_score(tokens, [list(reversed(tokens))])
        assert 0.0 <= score <= 100.0

    @given(group=st.lists(token_lists, min_size=1, max_size=4))
    @_settings
    def test_self_bleu_bounds(self, group):
        assert 0.0 <= self_bleu(group) <= 1.0

    @given(first=token_lists, second=token_lists)
    @_settings
    def test_token_error_count_is_metric_like(self, first, second):
        assert token_error_count(first, first) == 0
        assert token_error_count(first, second) == token_error_count(second, first)
        assert token_error_count(first, second) <= max(len(first), len(second))


class TestTagProperties:
    @given(
        relation=st.text(alphabet="abcdefgh", min_size=3, max_size=8),
        condition=st.text(alphabet="xyzuvw<> 0123456789", min_size=3, max_size=15),
    )
    @_settings
    def test_abstract_restore_roundtrip(self, relation, condition):
        text = f"perform sequential scan on {relation} and filtering on ({condition}) to get T1."
        abstracted, mapping = abstract_step_text(
            text, relations=[relation], filter_condition=f"({condition})"
        )
        assert restore_step_text(abstracted, mapping) == text

    @given(relation=st.text(alphabet="abcdefgh", min_size=3, max_size=8))
    @_settings
    def test_paraphrasing_preserves_tags(self, relation):
        text = f"perform sequential scan on <T> and filtering on <F> near {relation} to get <TN> ."
        group = ParaphraseEngine().expand(text)
        for sample in group.samples:
            assert sample.count("<T>") == text.count("<T>")
            assert sample.count("<F>") == text.count("<F>")
            assert sample.count("<TN>") == text.count("<TN>")


class TestSimilarityProperties:
    @given(text=st.text(alphabet="abc def", min_size=1, max_size=30))
    @_settings
    def test_similarity_reflexive_and_bounded(self, text):
        assert 0.0 <= text_similarity(text, text + " extra") <= 1.0
        if text.strip():
            assert text_similarity(text, text) == 1.0

    @given(texts=st.lists(st.sampled_from(["alpha beta gamma", "delta epsilon", "alpha beta gamma"]), min_size=1, max_size=20))
    @_settings
    def test_habituation_state_never_negative(self, texts):
        model = HabituationModel(boredom_proneness=0.9)
        for text in texts:
            assert model.expose(text) >= 0.0


class TestEngineProperties:
    @given(
        values=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=60),
        threshold=st.integers(min_value=-1000, max_value=1000),
    )
    @_settings
    def test_filter_matches_python_semantics(self, values, threshold):
        db = Database("prop", enable_parallel=False)
        db.create_table("t", [("v", DataType.INTEGER)])
        db.insert("t", [(value,) for value in values])
        db.analyze()
        rows = db.execute(f"SELECT v FROM t WHERE t.v > {threshold}")
        assert sorted(row["v"] for row in rows) == sorted(v for v in values if v > threshold)

    @given(
        values=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
    )
    @_settings
    def test_group_count_matches_python(self, values):
        db = Database("prop2", enable_parallel=False)
        db.create_table("t", [("v", DataType.INTEGER)])
        db.insert("t", [(value,) for value in values])
        db.analyze()
        rows = db.execute("SELECT t.v, count(*) AS n FROM t GROUP BY t.v")
        expected: dict[int, int] = {}
        for value in values:
            expected[value] = expected.get(value, 0) + 1
        assert {row["v"]: row["n"] for row in rows} == expected

    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=2, max_size=80))
    @_settings
    def test_selectivity_always_in_unit_interval(self, values):
        db = Database("prop3", enable_parallel=False)
        db.create_table("t", [("v", DataType.FLOAT)])
        db.insert("t", [(value,) for value in values])
        statistics = analyze_table(db.storage.table("t"))
        estimator = SelectivityEstimator({"t": statistics}, {"v": "t"})
        for condition in ("t.v > 0", "t.v = 1.5", "t.v < -100 OR t.v > 100", "NOT t.v = 0"):
            where = parse_sql(f"SELECT v FROM t WHERE {condition}").where
            assert 0.0 <= estimator.selectivity(where) <= 1.0

    @given(
        left=st.integers(min_value=-100, max_value=100),
        right=st.integers(min_value=-100, max_value=100),
    )
    @_settings
    def test_expression_arithmetic_matches_python(self, left, right):
        statement = parse_sql(f"SELECT a FROM t WHERE {left} + a * {right} >= 0")
        row = {"t.a": 3}
        expected = (left + 3 * right) >= 0
        assert evaluate(statement.where, row) is expected


class TestTokenizerProperties:
    @given(tokens=st.lists(st.sampled_from(["perform", "scan", "<T>", "<F>", "on", "rows", "."]), min_size=1, max_size=15))
    @_settings
    def test_tokenize_is_stable_under_detokenize(self, tokens):
        from repro.nlg.tokenizer import detokenize

        text = detokenize(tokens)
        assert tokenize(text) == tokenize(detokenize(tokenize(text)))
