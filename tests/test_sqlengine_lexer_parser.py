"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqlengine.ast_nodes import (
    Between,
    BinaryOp,
    BooleanOp,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    NotOp,
    Star,
)
from repro.sqlengine.lexer import tokenize
from repro.sqlengine.parser import parse_sql


class TestLexer:
    def test_keywords_are_lowercased(self):
        tokens = tokenize("SELECT a FROM t")
        assert [t.kind for t in tokens[:3]] == ["keyword", "name", "keyword"]
        assert tokens[0].value == "select"

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].kind == "string"
        assert tokens[1].value == "it's"

    def test_numbers_and_operators(self):
        tokens = tokenize("a >= 1.5")
        assert tokens[1].value == ">="
        assert tokens[2].kind == "number"

    def test_comments_are_skipped(self):
        tokens = tokenize("SELECT a -- trailing comment\nFROM t")
        assert all(t.kind != "comment" for t in tokens)
        assert tokens[-1].kind == "eof"

    def test_unexpected_character_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @a FROM t")


class TestParserBasics:
    def test_simple_select(self):
        stmt = parse_sql("SELECT a, b FROM t")
        assert len(stmt.select_items) == 2
        assert stmt.from_tables[0].name == "t"
        assert stmt.where is None

    def test_star_projection(self):
        stmt = parse_sql("SELECT * FROM t")
        assert isinstance(stmt.select_items[0].expression, Star)

    def test_table_alias(self):
        stmt = parse_sql("SELECT c.name FROM customer c")
        assert stmt.from_tables[0].alias == "c"
        assert stmt.from_tables[0].binding == "c"

    def test_column_alias_with_as(self):
        stmt = parse_sql("SELECT count(*) AS n FROM t")
        assert stmt.select_items[0].alias == "n"

    def test_distinct_flag(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct
        assert not parse_sql("SELECT a FROM t").distinct

    def test_limit_and_offset(self):
        stmt = parse_sql("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit == 10
        assert stmt.offset == 5

    def test_trailing_garbage_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT a FROM t WHERE")

    def test_missing_from_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT a")


class TestParserExpressions:
    def test_comparison_predicate(self):
        stmt = parse_sql("SELECT a FROM t WHERE a > 5")
        assert isinstance(stmt.where, BinaryOp)
        assert stmt.where.operator == ">"

    def test_and_or_precedence(self):
        stmt = parse_sql("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, BooleanOp)
        assert stmt.where.operator == "or"
        assert isinstance(stmt.where.operands[1], BooleanOp)
        assert stmt.where.operands[1].operator == "and"

    def test_not_like(self):
        stmt = parse_sql("SELECT a FROM t WHERE name NOT LIKE 'x%'")
        assert isinstance(stmt.where, NotOp)
        assert isinstance(stmt.where.operand, BinaryOp)
        assert stmt.where.operand.operator == "like"

    def test_in_list(self):
        stmt = parse_sql("SELECT a FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, InList)
        assert len(stmt.where.items) == 3

    def test_between(self):
        stmt = parse_sql("SELECT a FROM t WHERE a BETWEEN 1 AND 10")
        assert isinstance(stmt.where, Between)

    def test_is_not_null(self):
        stmt = parse_sql("SELECT a FROM t WHERE a IS NOT NULL")
        assert isinstance(stmt.where, IsNull)
        assert stmt.where.negated

    def test_arithmetic_precedence(self):
        stmt = parse_sql("SELECT a + b * 2 FROM t")
        expr = stmt.select_items[0].expression
        assert isinstance(expr, BinaryOp)
        assert expr.operator == "+"
        assert isinstance(expr.right, BinaryOp)
        assert expr.right.operator == "*"

    def test_negative_literal(self):
        stmt = parse_sql("SELECT a FROM t WHERE a > -5")
        assert isinstance(stmt.where.right, Literal)
        assert stmt.where.right.value == -5

    def test_qualified_column(self):
        stmt = parse_sql("SELECT t.a FROM t")
        column = stmt.select_items[0].expression
        assert isinstance(column, ColumnRef)
        assert column.table == "t"

    def test_count_star_aggregate(self):
        stmt = parse_sql("SELECT count(*) FROM t")
        call = stmt.select_items[0].expression
        assert isinstance(call, FunctionCall)
        assert call.is_aggregate

    def test_count_distinct(self):
        stmt = parse_sql("SELECT count(DISTINCT a) FROM t")
        assert stmt.select_items[0].expression.distinct

    def test_case_expression(self):
        stmt = parse_sql("SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t")
        assert "CASE" in str(stmt.select_items[0].expression)


class TestParserClauses:
    def test_group_by_and_having(self):
        stmt = parse_sql("SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.has_aggregation

    def test_order_by_desc(self):
        stmt = parse_sql("SELECT a FROM t ORDER BY a DESC, b")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending

    def test_explicit_join(self):
        stmt = parse_sql("SELECT a FROM t JOIN u ON t.id = u.id")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].join_type == "inner"
        assert len(stmt.relations) == 2

    def test_left_join(self):
        stmt = parse_sql("SELECT a FROM t LEFT JOIN u ON t.id = u.id")
        assert stmt.joins[0].join_type == "left"

    def test_implicit_join_comma_list(self):
        stmt = parse_sql("SELECT a FROM t, u, v WHERE t.id = u.id")
        assert len(stmt.from_tables) == 3

    def test_aggregates_collected_from_having_and_order(self):
        stmt = parse_sql(
            "SELECT a FROM t GROUP BY a HAVING sum(b) > 3 ORDER BY count(*) DESC"
        )
        names = sorted(str(call) for call in stmt.aggregates())
        assert names == ["COUNT(*)", "SUM(b)"]
