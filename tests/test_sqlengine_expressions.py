"""Unit tests for expression evaluation and predicate analysis."""

import datetime

import pytest

from repro.errors import ExecutionError
from repro.sqlengine.ast_nodes import BinaryOp, ColumnRef, Literal
from repro.sqlengine.expressions import (
    combine_conjuncts,
    evaluate,
    is_equijoin,
    referenced_bindings,
    referenced_columns,
    split_conjuncts,
)
from repro.sqlengine.parser import parse_sql


def _where(sql_condition: str):
    return parse_sql(f"SELECT a FROM t WHERE {sql_condition}").where


ROW = {"t.a": 5, "t.b": 2.5, "t.name": "Alice", "t.flag": None, "t.d": datetime.date(1995, 3, 15)}


class TestEvaluation:
    @pytest.mark.parametrize(
        "condition, expected",
        [
            ("a = 5", True),
            ("a <> 5", False),
            ("a < 10 AND b > 1", True),
            ("a < 3 OR b > 1", True),
            ("NOT a = 5", False),
            ("a BETWEEN 1 AND 5", True),
            ("a NOT BETWEEN 1 AND 5", False),
            ("a IN (1, 2, 5)", True),
            ("a NOT IN (1, 2, 3)", True),
            ("name LIKE 'Ali%'", True),
            ("name LIKE '%lice'", True),
            ("name LIKE 'Bob%'", False),
            ("flag IS NULL", True),
            ("flag IS NOT NULL", False),
            ("a + b = 7.5", True),
            ("a * 2 = 10", True),
            ("a - 1 = 4", True),
            ("a % 2 = 1", True),
        ],
    )
    def test_predicates(self, condition, expected):
        assert evaluate(_where(condition), ROW) is expected

    def test_null_propagates_through_comparison(self):
        assert evaluate(_where("flag > 1"), ROW) is None

    def test_and_with_null_and_false_is_false(self):
        assert evaluate(_where("flag > 1 AND a = 1"), ROW) is False

    def test_or_with_null_and_true_is_true(self):
        assert evaluate(_where("flag > 1 OR a = 5"), ROW) is True

    def test_date_comparison_with_iso_string(self):
        assert evaluate(_where("d < '1996-01-01'"), ROW) is True

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            evaluate(_where("a / 0 > 1"), ROW)

    def test_unknown_column_raises(self):
        with pytest.raises(ExecutionError):
            evaluate(BinaryOp("=", ColumnRef("zzz"), Literal(1)), ROW)

    def test_unqualified_column_resolves_by_suffix(self):
        assert evaluate(BinaryOp("=", ColumnRef("a"), Literal(5)), ROW) is True

    def test_case_expression(self):
        expression = parse_sql(
            "SELECT CASE WHEN a > 3 THEN 'big' ELSE 'small' END FROM t"
        ).select_items[0].expression
        assert evaluate(expression, ROW) == "big"

    def test_string_concatenation(self):
        expression = parse_sql("SELECT name || '!' FROM t").select_items[0].expression
        assert evaluate(expression, ROW) == "Alice!"

    def test_scalar_functions(self):
        assert evaluate(parse_sql("SELECT upper(name) FROM t").select_items[0].expression, ROW) == "ALICE"
        assert evaluate(parse_sql("SELECT length(name) FROM t").select_items[0].expression, ROW) == 5
        assert evaluate(parse_sql("SELECT abs(b) FROM t").select_items[0].expression, ROW) == 2.5


class TestPredicateAnalysis:
    def test_split_and_combine_conjuncts_roundtrip(self):
        condition = _where("a = 1 AND b = 2 AND name LIKE 'x%'")
        conjuncts = split_conjuncts(condition)
        assert len(conjuncts) == 3
        rebuilt = combine_conjuncts(conjuncts)
        assert sorted(str(c) for c in split_conjuncts(rebuilt)) == sorted(str(c) for c in conjuncts)

    def test_split_none_returns_empty(self):
        assert split_conjuncts(None) == []

    def test_combine_empty_returns_none(self):
        assert combine_conjuncts([]) is None

    def test_is_equijoin(self):
        assert is_equijoin(_where("t.a = u.b"))
        assert not is_equijoin(_where("t.a = 3"))
        assert not is_equijoin(_where("t.a > u.b"))

    def test_referenced_columns_and_bindings(self):
        condition = _where("t.a = u.b AND c > 5")
        columns = referenced_columns(condition)
        assert {column.name for column in columns} == {"a", "b", "c"}
        bindings = referenced_bindings(condition, {"c": "v"})
        assert bindings == {"t", "u", "v"}
