"""Unit tests for the cost-based planner (access paths, join ordering, post-join planning)."""

import pytest

from repro.errors import PlanningError
from repro.sqlengine import Database, DataType
from repro.sqlengine.physical import (
    GROUP_AGGREGATE,
    HASH_AGGREGATE,
    HASH_JOIN,
    INDEX_SCAN,
    LIMIT,
    MERGE_JOIN,
    NESTED_LOOP,
    SEQ_SCAN,
    SORT,
    UNIQUE,
)


@pytest.fixture(scope="module")
def planner_db():
    db = Database("planner", enable_parallel=False)
    db.create_table("big", [("id", DataType.INTEGER), ("fk", DataType.INTEGER), ("v", DataType.FLOAT)])
    db.create_table("small", [("id", DataType.INTEGER), ("label", DataType.TEXT)])
    db.insert("big", [(i, i % 200, float(i)) for i in range(20000)])
    db.insert("small", [(i, f"label{i % 10}") for i in range(200)])
    db.create_index("idx_big_id", "big", ["id"])
    db.create_index("idx_big_fk", "big", ["fk"])
    db.analyze()
    return db


class TestAccessPaths:
    def test_full_scan_without_predicate(self, planner_db):
        plan = planner_db.plan("SELECT v FROM big b")
        assert plan.root.node_type == SEQ_SCAN

    def test_selective_equality_uses_index(self, planner_db):
        plan = planner_db.plan("SELECT v FROM big b WHERE b.id = 17")
        assert INDEX_SCAN in plan.operators()
        index_node = plan.root.find(INDEX_SCAN)[0]
        assert index_node.index_name == "idx_big_id"
        assert index_node.index_condition is not None

    def test_unselective_range_prefers_seq_scan(self, planner_db):
        plan = planner_db.plan("SELECT v FROM big b WHERE b.id > 5")
        assert plan.root.find(SEQ_SCAN)

    def test_selective_range_uses_index(self, planner_db):
        plan = planner_db.plan("SELECT v FROM big b WHERE b.id BETWEEN 100 AND 110")
        # BETWEEN is split into two range conjuncts; index should win for a tight range
        assert plan.operators()[0] in (INDEX_SCAN, SEQ_SCAN)

    def test_unknown_table_raises(self, planner_db):
        with pytest.raises(PlanningError):
            planner_db.plan("SELECT x FROM missing m")

    def test_duplicate_binding_raises(self, planner_db):
        with pytest.raises(PlanningError):
            planner_db.plan("SELECT b.v FROM big b, small b")


class TestJoinPlanning:
    def test_equijoin_produces_join_operator(self, planner_db):
        plan = planner_db.plan(
            "SELECT s.label FROM big b, small s WHERE b.fk = s.id AND b.v < 50"
        )
        operators = plan.operators()
        assert any(op in operators for op in (HASH_JOIN, MERGE_JOIN, NESTED_LOOP))

    def test_hash_join_has_hash_child(self, planner_db):
        plan = planner_db.plan("SELECT s.label FROM big b, small s WHERE b.fk = s.id")
        joins = plan.root.find(HASH_JOIN)
        if joins:
            child_types = [child.node_type for child in joins[0].children]
            assert "Hash" in child_types

    def test_join_condition_recorded(self, planner_db):
        plan = planner_db.plan("SELECT s.label FROM big b, small s WHERE b.fk = s.id")
        join_nodes = [node for node in plan.root.walk() if node.is_join]
        assert join_nodes and join_nodes[0].join_condition is not None

    def test_three_way_join_covers_all_relations(self, planner_db, toy_db):
        plan = toy_db.plan(
            "SELECT u.name FROM users u, orders o, users v "
            "WHERE u.id = o.user_id AND v.id = o.user_id"
        )
        relations = {node.relation for node in plan.root.walk() if node.relation}
        assert relations == {"users", "orders"}
        scans = [node for node in plan.root.walk() if node.is_scan]
        assert len(scans) == 3

    def test_cross_product_falls_back_to_nested_loop(self, toy_db):
        plan = toy_db.plan("SELECT u.name FROM users u, orders o LIMIT 3")
        assert NESTED_LOOP in plan.operators()


class TestPostJoinPlanning:
    def test_group_by_produces_aggregate(self, planner_db):
        plan = planner_db.plan("SELECT s.label, count(*) FROM small s GROUP BY s.label")
        assert any(op in plan.operators() for op in (HASH_AGGREGATE, GROUP_AGGREGATE))

    def test_plain_aggregate_without_group(self, planner_db):
        plan = planner_db.plan("SELECT count(*) FROM small s")
        assert "Aggregate" in plan.operators()

    def test_group_aggregate_has_sort_child_when_sorted(self, planner_db):
        plan = planner_db.plan("SELECT b.fk, count(*) FROM big b GROUP BY b.fk")
        aggregate = [node for node in plan.root.walk() if node.is_aggregate][0]
        if aggregate.node_type == GROUP_AGGREGATE:
            assert aggregate.children[0].node_type == SORT

    def test_having_becomes_aggregate_filter(self, planner_db):
        plan = planner_db.plan(
            "SELECT s.label, count(*) FROM small s GROUP BY s.label HAVING count(*) > 5"
        )
        aggregate = [node for node in plan.root.walk() if node.is_aggregate][0]
        assert aggregate.filter is not None

    def test_order_by_adds_sort(self, planner_db):
        plan = planner_db.plan("SELECT v FROM big b ORDER BY b.v DESC")
        assert plan.root.node_type == SORT
        assert plan.root.sort_keys

    def test_limit_is_topmost(self, planner_db):
        plan = planner_db.plan("SELECT v FROM big b ORDER BY b.v LIMIT 7")
        assert plan.root.node_type == LIMIT
        assert plan.root.extra["limit"] == 7

    def test_distinct_produces_unique_or_hashaggregate(self, planner_db):
        plain = planner_db.plan("SELECT DISTINCT s.label FROM small s")
        assert plain.root.node_type in (HASH_AGGREGATE, UNIQUE)
        with_order = planner_db.plan("SELECT DISTINCT s.label FROM small s ORDER BY s.label")
        assert UNIQUE in with_order.operators()

    def test_estimated_rows_positive_and_costs_monotone(self, planner_db):
        plan = planner_db.plan(
            "SELECT s.label, count(*) FROM big b, small s WHERE b.fk = s.id GROUP BY s.label"
        )
        for node in plan.root.walk():
            assert node.plan_rows >= 1.0
            for child in node.children:
                assert node.total_cost >= child.total_cost - 1e-9

    def test_order_by_output_alias_is_resolved(self, planner_db):
        plan = planner_db.plan(
            "SELECT s.label, count(*) AS n FROM small s GROUP BY s.label ORDER BY n DESC"
        )
        sort_nodes = plan.root.find(SORT)
        assert sort_nodes
        expressions = sort_nodes[0].extra["order_expressions"]
        assert "COUNT" in str(expressions[0][0]).upper()


class TestParallelPlanning:
    def test_parallel_scan_for_large_tables(self):
        db = Database("parallel", enable_parallel=True)
        db.create_table("huge", [("id", DataType.INTEGER)])
        db.insert("huge", [(i,) for i in range(1000)])
        db.analyze()
        # force the threshold by faking statistics
        db._statistics["huge"].row_count = 300_000
        plan = db.plan("SELECT id FROM huge h")
        assert plan.operators()[0] == "Gather"
        assert "Parallel Seq Scan" in plan.operators()
