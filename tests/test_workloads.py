"""Tests for the workload schemas, data generators, and the random query generator."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import build_dblp_database, sdss_queries, tpch_queries
from repro.workloads.dblp import DBLP_JOIN_GRAPH
from repro.workloads.generator import RandomQueryGenerator
from repro.workloads.imdb import IMDB_JOIN_GRAPH
from repro.workloads.sdss import SDSS_JOIN_GRAPH
from repro.workloads.tpch import TPCH_JOIN_GRAPH, build_tpch_database


class TestTpch:
    def test_schema_has_eight_tables(self, tpch_db):
        assert len(tpch_db.catalog.table_names) == 8

    def test_row_count_ratios(self, tpch_db):
        orders = tpch_db.row_count("orders")
        customers = tpch_db.row_count("customer")
        lineitems = tpch_db.row_count("lineitem")
        assert orders == pytest.approx(customers * 10, rel=0.2)
        assert lineitems > orders

    def test_foreign_keys_consistent(self, tpch_db):
        customer_keys = set(tpch_db.storage.table("customer").column_values("c_custkey"))
        order_custkeys = set(tpch_db.storage.table("orders").column_values("o_custkey"))
        assert order_custkeys <= customer_keys

    def test_deterministic_generation(self):
        first = build_tpch_database(scale=0.0005, seed=3)
        second = build_tpch_database(scale=0.0005, seed=3)
        assert list(first.storage.table("orders").scan()) == list(second.storage.table("orders").scan())

    def test_there_are_22_queries(self):
        queries = tpch_queries()
        assert len(queries) == 22
        assert [query.number for query in queries] == list(range(1, 23))

    def test_queries_reference_known_tables(self, tpch_db):
        known = set(tpch_db.catalog.table_names)
        for query in tpch_queries():
            statement = tpch_db.parse(query.sql)
            for relation in statement.relations:
                assert relation.name in known

    def test_all_queries_plan(self, tpch_db):
        for query in tpch_queries():
            plan = tpch_db.plan(query.sql)
            assert plan.root.plan_rows >= 1

    def test_join_graph_edges_reference_real_columns(self, tpch_db):
        for left_table, left_column, right_table, right_column in TPCH_JOIN_GRAPH:
            assert tpch_db.catalog.table(left_table).has_column(left_column)
            assert tpch_db.catalog.table(right_table).has_column(right_column)


class TestOtherWorkloads:
    def test_sdss_queries_plan(self, sdss_db):
        for query in sdss_queries():
            assert sdss_db.plan(query.sql).root.plan_rows >= 1

    def test_sdss_join_graph_valid(self, sdss_db):
        for left_table, left_column, right_table, right_column in SDSS_JOIN_GRAPH:
            assert sdss_db.catalog.table(left_table).has_column(left_column)
            assert sdss_db.catalog.table(right_table).has_column(right_column)

    def test_imdb_schema_and_indexes(self, imdb_db):
        assert imdb_db.catalog.has_table("title")
        assert imdb_db.catalog.indexes_for("cast_info")
        for left_table, left_column, right_table, right_column in IMDB_JOIN_GRAPH:
            assert imdb_db.catalog.table(left_table).has_column(left_column)
            assert imdb_db.catalog.table(right_table).has_column(right_column)

    def test_dblp_example_query_runs(self, dblp_db):
        from repro.workloads.dblp import EXAMPLE_QUERY

        rows = dblp_db.execute(EXAMPLE_QUERY)
        assert isinstance(rows, list)

    def test_dblp_foreign_keys(self, dblp_db):
        publication_keys = set(dblp_db.storage.table("publication").column_values("pub_key"))
        inproceedings_keys = set(dblp_db.storage.table("inproceedings").column_values("paper_key"))
        assert inproceedings_keys <= publication_keys


class TestRandomQueryGenerator:
    def test_generates_requested_count(self, imdb_db):
        generator = RandomQueryGenerator(imdb_db, IMDB_JOIN_GRAPH, seed=5)
        assert len(generator.generate(25)) == 25

    def test_all_generated_queries_plan_and_execute(self, dblp_db):
        generator = RandomQueryGenerator(dblp_db, DBLP_JOIN_GRAPH, seed=6)
        for generated in generator.generate(40):
            plan = dblp_db.plan(generated.sql)
            assert plan.root.plan_rows >= 1
            dblp_db.execute(generated.sql)

    def test_deterministic_given_seed(self, dblp_db):
        first = [g.sql for g in RandomQueryGenerator(dblp_db, DBLP_JOIN_GRAPH, seed=7).generate(10)]
        second = [g.sql for g in RandomQueryGenerator(dblp_db, DBLP_JOIN_GRAPH, seed=7).generate(10)]
        assert first == second

    def test_structural_metadata_matches_sql(self, dblp_db):
        generator = RandomQueryGenerator(dblp_db, DBLP_JOIN_GRAPH, seed=8)
        for generated in generator.generate(30):
            lowered = generated.sql.lower()
            assert generated.has_group_by == ("group by" in lowered)
            assert generated.has_limit == ("limit" in lowered)
            assert generated.distinct == ("select distinct" in lowered)
            assert len(generated.tables) == generated.join_count + 1

    def test_plan_diversity(self, imdb_db, poem_store, lantern):
        generator = RandomQueryGenerator(imdb_db, IMDB_JOIN_GRAPH, seed=9)
        operator_sets = set()
        for generated in generator.generate(30):
            tree = lantern.plan_for_sql(imdb_db, generated.sql)
            operator_sets.add(tuple(tree.operator_names()))
        assert len(operator_sets) > 10

    def test_empty_join_graph_rejected(self, dblp_db):
        with pytest.raises(WorkloadError):
            RandomQueryGenerator(dblp_db, [], seed=1)
