"""Integration tests: planning + execution produce correct results on known data."""

import pytest

from repro.sqlengine import Database, DataType


class TestScansAndFilters:
    def test_full_scan(self, toy_db):
        rows = toy_db.execute("SELECT id, name FROM users u")
        assert len(rows) == 5

    def test_filter_equality(self, toy_db):
        rows = toy_db.execute("SELECT name FROM users u WHERE u.city = 'london'")
        assert sorted(row["name"] for row in rows) == ["alice", "carol"]

    def test_filter_range_and_like(self, toy_db):
        rows = toy_db.execute("SELECT name FROM users u WHERE u.age > 30 AND u.name LIKE '%a%'")
        assert sorted(row["name"] for row in rows) == ["alice", "carol"]

    def test_index_scan_results_match_seq_scan(self, toy_db):
        indexed = toy_db.execute("SELECT order_id FROM orders o WHERE o.user_id = 5")
        assert sorted(row["order_id"] for row in indexed) == [15, 16]

    def test_in_and_between(self, toy_db):
        rows = toy_db.execute("SELECT id FROM users u WHERE u.id IN (1, 3) AND u.age BETWEEN 30 AND 50")
        assert sorted(row["id"] for row in rows) == [1, 3]

    def test_projection_expression(self, toy_db):
        rows = toy_db.execute("SELECT o.amount * 2 AS double_amount FROM orders o WHERE o.order_id = 10")
        assert rows[0]["double_amount"] == pytest.approx(240.0)


class TestJoins:
    def test_inner_join_row_count(self, toy_db):
        rows = toy_db.execute(
            "SELECT u.name, o.amount FROM users u, orders o WHERE u.id = o.user_id"
        )
        assert len(rows) == 7

    def test_join_with_filter(self, toy_db):
        rows = toy_db.execute(
            "SELECT u.name, o.amount FROM users u JOIN orders o ON u.id = o.user_id "
            "WHERE o.status = 'shipped' AND u.city = 'london'"
        )
        amounts = sorted(row["amount"] for row in rows)
        assert amounts == [30.0, 120.0]

    def test_join_no_matches(self, toy_db):
        rows = toy_db.execute(
            "SELECT u.name FROM users u, orders o WHERE u.id = o.user_id AND o.amount > 10000"
        )
        assert rows == []

    def test_cross_join_cardinality(self, toy_db):
        rows = toy_db.execute("SELECT u.id, o.order_id FROM users u, orders o")
        assert len(rows) == 5 * 7

    def test_non_equi_join_condition(self, toy_db):
        rows = toy_db.execute(
            "SELECT u.name, o.order_id FROM users u, orders o "
            "WHERE u.id = o.user_id AND o.amount > u.age"
        )
        assert all(row["order_id"] in (10, 11, 13, 15) for row in rows)


class TestAggregation:
    def test_count_star(self, toy_db):
        rows = toy_db.execute("SELECT count(*) AS n FROM orders o")
        assert rows[0]["n"] == 7

    def test_group_by_with_sum_and_avg(self, toy_db):
        rows = toy_db.execute(
            "SELECT o.status, count(*) AS n, sum(o.amount) AS total, avg(o.amount) AS mean "
            "FROM orders o GROUP BY o.status ORDER BY o.status"
        )
        by_status = {row["status"]: row for row in rows}
        assert by_status["shipped"]["n"] == 4
        assert by_status["shipped"]["total"] == pytest.approx(229.99)
        assert by_status["pending"]["mean"] == pytest.approx((75.5 + 45.0) / 2)

    def test_having_filters_groups(self, toy_db):
        rows = toy_db.execute(
            "SELECT o.user_id, count(*) AS n FROM orders o GROUP BY o.user_id HAVING count(*) > 1"
        )
        assert sorted(row["user_id"] for row in rows) == [1, 3, 5]

    def test_min_max(self, toy_db):
        rows = toy_db.execute("SELECT min(o.amount) AS lo, max(o.amount) AS hi FROM orders o")
        assert rows[0]["lo"] == pytest.approx(19.99)
        assert rows[0]["hi"] == pytest.approx(250.0)

    def test_count_distinct(self, toy_db):
        rows = toy_db.execute("SELECT count(DISTINCT o.status) AS kinds FROM orders o")
        assert rows[0]["kinds"] == 3

    def test_group_join_aggregate(self, toy_db):
        rows = toy_db.execute(
            "SELECT u.city, sum(o.amount) AS total FROM users u, orders o "
            "WHERE u.id = o.user_id GROUP BY u.city ORDER BY total DESC"
        )
        assert rows[0]["city"] == "london"
        assert rows[0]["total"] == pytest.approx(120.0 + 75.5 + 250.0 + 30.0)

    def test_aggregate_on_empty_input(self, toy_db):
        rows = toy_db.execute("SELECT count(*) AS n, sum(o.amount) AS s FROM orders o WHERE o.amount > 99999")
        assert rows[0]["n"] == 0
        assert rows[0]["s"] is None


class TestOrderingDistinctLimit:
    def test_order_by_asc_desc(self, toy_db):
        ascending = toy_db.execute("SELECT o.amount FROM orders o ORDER BY o.amount")
        descending = toy_db.execute("SELECT o.amount FROM orders o ORDER BY o.amount DESC")
        values = [row["amount"] for row in ascending]
        assert values == sorted(values)
        assert [row["amount"] for row in descending] == sorted(values, reverse=True)

    def test_order_by_alias(self, toy_db):
        rows = toy_db.execute(
            "SELECT o.user_id, sum(o.amount) AS total FROM orders o GROUP BY o.user_id ORDER BY total DESC LIMIT 1"
        )
        assert rows[0]["user_id"] == 3

    def test_distinct(self, toy_db):
        rows = toy_db.execute("SELECT DISTINCT o.status FROM orders o")
        assert sorted(row["status"] for row in rows) == ["cancelled", "pending", "shipped"]

    def test_distinct_with_order(self, toy_db):
        rows = toy_db.execute("SELECT DISTINCT u.city FROM users u ORDER BY u.city")
        assert [row["city"] for row in rows] == ["berlin", "london", "paris"]

    def test_limit_and_offset(self, toy_db):
        rows = toy_db.execute("SELECT o.order_id FROM orders o ORDER BY o.order_id LIMIT 3 OFFSET 2")
        assert [row["order_id"] for row in rows] == [12, 13, 14]

    def test_multi_key_sort(self, toy_db):
        rows = toy_db.execute("SELECT u.city, u.name FROM users u ORDER BY u.city, u.name DESC")
        assert [row["name"] for row in rows[:2]] == ["dave", "carol"]


class TestConsistencyWithNaiveEvaluation:
    def test_join_matches_naive_python(self, tpch_db):
        sql = (
            "SELECT c.c_custkey, count(*) AS n FROM customer c, orders o "
            "WHERE c.c_custkey = o.o_custkey AND c.c_acctbal > 0 "
            "GROUP BY c.c_custkey"
        )
        rows = tpch_db.execute(sql)
        customers = {
            row["customer.c_custkey"]: row["customer.c_acctbal"]
            for row in tpch_db.storage.table("customer").as_dicts()
        }
        expected: dict[int, int] = {}
        for order in tpch_db.storage.table("orders").as_dicts():
            custkey = order["orders.o_custkey"]
            if custkey in customers and customers[custkey] > 0:
                expected[custkey] = expected.get(custkey, 0) + 1
        assert {row["c_custkey"]: row["n"] for row in rows} == expected

    def test_plan_execution_equals_execute(self, toy_db):
        sql = "SELECT u.city, count(*) AS n FROM users u GROUP BY u.city"
        plan = toy_db.plan(sql)
        assert toy_db.execute_plan(plan) == toy_db.execute(sql)


class TestTpchWorkloadExecution:
    @pytest.mark.parametrize("query_index", [0, 2, 5, 9, 21])
    def test_tpch_queries_run(self, tpch_db, query_index):
        from repro.workloads import tpch_queries

        query = tpch_queries()[query_index]
        rows = tpch_db.execute(query.sql)
        assert isinstance(rows, list)
