"""LANTERN-FLEET tests: routing invariants, lifecycle, and the live fleet.

Three layers, cheapest first:

* pure-function tests of the consistent-hash ring and the routing
  signature (stickiness, minimal key movement under churn, cross-
  serialization stability);
* in-process :class:`WorkerService` tests (draining health, the
  ``/admin/*`` surface, the decode-cache handoff wire format);
* a real two-worker fleet over HTTP: shard stickiness, batch
  split/rejoin, trace grafting, metric aggregation, worker kill →
  reroute → respawn, and draining rolling restarts.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import Lantern
from repro.core.lantern import LanternConfig
from repro.errors import ServiceError
from repro.plans.registry import default_registry
from repro.service.client import LanternClient, LanternServiceError
from repro.service.fleet import (
    ConsistentHashRing,
    FleetConfig,
    LanternFleet,
    WorkerService,
    build_worker,
    export_cache_payload,
    import_cache_payload,
    plan_routing_signature,
)
from repro.service.server import ServiceConfig, build_service


def _scan(relation: str, **extra) -> dict:
    node = {"Node Type": "Seq Scan", "Relation Name": relation}
    node.update(extra)
    return node


def _join_plan(left: str = "author", right: str = "publication") -> dict:
    """PostgreSQL EXPLAIN JSON: filtered scan ⋈ scan under a hash join."""
    return {
        "Plan": {
            "Node Type": "Hash Join",
            "Hash Cond": f"({left}.id = {right}.id)",
            "Plans": [
                _scan(left, Filter="(year > 2000)"),
                {"Node Type": "Hash", "Plans": [_scan(right)]},
            ],
        }
    }


def _sort_plan(relation: str = "venue") -> dict:
    return {
        "Plan": {
            "Node Type": "Sort",
            "Sort Key": [f"{relation}.name"],
            "Plans": [_scan(relation)],
        }
    }


# ---------------------------------------------------------------------------
# routing signature
# ---------------------------------------------------------------------------


class TestRoutingSignature:
    def test_serialization_independent(self):
        """The same logical plan hashes identically whether it arrives as
        PostgreSQL EXPLAIN JSON or as the operator-tree wire dict."""
        registry = default_registry()
        tree = registry.parse(_join_plan())
        from_pg = plan_routing_signature(tree)
        from_wire = plan_routing_signature(registry.parse(tree.to_dict()))
        assert from_pg == from_wire

    def test_relations_are_abstracted(self):
        """Plans with the same shape over different tables share a signature
        (they share decode-cache entries, so they must share a shard)."""
        registry = default_registry()
        one = plan_routing_signature(registry.parse(_join_plan("author", "publication")))
        other = plan_routing_signature(registry.parse(_join_plan("cite", "venue")))
        assert one == other

    def test_structure_is_not_abstracted(self):
        """Different structural tags (an extra filter) change the signature."""
        registry = default_registry()
        filtered = plan_routing_signature(registry.parse(_join_plan()))
        plain = _join_plan()
        del plain["Plan"]["Plans"][0]["Filter"]
        unfiltered = plan_routing_signature(registry.parse(plain))
        assert filtered != unfiltered
        assert plan_routing_signature(
            registry.parse(_sort_plan())
        ) != plan_routing_signature(registry.parse(_join_plan()))


# ---------------------------------------------------------------------------
# consistent-hash ring
# ---------------------------------------------------------------------------


KEYS = [f"signature-{i}" for i in range(400)]


class TestConsistentHashRing:
    def test_routing_is_deterministic_across_instances(self):
        """Two independently built rings agree on every key — a restarted
        router reconstructs the same shard map."""
        a = ConsistentHashRing(["w0", "w1", "w2", "w3"])
        b = ConsistentHashRing(["w3", "w1", "w0", "w2"])  # insertion order differs
        assert [a.route(key) for key in KEYS] == [b.route(key) for key in KEYS]

    def test_minimal_movement_on_leave(self):
        """Removing one worker moves ONLY the keys it owned; every other
        key keeps its worker (warm caches stay warm)."""
        ring = ConsistentHashRing(["w0", "w1", "w2", "w3"])
        before = {key: ring.route(key) for key in KEYS}
        ring.remove("w1")
        after = {key: ring.route(key) for key in KEYS}
        for key in KEYS:
            if before[key] != "w1":
                assert after[key] == before[key]
            else:
                assert after[key] != "w1"

    def test_minimal_movement_on_join(self):
        """Adding a worker steals keys only FOR the new worker — no key
        moves between two surviving workers."""
        ring = ConsistentHashRing(["w0", "w1", "w2"])
        before = {key: ring.route(key) for key in KEYS}
        ring.add("w3")
        after = {key: ring.route(key) for key in KEYS}
        moved = [key for key in KEYS if after[key] != before[key]]
        assert moved, "a new worker must take over part of the keyspace"
        assert all(after[key] == "w3" for key in moved)

    def test_rejoin_restores_original_assignment(self):
        """leave + rejoin is a no-op: a respawned worker (same id) gets back
        exactly its old shard, which is what makes the cache handoff to a
        same-id successor coherent."""
        ring = ConsistentHashRing(["w0", "w1", "w2"])
        before = {key: ring.route(key) for key in KEYS}
        ring.remove("w2")
        ring.add("w2")
        assert {key: ring.route(key) for key in KEYS} == before

    def test_distribution_is_roughly_balanced(self):
        ring = ConsistentHashRing(["w0", "w1", "w2", "w3"])
        counts = ring.distribution(KEYS)
        assert set(counts) == {"w0", "w1", "w2", "w3"}
        for node, count in counts.items():
            share = count / len(KEYS)
            assert 0.05 <= share <= 0.55, f"{node} owns {share:.0%} of the keyspace"

    def test_empty_ring_and_idempotent_topology(self):
        ring = ConsistentHashRing()
        assert ring.route("anything") is None
        ring.add("w0")
        ring.add("w0")  # idempotent
        assert len(ring) == 1
        assert ring.route("anything") == "w0"
        ring.remove("missing")  # idempotent
        ring.remove("w0")
        assert ring.route("anything") is None


# ---------------------------------------------------------------------------
# draining health (satellite fix: /healthz must expose drain as 503)
# ---------------------------------------------------------------------------


class TestDrainingHealth:
    def test_begin_drain_flips_healthz_to_503_and_refuses_narrations(self):
        service = build_service(port=0)
        host, port = service.start()
        client = LanternClient(f"http://{host}:{port}")
        try:
            assert client.healthz()["status"] == "ok"
            service.begin_drain()
            status, health = client.request_json("GET", "/healthz")
            assert status == 503
            assert health["status"] == "draining"
            with pytest.raises(LanternServiceError) as excinfo:
                client.narrate(_join_plan())
            assert excinfo.value.status == 503
            assert excinfo.value.body["error"] == "draining"
        finally:
            client.close()
            service.stop()

    def test_batcher_drain_reports_draining_while_finishing_queue(self):
        """During MicroBatcher drain (stop requested, worker still finishing
        queued narrations) /healthz must say draining, not ok — the fleet
        router takes the worker out of rotation before it goes silent."""
        service = build_service(port=0)
        gate = threading.Event()
        entered = threading.Event()
        original = service.lantern.describe_plans

        def gated(*args, **kwargs):
            entered.set()
            gate.wait(timeout=10.0)
            return original(*args, **kwargs)

        service.lantern.describe_plans = gated
        host, port = service.start()
        client = LanternClient(f"http://{host}:{port}")
        submitted = threading.Thread(
            target=lambda: client.request_json("POST", "/narrate", {"plan": _join_plan()})
        )
        submitted.start()
        try:
            assert entered.wait(timeout=5.0), "request never reached the decode worker"
            service.batcher._stopping.set()  # what stop() does first
            assert service.healthz()["status"] == "draining"
            assert service.batcher.draining
        finally:
            gate.set()
            submitted.join(timeout=10.0)
            service.lantern.describe_plans = original
            client.close()
            service.stop()


# ---------------------------------------------------------------------------
# worker admin surface (in-process WorkerService over HTTP)
# ---------------------------------------------------------------------------


class TestWorkerAdmin:
    @pytest.fixture()
    def worker(self):
        service = build_worker("wx", port=0)
        host, port = service.start()
        client = LanternClient(f"http://{host}:{port}")
        yield service, client
        client.close()
        service.stop()

    def test_identity_in_health_and_metrics(self, worker):
        _, client = worker
        assert client.healthz()["worker_id"] == "wx"
        assert client.metrics()["worker_id"] == "wx"

    def test_admin_drain(self, worker):
        _, client = worker
        status, body = client.request_json("POST", "/admin/drain", {})
        assert (status, body["status"], body["worker_id"]) == (200, "draining", "wx")
        status, health = client.request_json("GET", "/healthz")
        assert (status, health["status"]) == (503, "draining")

    def test_admin_cache_without_neural(self, worker):
        _, client = worker
        status, exported = client.request_json("GET", "/admin/cache")
        assert status == 200
        assert exported["entries"] == [] and exported["neural_attached"] is False
        status, summary = client.request_json("POST", "/admin/cache", {"entries": []})
        assert status == 200 and summary["imported"] == 0

    def test_unknown_admin_paths_404(self, worker):
        _, client = worker
        assert client.request_json("POST", "/admin/bogus", {})[0] == 404
        assert client.request_json("GET", "/admin/bogus")[0] == 404


# ---------------------------------------------------------------------------
# decode-cache handoff (the predecessor→successor snapshot protocol)
# ---------------------------------------------------------------------------


class TestCacheHandoff:
    def test_export_import_round_trip_restores_warm_entries(self, trained_neural):
        """A successor importing its predecessor's snapshot serves the same
        workload from cache — the handoff preserves keys, candidates, and
        LRU order across the JSON wire format."""
        exposure_before = dict(trained_neural._act_exposure)
        trained_neural._act_exposure.clear()
        trained_neural.decode_cache.clear()
        facade = Lantern(neural=trained_neural, config=LanternConfig(seed=None))
        service = WorkerService(facade, config=ServiceConfig(port=0, instance_id="wA"))
        host, port = service.start()
        client = LanternClient(f"http://{host}:{port}")
        try:
            for payload in (_join_plan(), _sort_plan()):
                client.narrate(payload, mode="neural")
            status, snapshot = client.request_json("GET", "/admin/cache")
            assert status == 200 and snapshot["worker_id"] == "wA"
            assert snapshot["count"] == len(snapshot["entries"]) > 0
            exported = trained_neural.decode_cache.export_entries()

            # simulate the cold successor: same model, empty cache
            trained_neural.decode_cache.clear()
            assert len(trained_neural.decode_cache) == 0
            status, summary = client.request_json("POST", "/admin/cache", snapshot)
            assert status == 200
            assert summary["imported"] == snapshot["count"]
            assert trained_neural.decode_cache.export_entries() == exported

            # the warmed successor answers the same workload from cache
            before = trained_neural.decode_cache.stats()["hits"]
            client.narrate(_join_plan(), mode="neural")
            assert trained_neural.decode_cache.stats()["hits"] > before
        finally:
            client.close()
            service.stop()
            trained_neural.decode_cache.clear()
            trained_neural._act_exposure.clear()
            trained_neural._act_exposure.update(exposure_before)

    def test_import_skips_malformed_entries(self):
        service = build_worker("wB", port=0)  # rule-only: no cache to fill
        summary = import_cache_payload(service, {"entries": [["bad"], 42]})
        assert summary["imported"] == 0
        exported = export_cache_payload(service)
        assert exported["entries"] == []


# ---------------------------------------------------------------------------
# the live fleet
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def live_fleet():
    """One real router + two spawned worker processes (rule narration)."""
    fleet = LanternFleet(
        FleetConfig(num_workers=2, port=0, heartbeat_interval_s=0.2, snapshot_every=0)
    )
    host, port = fleet.start()
    client = LanternClient(f"http://{host}:{port}", timeout_s=60.0)
    yield fleet, client
    client.close()
    fleet.stop()


class TestFleetRouting:
    def test_single_narrate_carries_worker_and_trace(self, live_fleet):
        _, client = live_fleet
        result = client.narrate(_join_plan())
        assert result["narration"]["text"]
        assert result["worker_id"] in {"w0", "w1"}
        assert result["trace_id"]

    def test_same_signature_is_sticky(self, live_fleet):
        fleet, client = live_fleet
        owners = {client.narrate(_join_plan())["worker_id"] for _ in range(4)}
        assert len(owners) == 1
        # the reported worker is exactly the ring's assignment
        signature = plan_routing_signature(fleet.registry.parse(_join_plan()))
        assert owners == {fleet.ring.route(signature)}

    def test_batch_split_rejoin_preserves_order_and_trace(self, live_fleet):
        fleet, client = live_fleet
        plans = [_join_plan(), _sort_plan(), _join_plan(), {"bogus": 1}, _sort_plan()]
        envelope = client.narrate_batch(plans)
        assert envelope["count"] == 5
        results = envelope["results"]
        assert len(results) == 5
        # order: items 0/2 are the join shape, 1/4 the sort shape, 3 the error
        join_owner = fleet.ring.route(plan_routing_signature(fleet.registry.parse(_join_plan())))
        sort_owner = fleet.ring.route(plan_routing_signature(fleet.registry.parse(_sort_plan())))
        for index in (0, 2):
            assert results[index]["worker_id"] == join_owner
            relations = {
                relation
                for step in results[index]["narration"]["steps"]
                for relation in step["relations"]
            }
            assert {"author", "publication"} <= relations
        for index in (1, 4):
            assert results[index]["worker_id"] == sort_owner
            assert "venue" in results[index]["narration"]["text"]
        assert results[3]["error"] == "plan_format" and results[3]["status"] == 400
        assert sum(envelope["workers"].values()) == 4
        # every shard adopted the router's trace id: the grafted span trees
        # under GET /trace carry the same id as the envelope
        trace_id = envelope["trace_id"]
        document = client.trace(limit=fleet.config.trace_window)
        (router_trace,) = [
            trace for trace in document["slowest"] if trace["trace_id"] == trace_id
        ]
        grafted = router_trace.get("worker_spans", [])
        assert grafted, "worker span trees must be grafted under the router trace"
        assert {span["trace_id"] for span in grafted} == {trace_id}
        assert {span["worker_id"] for span in grafted} <= {"w0", "w1"}

    def test_router_healthz_and_aggregated_metrics(self, live_fleet):
        _, client = live_fleet
        health = client.healthz()
        assert health["status"] == "ok" and health["role"] == "router"
        assert set(health["workers"]) == {"w0", "w1"}
        assert all(doc["alive"] and doc["in_ring"] for doc in health["workers"].values())

        metrics = client.metrics()
        assert metrics["router"]["requests"]["total"] >= 1
        assert set(metrics["workers"]) == {"w0", "w1"}
        for worker_id, document in metrics["workers"].items():
            assert document["worker_id"] == worker_id
        per_shard = metrics["fleet"]["per_shard"]
        assert sum(shard["routed"] for shard in per_shard.values()) >= 1
        assert all("rule_memo_hit_rate" in shard for shard in per_shard.values())

        text = client.prometheus_metrics()
        for name in ("lantern_fleet_workers", "lantern_fleet_respawns_total",
                     "lantern_fleet_routed_total", "lantern_requests_total"):
            assert name in text

    def test_invalid_payloads_get_the_service_error_contract(self, live_fleet):
        _, client = live_fleet
        for body, expected_error in (
            ({"no_plan": 1}, "bad_request"),
            ({"plan": {"bogus": True}}, "plan_format"),
            ({"plans": []}, "bad_request"),
        ):
            status, payload = client.request_json("POST", "/narrate", body)
            assert status == 400
            assert payload["error"] == expected_error
        assert client.request_json("POST", "/elsewhere", {})[0] == 404


class TestFleetLifecycle:
    def test_kill_reroute_respawn_and_rolling_restart(self):
        """The full lifecycle story on one fleet: a killed worker's traffic
        is rerouted without a lost request, the heartbeat respawns it into
        the same shard, and a draining rolling restart bumps generations
        while the fleet keeps answering."""
        fleet = LanternFleet(
            FleetConfig(num_workers=2, port=0, heartbeat_interval_s=0.2, snapshot_every=2)
        )
        host, port = fleet.start()
        client = LanternClient(f"http://{host}:{port}", timeout_s=60.0)
        try:
            owner = client.narrate(_join_plan())["worker_id"]
            victim = fleet.workers[owner]
            victim.process.kill()
            victim.process.wait(timeout=10.0)

            # the very next request for that shard is rerouted, not lost
            rerouted = client.narrate(_join_plan())
            assert rerouted["narration"]["text"]
            assert rerouted["worker_id"] != owner

            # heartbeat respawns the worker id into the same shard
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                handle = fleet.workers.get(owner)
                if handle is not None and handle.generation == 2 and handle.alive:
                    if owner in fleet.ring:
                        break
                time.sleep(0.1)
            handle = fleet.workers[owner]
            assert handle.generation == 2 and handle.alive and owner in fleet.ring
            assert client.narrate(_join_plan())["worker_id"] == owner
            assert client.metrics()["fleet"]["respawns"] == 1

            # draining rolling restart of the whole fleet
            status, payload = client.request_json("POST", "/admin/restart", {})
            assert status == 200
            assert sorted(payload["restarted"]) == ["w0", "w1"]
            generations = {
                worker_id: handle.generation for worker_id, handle in fleet.workers.items()
            }
            assert generations[owner] == 3  # respawned once, restarted once
            assert client.narrate(_join_plan())["narration"]["text"]
            assert client.healthz()["status"] == "ok"

            # restarting an unknown worker is a 400, not a crash
            status, payload = client.request_json(
                "POST", "/admin/restart", {"worker": "w9"}
            )
            assert status == 400
        finally:
            client.close()
            fleet.stop()
