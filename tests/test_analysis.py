"""LANTERN-SENTRY: the analyzer's own contract.

Golden-fixture tests: each rule family must fire on a known-bad snippet,
stay quiet on the idiomatic fix, and respect inline suppressions and the
committed baseline.  The CLI's exit codes and JSON schema are pinned, and
— the point of the whole exercise — the live repo itself must pass.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, Baseline, analyze, get_rules
from repro.analysis.baseline import BaselineError

REPO_ROOT = Path(__file__).resolve().parents[1]


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return root


def run_rules(tmp_path, files, rules, tests=None, docs=None, baseline=None):
    """Analyze a throwaway package tree with just the given rules."""
    pkg = write_tree(tmp_path / "pkg", files)
    tests_dir = write_tree(tmp_path / "tests", tests) if tests is not None else None
    docs_dir = write_tree(tmp_path / "docs", docs) if docs is not None else None
    return analyze(
        pkg, tests_dir=tests_dir, docs_dir=docs_dir, rules=rules, baseline=baseline
    )


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------

LOCKED_CLASS = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.items = []
            self.count = 0

        def locked_add(self, item):
            with self._lock:
                self.items.append(item)

        def sneaky_add(self, item):
            self.items.append(item)

        def bump(self):
            self.count += 1
"""


class TestLockDiscipline:
    def test_guarded_attr_mutated_outside_lock_fires(self, tmp_path):
        report = run_rules(tmp_path, {"store.py": LOCKED_CLASS}, ["lock-discipline"])
        symbols = {f.symbol for f in report.findings}
        assert "Store.sneaky_add:items" in symbols

    def test_unlocked_rmw_fires_even_without_guarded_twin(self, tmp_path):
        report = run_rules(tmp_path, {"store.py": LOCKED_CLASS}, ["lock-discipline"])
        symbols = {f.symbol for f in report.findings}
        assert "Store.bump:count:rmw" in symbols

    def test_init_and_lockless_classes_are_exempt(self, tmp_path):
        clean = """
            import threading

            class NoLock:
                def bump(self):
                    self.count += 1

            class Disciplined:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.items = []

                def add(self, item):
                    with self._lock:
                        self.items.append(item)
        """
        report = run_rules(tmp_path, {"clean.py": clean}, ["lock-discipline"])
        assert report.findings == []

    def test_inline_suppression_silences_the_line(self, tmp_path):
        suppressed = LOCKED_CLASS.replace(
            "self.items.append(item)\n\n        def bump",
            "self.items.append(item)  # sentry: off[lock-discipline]\n\n        def bump",
        )
        report = run_rules(tmp_path, {"store.py": suppressed}, ["lock-discipline"])
        assert "Store.sneaky_add:items" not in {f.symbol for f in report.findings}
        assert report.suppressed == 1


# ---------------------------------------------------------------------------
# parity-pair
# ---------------------------------------------------------------------------


class TestParityPair:
    def test_orphaned_fused_kernel_fires(self, tmp_path):
        files = {
            "nlg/nn/layers.py": """
                class Dense:
                    def forward_fused(self, x):
                        return x
            """
        }
        report = run_rules(tmp_path, files, ["parity-pair"], tests={})
        assert any(f.symbol == "Dense.forward_fused" for f in report.findings)

    def test_pair_without_shared_test_fires_and_with_test_passes(self, tmp_path):
        files = {
            "nlg/nn/layers.py": """
                class Dense:
                    def forward(self, x):
                        return x

                    def forward_fused(self, x):
                        return x
            """
        }
        untested = run_rules(tmp_path, files, ["parity-pair"], tests={"test_x.py": "pass"})
        assert any(f.symbol == "Dense.forward_fused:untested" for f in untested.findings)

        tested = run_rules(
            tmp_path / "ok",
            files,
            ["parity-pair"],
            tests={"test_x.py": "# exercises forward_fused against forward\n"},
        )
        assert tested.findings == []

    def test_quant_mode_without_agreement_test_fires(self, tmp_path):
        files = {
            "nlg/nn/quant.py": """
                QUANTIZE_MODES = ("none", "int8", "int4")
            """
        }
        tests = {"test_q.py": "# quantize agreement covers int8 only\n"}
        report = run_rules(tmp_path, files, ["parity-pair"], tests=tests)
        assert {f.symbol for f in report.findings} == {"quant-mode:int4"}


# ---------------------------------------------------------------------------
# hot-path
# ---------------------------------------------------------------------------


class TestHotPath:
    def test_concatenate_in_loop_fires(self, tmp_path):
        files = {
            "nlg/cache.py": """
                import numpy as np

                class DecodeCache:
                    def get(self, keys):
                        out = None
                        for key in keys:
                            out = np.concatenate([out, key])
                        return out

                    def put(self, key):
                        return key
            """
        }
        report = run_rules(tmp_path, files, ["hot-path"])
        assert any(
            f.symbol == "DecodeCache.get:concatenate-in-loop" for f in report.findings
        )

    def test_float64_literal_and_np_append_fire(self, tmp_path):
        files = {
            "service/batcher.py": """
                import numpy as np

                class MicroBatcher:
                    def _collect_batch(self, items):
                        batch = []
                        for item in items:
                            batch.append(np.asarray(item, dtype="float64"))
                        return batch
            """
        }
        report = run_rules(tmp_path, files, ["hot-path"])
        symbols = {f.symbol for f in report.findings}
        assert "MicroBatcher._collect_batch:np-append-in-loop" in symbols
        assert "MicroBatcher._collect_batch:float64-literal" in symbols

    def test_try_in_item_loop_fires_but_range_loop_is_exempt(self, tmp_path):
        files = {
            "service/fleet/router.py": """
                class LanternFleet:
                    def _forward(self, bodies):
                        for attempt in range(2):
                            try:
                                return attempt
                            except KeyError:
                                pass
                        for body in bodies:
                            try:
                                body()
                            except KeyError:
                                pass
            """
        }
        report = run_rules(tmp_path, files, ["hot-path"])
        assert [f.symbol for f in report.findings] == [
            "LanternFleet._forward:try-in-loop"
        ]

    def test_vanished_hot_symbol_fires(self, tmp_path):
        files = {"nlg/cache.py": "class DecodeCache:\n    def get(self, k):\n        return k\n"}
        report = run_rules(tmp_path, files, ["hot-path"])
        assert any(f.symbol == "DecodeCache.put:missing" for f in report.findings)


# ---------------------------------------------------------------------------
# error-taxonomy
# ---------------------------------------------------------------------------

TAXONOMY = {
    "errors.py": """
        class ReproError(Exception):
            pass

        class ServiceError(ReproError):
            pass
    """
}


class TestErrorTaxonomy:
    def test_untyped_raise_in_service_fires(self, tmp_path):
        files = dict(TAXONOMY)
        files["service/server.py"] = """
            def handler():
                raise ValueError("nope")
        """
        report = run_rules(tmp_path, files, ["error-taxonomy"])
        assert any(f.symbol == "handler:raise:ValueError" for f in report.findings)

    def test_taxonomy_raises_and_local_subclasses_pass(self, tmp_path):
        files = dict(TAXONOMY)
        files["service/server.py"] = """
            from errors import ServiceError

            class _HTTPError(ServiceError):
                pass

            def handler(request):
                if request is None:
                    raise _HTTPError()
                if request.error is not None:
                    raise request.error
                raise ServiceError("typed")
        """
        report = run_rules(tmp_path, files, ["error-taxonomy"])
        assert report.findings == []

    def test_silent_broad_except_fires_but_recording_one_passes(self, tmp_path):
        files = dict(TAXONOMY)
        files["obs/metrics.py"] = """
            def swallow():
                try:
                    work()
                except Exception:
                    return None

            def record(counter):
                try:
                    work()
                except Exception:
                    counter.bump()
        """
        report = run_rules(tmp_path, files, ["error-taxonomy"])
        assert [f.symbol for f in report.findings] == ["swallow:broad-except"]

    def test_baseline_filters_the_fingerprint(self, tmp_path):
        files = dict(TAXONOMY)
        files["service/server.py"] = """
            def handler():
                raise ValueError("nope")
        """
        baseline = Baseline(
            [
                {
                    "rule": "error-taxonomy",
                    "path": "service/server.py",
                    "symbol": "handler:raise:ValueError",
                    "note": "legacy, tracked elsewhere",
                }
            ]
        )
        report = run_rules(tmp_path, files, ["error-taxonomy"], baseline=baseline)
        assert report.findings == []
        assert report.baselined == 1


# ---------------------------------------------------------------------------
# api-surface
# ---------------------------------------------------------------------------


class TestApiSurface:
    FILES = {
        "service/server.py": """
            def route(path):
                if path == "/narrate":
                    return 200
                if path == "/shadow":
                    return 200
        """,
        "service/__main__.py": """
            import argparse

            parser = argparse.ArgumentParser()
            parser.add_argument("--port", type=int)
            parser.add_argument("--secret-knob")
        """,
    }

    def test_undocumented_route_and_flag_fire(self, tmp_path):
        docs = {"api.md": "POST /narrate\n", "operations.md": "`--port` binds.\n"}
        report = run_rules(tmp_path, self.FILES, ["api-surface"], docs=docs)
        symbols = {f.symbol for f in report.findings}
        assert symbols == {
            "route:/shadow",
            "flag:--secret-knob:service/__main__.py",
        }

    def test_documented_surface_passes(self, tmp_path):
        docs = {
            "api.md": "POST /narrate and GET /shadow\n",
            "operations.md": "`--port` and `--secret-knob`.\n",
        }
        report = run_rules(tmp_path, self.FILES, ["api-surface"], docs=docs)
        assert report.findings == []

    def test_rule_is_skipped_without_docs(self, tmp_path):
        report = run_rules(tmp_path, self.FILES, ["api-surface"])
        assert report.findings == []
        assert report.skipped_rules == ["api-surface (docs)"]


# ---------------------------------------------------------------------------
# engine mechanics
# ---------------------------------------------------------------------------


class TestEngine:
    def test_comment_only_suppression_covers_next_line(self, tmp_path):
        files = {
            "store.py": """
                import threading

                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        with self._lock:
                            pass

                    def locked(self):
                        with self._lock:
                            self.items = []

                    def sneaky(self):
                        # sentry: off
                        self.items = []
            """
        }
        report = run_rules(tmp_path, files, ["lock-discipline"])
        assert report.findings == []
        assert report.suppressed == 1

    def test_unknown_rule_name_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            get_rules(["no-such-rule"])

    def test_all_rules_have_names_and_descriptions(self):
        assert set(ALL_RULES) == {
            "lock-discipline",
            "parity-pair",
            "hot-path",
            "error-taxonomy",
            "api-surface",
        }
        for rule in ALL_RULES.values():
            assert rule.description

    def test_baseline_rejects_bad_files(self, tmp_path):
        bad_version = tmp_path / "b1.json"
        bad_version.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(BaselineError, match="version"):
            Baseline.load(bad_version)
        bad_entry = tmp_path / "b2.json"
        bad_entry.write_text(json.dumps({"version": 1, "findings": [{"rule": "x"}]}))
        with pytest.raises(BaselineError, match="rule/path/symbol"):
            Baseline.load(bad_entry)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def run_cli(*args, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=cwd or REPO_ROOT,
        env=env,
        timeout=120,
    )


class TestCli:
    def dirty_repo(self, tmp_path):
        return write_tree(
            tmp_path / "proj",
            {
                "src/repro/service/server.py": textwrap.dedent(
                    """
                    def handler():
                        raise ValueError("nope")
                    """
                )
            },
        )

    def test_findings_exit_1_and_json_schema(self, tmp_path):
        result = run_cli("--root", str(self.dirty_repo(tmp_path)), "--format", "json")
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["tool"] == "lantern-sentry"
        assert payload["version"] == 1
        assert payload["counts"]["active"] == len(payload["findings"]) > 0
        finding = payload["findings"][0]
        assert set(finding) == {"rule", "path", "line", "symbol", "message"}
        assert set(payload["counts"]["by_rule"]) == set(payload["rules"])

    def test_write_baseline_then_clean_run(self, tmp_path):
        root = self.dirty_repo(tmp_path)
        wrote = run_cli("--root", str(root), "--write-baseline")
        assert wrote.returncode == 0
        assert (root / ".sentry-baseline.json").is_file()
        rerun = run_cli("--root", str(root), "--format", "json")
        assert rerun.returncode == 0
        assert json.loads(rerun.stdout)["counts"]["baselined"] > 0

    def test_disable_rule_and_unknown_rule_exit_codes(self, tmp_path):
        root = self.dirty_repo(tmp_path)
        disabled = run_cli("--root", str(root), "--disable", "error-taxonomy")
        assert disabled.returncode == 0
        unknown = run_cli("--root", str(root), "--rules", "no-such-rule")
        assert unknown.returncode == 2
        missing_baseline = run_cli("--root", str(root), "--baseline", "nope.json")
        assert missing_baseline.returncode == 2

    def test_list_rules(self):
        result = run_cli("--list-rules")
        assert result.returncode == 0
        for name in ALL_RULES:
            assert name in result.stdout


class TestRepoIsClean:
    def test_live_tree_passes_sentry(self):
        """Tier-1 gate: the repo passes its own analyzer (modulo baseline)."""
        result = run_cli("--root", str(REPO_ROOT), "--format", "json")
        assert result.returncode == 0, result.stdout + result.stderr
        payload = json.loads(result.stdout)
        assert payload["findings"] == []
        assert payload["files_checked"] > 50
