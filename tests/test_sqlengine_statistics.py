"""Unit tests for statistics collection and selectivity estimation."""

import pytest

from repro.sqlengine import Database, DataType
from repro.sqlengine.ast_nodes import ColumnRef
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.statistics import (
    DEFAULT_LIKE_SELECTIVITY,
    SelectivityEstimator,
    analyze_table,
)


@pytest.fixture()
def stats_db():
    db = Database("stats", enable_parallel=False)
    db.create_table(
        "t",
        [("id", DataType.INTEGER), ("category", DataType.TEXT), ("value", DataType.FLOAT),
         ("maybe", DataType.INTEGER)],
    )
    rows = []
    for i in range(1000):
        rows.append((i, f"cat{i % 4}", float(i), i if i % 10 else None))
    db.insert("t", rows)
    db.analyze()
    return db


def _estimator(db):
    return SelectivityEstimator({"t": db.statistics("t")}, {"id": "t", "category": "t", "value": "t", "maybe": "t"})


def _where(condition):
    return parse_sql(f"SELECT id FROM t WHERE {condition}").where


class TestAnalyze:
    def test_row_count_and_ndv(self, stats_db):
        statistics = stats_db.statistics("t")
        assert statistics.row_count == 1000
        assert statistics.column("category").distinct_values == 4
        assert statistics.column("id").distinct_values == 1000

    def test_min_max(self, stats_db):
        column = stats_db.statistics("t").column("value")
        assert column.minimum == 0.0
        assert column.maximum == 999.0

    def test_null_fraction(self, stats_db):
        column = stats_db.statistics("t").column("maybe")
        assert column.null_fraction == pytest.approx(0.1, abs=0.01)

    def test_most_common_values_cover_frequent_categories(self, stats_db):
        column = stats_db.statistics("t").column("category")
        values = {value for value, _ in column.most_common_values}
        assert values == {"cat0", "cat1", "cat2", "cat3"}

    def test_empty_table_statistics(self):
        db = Database("empty")
        db.create_table("e", [("a", DataType.INTEGER)])
        statistics = analyze_table(db.storage.table("e"))
        assert statistics.row_count == 0
        assert statistics.column("a").distinct_values == 1


class TestSelectivity:
    def test_equality_on_uniform_category(self, stats_db):
        selectivity = _estimator(stats_db).selectivity(_where("category = 'cat1'"))
        assert selectivity == pytest.approx(0.25, abs=0.05)

    def test_equality_on_unique_key_is_tiny(self, stats_db):
        selectivity = _estimator(stats_db).selectivity(_where("id = 500"))
        assert selectivity < 0.01

    def test_range_selectivity_interpolates(self, stats_db):
        estimator = _estimator(stats_db)
        low = estimator.selectivity(_where("value < 100"))
        high = estimator.selectivity(_where("value < 900"))
        assert low == pytest.approx(0.1, abs=0.05)
        assert high == pytest.approx(0.9, abs=0.05)
        assert low < high

    def test_conjunction_multiplies(self, stats_db):
        estimator = _estimator(stats_db)
        combined = estimator.selectivity(_where("category = 'cat1' AND value < 100"))
        assert combined == pytest.approx(0.25 * 0.1, rel=0.5)

    def test_disjunction_is_larger_than_each_term(self, stats_db):
        estimator = _estimator(stats_db)
        either = estimator.selectivity(_where("category = 'cat1' OR category = 'cat2'"))
        assert either > estimator.selectivity(_where("category = 'cat1'"))

    def test_not_inverts(self, stats_db):
        estimator = _estimator(stats_db)
        positive = estimator.selectivity(_where("category = 'cat1'"))
        negative = estimator.selectivity(_where("NOT category = 'cat1'"))
        assert positive + negative == pytest.approx(1.0, abs=0.01)

    def test_like_uses_default(self, stats_db):
        assert _estimator(stats_db).selectivity(_where("category LIKE 'cat%'")) == DEFAULT_LIKE_SELECTIVITY

    def test_between_uses_independence_of_bounds(self, stats_db):
        # the classic System R estimate multiplies the two bound selectivities
        # (0.9 * 0.2), over-estimating the true 10% — same behaviour as PostgreSQL
        estimator = _estimator(stats_db)
        selectivity = estimator.selectivity(_where("value BETWEEN 100 AND 200"))
        assert selectivity == pytest.approx(0.18, abs=0.05)
        assert selectivity < estimator.selectivity(_where("value <= 200"))

    def test_is_null_uses_null_fraction(self, stats_db):
        estimator = _estimator(stats_db)
        assert estimator.selectivity(_where("maybe IS NULL")) == pytest.approx(0.1, abs=0.02)
        assert estimator.selectivity(_where("maybe IS NOT NULL")) == pytest.approx(0.9, abs=0.02)

    def test_join_selectivity_uses_max_ndv(self, stats_db):
        estimator = SelectivityEstimator(
            {"a": stats_db.statistics("t"), "b": stats_db.statistics("t")}
        )
        selectivity = estimator.join_selectivity(ColumnRef("id", "a"), ColumnRef("id", "b"))
        assert selectivity == pytest.approx(1 / 1000)

    def test_none_predicate_is_one(self, stats_db):
        assert _estimator(stats_db).selectivity(None) == 1.0

    def test_distinct_values_capped_by_rows(self, stats_db):
        estimator = _estimator(stats_db)
        assert estimator.distinct_values(ColumnRef("category", "t"), 2.0) <= 2.0
        assert estimator.distinct_values(ColumnRef("category", "t"), 1000.0) == 4.0
