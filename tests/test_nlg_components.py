"""Tests for tokenizer, vocabulary, metrics, paraphrasing, and embeddings."""

import numpy as np
import pytest

from repro.errors import ModelConfigError, VocabularyError
from repro.nlg.embeddings import EMBEDDING_DIMENSIONS, build_embedding_matrix
from repro.nlg.embeddings.corpus import build_general_corpus, build_self_trained_corpus
from repro.nlg.embeddings.glove import cooccurrence_counts, train_glove
from repro.nlg.embeddings.word2vec import build_training_vocabulary, skipgram_pairs, train_word2vec
from repro.nlg.metrics import (
    average_group_self_bleu,
    bleu_score,
    self_bleu,
    sparse_categorical_accuracy,
    token_error_count,
)
from repro.nlg.paraphrase import (
    CompressionParaphraser,
    LexicalParaphraser,
    ParaphraseEngine,
    StructuralParaphraser,
)
from repro.nlg.tokenizer import detokenize, tokenize
from repro.nlg.vocab import Vocabulary

RULE_SENTENCE = (
    "perform sequential scan on <T> and filtering on <F> to get the intermediate relation <TN> ."
)


class TestTokenizer:
    def test_tags_kept_atomic(self):
        tokens = tokenize("perform scan on <T> and filtering on <F>.")
        assert "<T>" in tokens and "<F>" in tokens

    def test_lowercasing_skips_tags(self):
        tokens = tokenize("Perform Scan ON <TN>")
        assert tokens[0] == "perform" and "<TN>" in tokens

    def test_detokenize_spacing(self):
        text = detokenize(["sort", "<T>", ",", "then", "stop", "."])
        assert text == "sort <T>, then stop."

    def test_roundtrip_word_content(self):
        original = "hash <T> and perform hash join on <T> and <T> on condition <C>."
        assert tokenize(detokenize(tokenize(original))) == tokenize(original)


class TestVocabulary:
    def test_control_tokens_first(self):
        vocabulary = Vocabulary(["a", "b"])
        assert vocabulary.pad_id == 0 and vocabulary.bos_id == 1
        assert len(vocabulary) == 6

    def test_add_is_idempotent(self):
        vocabulary = Vocabulary()
        first = vocabulary.add("x")
        assert vocabulary.add("x") == first

    def test_encode_decode_roundtrip(self):
        vocabulary = Vocabulary(["perform", "scan", "<T>"])
        ids = vocabulary.encode(["perform", "scan", "<T>"], add_bos=True, add_end=True)
        assert ids[0] == vocabulary.bos_id and ids[-1] == vocabulary.end_id
        assert vocabulary.decode(ids) == ["perform", "scan", "<T>"]

    def test_unknown_maps_to_unk_or_raises(self):
        vocabulary = Vocabulary(["a"])
        assert vocabulary.id_of("zzz") == vocabulary.unk_id
        with pytest.raises(VocabularyError):
            vocabulary.id_of("zzz", strict=True)
        with pytest.raises(VocabularyError):
            vocabulary.token_of(999)

    def test_from_sequences(self):
        vocabulary = Vocabulary.from_sequences([["a", "b"], ["b", "c"]])
        assert {"a", "b", "c"} <= set(vocabulary.tokens)

    def test_from_tokens_is_id_exact(self):
        original = Vocabulary(["perform", "scan", "<T>"])
        rebuilt = Vocabulary.from_tokens(original.tokens)
        assert rebuilt.tokens == original.tokens
        assert rebuilt.id_of("<T>") == original.id_of("<T>")

    def test_from_tokens_rejects_unreconstructable_lists(self):
        with pytest.raises(VocabularyError, match="original id order"):
            Vocabulary.from_tokens(["a", "b"])  # control tokens not leading
        duplicated = Vocabulary(["a"]).tokens + ["a"]
        with pytest.raises(VocabularyError, match="original id order"):
            Vocabulary.from_tokens(duplicated)


class TestMetrics:
    def test_bleu_identical_is_100(self):
        tokens = RULE_SENTENCE.split()
        assert bleu_score(tokens, [tokens]) == pytest.approx(100.0, abs=1e-6)

    def test_bleu_disjoint_is_near_zero(self):
        assert bleu_score(["a", "b", "c", "d"], [["w", "x", "y", "z"]]) < 5.0

    def test_bleu_decreases_with_divergence(self):
        reference = RULE_SENTENCE.split()
        close = reference[:-2] + ["output", "."]
        far = ["completely"] * len(reference)
        assert bleu_score(close, [reference]) > bleu_score(far, [reference])

    def test_self_bleu_single_sample_is_one(self):
        assert self_bleu([["a", "b"]]) == 1.0

    def test_self_bleu_lower_for_diverse_group(self):
        repetitive = [RULE_SENTENCE.split()] * 3
        diverse = [
            RULE_SENTENCE.split(),
            "execute a sequential scan over <T> keeping rows <F> producing <TN> .".split(),
            "sequentially read <T> while selecting on <F> which yields <TN> .".split(),
        ]
        assert self_bleu(repetitive) == pytest.approx(1.0, abs=1e-6)
        assert self_bleu(diverse) < self_bleu(repetitive)

    def test_average_group_self_bleu(self):
        groups = [[["a", "b", "c"]], [["a", "b", "c"], ["a", "b", "c"]]]
        assert 0.0 < average_group_self_bleu(groups) <= 1.0

    def test_sparse_categorical_accuracy_with_mask(self):
        predictions = np.array([[1, 2, 3]])
        targets = np.array([[1, 0, 3]])
        assert sparse_categorical_accuracy(predictions, targets) == pytest.approx(2 / 3)
        assert sparse_categorical_accuracy(predictions, targets, np.array([[1, 1, 0]])) == pytest.approx(0.5)

    def test_token_error_count_is_edit_distance(self):
        assert token_error_count(["a", "b", "c"], ["a", "b", "c"]) == 0
        assert token_error_count(["a", "x", "c"], ["a", "b", "c"]) == 1
        assert token_error_count(["a"], ["a", "b", "c"]) == 2


class TestParaphrasing:
    def test_each_tool_changes_wording_but_keeps_tags(self):
        for tool in (LexicalParaphraser(), StructuralParaphraser(), CompressionParaphraser()):
            result = tool.paraphrase(RULE_SENTENCE)
            assert result.count("<T>") == RULE_SENTENCE.count("<T>")
            assert result.count("<F>") == RULE_SENTENCE.count("<F>")

    def test_tools_are_deterministic(self):
        tool = LexicalParaphraser()
        assert tool.paraphrase(RULE_SENTENCE) == tool.paraphrase(RULE_SENTENCE)

    def test_engine_expands_and_deduplicates(self):
        group = ParaphraseEngine().expand(RULE_SENTENCE)
        assert group.original == RULE_SENTENCE
        assert 1 <= group.size <= 4
        assert len(set(group.samples)) == group.size

    def test_engine_drops_tag_damaging_outputs(self):
        class Vandal:
            name = "vandal"

            def paraphrase(self, text: str) -> str:
                return text.replace("<F>", "something")

        group = ParaphraseEngine(tools=[Vandal()]).expand(RULE_SENTENCE)
        assert group.paraphrases == []

    def test_expansion_factor_around_three(self):
        sentences = [RULE_SENTENCE,
                     "hash <T> and perform hash join on <T> and <T> on condition <C> to get the intermediate relation <TN> .",
                     "perform duplicate removal on <T> to get the final results ."]
        factor = ParaphraseEngine().expansion_factor(sentences)
        assert 2.0 <= factor <= 4.0


class TestEmbeddings:
    @pytest.fixture(scope="class")
    def tiny_corpus(self):
        return build_general_corpus(sentence_count=200, seed=1)

    def test_table3_dimensions(self):
        assert EMBEDDING_DIMENSIONS == {"word2vec": 128, "glove": 100, "bert": 768, "elmo": 1024}

    def test_corpus_builders(self, tiny_corpus):
        assert len(tiny_corpus) == 200
        self_trained = build_self_trained_corpus([RULE_SENTENCE] * 5)
        assert len(self_trained) == 5
        assert len(tiny_corpus) > len(self_trained)

    def test_skipgram_pairs_within_window(self):
        corpus = [["a", "b", "c", "d"]]
        vocabulary = build_training_vocabulary(corpus)
        centers, contexts = skipgram_pairs(corpus, vocabulary, window=1)
        assert len(centers) == len(contexts) == 6

    def test_word2vec_places_cooccurring_words_closer(self, tiny_corpus):
        trainer = train_word2vec(tiny_corpus, dimension=32, epochs=2, seed=2)

        def similarity(a, b):
            va, vb = trainer.vector_for(a), trainer.vector_for(b)
            return float(va @ vb / (np.linalg.norm(va) * np.linalg.norm(vb) + 1e-9))

        assert similarity("the", "rows") > similarity("rows", "wikipedia") if "wikipedia" in trainer.vocabulary else True
        matrix = trainer.embedding_matrix(Vocabulary(["the", "unseen-token"]))
        assert matrix.shape[1] == 32
        assert np.allclose(matrix[Vocabulary(["the", "unseen-token"]).id_of("unseen-token")], 0.0)

    def test_glove_cooccurrence_symmetry(self):
        corpus = [["a", "b", "a"]]
        vocabulary = build_training_vocabulary(corpus)
        counts = cooccurrence_counts(corpus, vocabulary, window=2)
        a, b = vocabulary.id_of("a"), vocabulary.id_of("b")
        assert counts[(a, b)] == counts[(b, a)]

    def test_glove_training_runs(self, tiny_corpus):
        trainer = train_glove(tiny_corpus[:80], dimension=16, epochs=2, seed=3)
        matrix = trainer.embedding_matrix(Vocabulary(["the"]))
        assert matrix.shape == (5, 16)
        assert np.linalg.norm(matrix) > 0

    @pytest.mark.parametrize("family", ["word2vec", "glove", "bert", "elmo"])
    def test_registry_builds_aligned_matrices(self, family):
        vocabulary = Vocabulary(tokenize(RULE_SENTENCE))
        matrix = build_embedding_matrix(
            family, vocabulary, [RULE_SENTENCE] * 10, pretrained=False, dimension=16 if family != "elmo" else 16,
            epochs=1, seed=4,
        )
        assert matrix.shape == (len(vocabulary), 16)

    def test_registry_rejects_unknown_family(self):
        with pytest.raises(ModelConfigError):
            build_embedding_matrix("fasttext", Vocabulary(["a"]), ["a b c"])

    def test_elmo_dimension_must_be_even(self):
        from repro.nlg.embeddings.contextual import ElmoStyleEmbeddings

        with pytest.raises(ValueError):
            ElmoStyleEmbeddings(dimension=7)
