"""The docs stay honest: links resolve, fences parse, `python run` executes.

Conventions enforced here (and relied on by the CI docs job):

* every relative markdown link in ``README.md`` and ``docs/*.md`` must
  point at an existing file, and a ``#fragment`` must name a real heading
  (GitHub slug rules) in the target document;
* ```` ```python ```` fences must byte-compile;
* ```` ```python run ```` fences must *execute* successfully in a fresh
  interpreter with ``PYTHONPATH=src`` — these are the documented examples
  that double as smoke tests;
* ```` ```bash ```` fences must pass ``bash -n`` (syntax only — they start
  servers and trainers, so they are not run);
* ```` ```json ```` fences must parse.

Fences tagged ``text``, ``yaml``, or left bare are illustrative output and
are skipped.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_PATHS = sorted([REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

_FENCE_OPEN = re.compile(r"^```(\S*)\s*(.*)$")
# [text](target) — excluding images; target may carry a #fragment
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*)$")


def _doc_id(path: Path) -> str:
    return str(path.relative_to(REPO_ROOT))


def _parse_fences(text: str) -> list[tuple[str, str, str]]:
    """Return ``(language, info, body)`` per fenced block."""
    fences: list[tuple[str, str, str]] = []
    language = info = None
    body: list[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if language is None:
            match = _FENCE_OPEN.match(stripped)
            if match:
                language, info = match.group(1).lower(), match.group(2).strip()
                body = []
        elif stripped == "```":
            fences.append((language, info, "\n".join(body)))
            language = info = None
        else:
            body.append(line)
    assert language is None, f"unclosed ``` fence (language {language!r})"
    return fences


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces → hyphens."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps its text
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # links keep text
    heading = heading.lower().strip()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _slugs(path: Path) -> set[str]:
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            slugs.add(_github_slug(match.group(2)))
    return slugs


class TestLinks:
    @pytest.mark.parametrize("path", DOC_PATHS, ids=_doc_id)
    def test_relative_links_resolve(self, path: Path) -> None:
        text = path.read_text(encoding="utf-8")
        broken: list[str] = []
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target_path, _, fragment = target.partition("#")
            resolved = (
                path if not target_path else (path.parent / target_path).resolve()
            )
            if not resolved.exists():
                broken.append(target)
                continue
            if fragment and resolved.suffix == ".md" and fragment not in _slugs(resolved):
                broken.append(f"{target} (no heading for #{fragment})")
        assert not broken, f"broken links in {_doc_id(path)}: {broken}"

    def test_docs_are_linked_from_readme(self) -> None:
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for page in sorted((REPO_ROOT / "docs").glob("*.md")):
            assert f"docs/{page.name}" in readme, f"README does not link {page.name}"


def _fences(language: str) -> list:
    params = []
    for path in DOC_PATHS:
        for index, (fence_language, info, body) in enumerate(
            _parse_fences(path.read_text(encoding="utf-8"))
        ):
            if fence_language == language:
                params.append(
                    pytest.param(path, info, body, id=f"{_doc_id(path)}[{index}]")
                )
    return params


class TestFences:
    @pytest.mark.parametrize("path,info,body", _fences("python"))
    def test_python_fences_compile(self, path: Path, info: str, body: str) -> None:
        compile(body, f"<{_doc_id(path)}>", "exec")

    @pytest.mark.parametrize(
        "path,info,body",
        [param for param in _fences("python") if "run" in param.values[1].split()],
    )
    def test_python_run_fences_execute(self, path: Path, info: str, body: str) -> None:
        result = subprocess.run(
            [sys.executable, "-"],
            input=body,
            text=True,
            capture_output=True,
            timeout=180,
            cwd=REPO_ROOT,
            env={
                "PYTHONPATH": str(REPO_ROOT / "src"),
                "PATH": os.environ.get("PATH", ""),
            },
        )
        assert result.returncode == 0, (
            f"`python run` fence in {_doc_id(path)} failed:\n"
            f"{result.stdout}\n{result.stderr}"
        )

    def test_at_least_one_fence_executes(self) -> None:
        assert [p for p in _fences("python") if "run" in p.values[1].split()], (
            "the docs should keep at least one executable `python run` example"
        )

    @pytest.mark.parametrize("path,info,body", _fences("bash"))
    def test_bash_fences_parse(self, path: Path, info: str, body: str) -> None:
        bash = shutil.which("bash")
        if bash is None:
            pytest.skip("no bash on this machine")
        result = subprocess.run(
            [bash, "-n"], input=body, text=True, capture_output=True, timeout=30
        )
        assert result.returncode == 0, (
            f"bash fence in {_doc_id(path)} does not parse:\n{result.stderr}"
        )

    @pytest.mark.parametrize("path,info,body", _fences("json"))
    def test_json_fences_parse(self, path: Path, info: str, body: str) -> None:
        json.loads(body)
