"""LANTERN-PERSIST: checkpoint round trips, integrity checking, and the train CLI.

The load-bearing contract: a narrator saved in one process and loaded in
another produces **token-identical** narrations for the same plan sequence —
weights, vocabulary ids, wording-cycle exposures, habituation counters, the
warm decode cache, and even a seeded rule narrator's rng stream position all
survive the round trip.  Corrupt or incompatible checkpoints fail with
structured :class:`~repro.errors.CheckpointError` subclasses, never with
silently wrong narrations.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import Lantern, LanternConfig
from repro.errors import (
    CheckpointError,
    CheckpointFormatError,
    CheckpointIntegrityError,
    CheckpointVersionError,
)
from repro.nlg.neural_lantern import NeuralLantern
from repro.nlg.persistence import (
    MANIFEST_FILE,
    WEIGHTS_FILE,
    load_lantern,
    load_qep2seq,
    save_lantern,
    save_qep2seq,
)

SQLS = [
    "SELECT count(*) FROM publication p WHERE p.year > 2005",
    "SELECT p.venue_key FROM publication p WHERE p.year > 1999 ORDER BY p.venue_key",
    (
        "SELECT i.venue, count(*) AS n FROM inproceedings i, publication p "
        "WHERE i.paper_key = p.pub_key GROUP BY i.venue"
    ),
]


class TestModelRoundTrip:
    def test_qep2seq_weights_and_decodes_survive(self, trained_neural, tmp_path):
        model = trained_neural.model
        save_qep2seq(model, tmp_path / "model")
        loaded = load_qep2seq(tmp_path / "model")

        assert loaded.input_vocabulary.tokens == model.input_vocabulary.tokens
        assert loaded.output_vocabulary.tokens == model.output_vocabulary.tokens
        assert loaded.config == model.config
        originals = {p.name: p.value for p in model.parameters()}
        for parameter in loaded.parameters():
            np.testing.assert_array_equal(parameter.value, originals[parameter.name])

        sources = [s.source_tokens for s in trained_neural.dataset.samples[:5]]
        assert loaded.beam_decode_batch(sources, beam_size=2) == model.beam_decode_batch(
            sources, beam_size=2
        )

    @pytest.mark.parametrize("variant", ["shared", "pretrained"])
    def test_constructor_edge_cases_round_trip(self, variant, tmp_path):
        """share_weights couples the LSTMs; pre-trained embeddings change the
        decoder width — both must rebuild with correct shapes on load."""
        from repro.nlg.seq2seq import QEP2Seq, Seq2SeqConfig
        from repro.nlg.vocab import Vocabulary

        input_vocabulary = Vocabulary([f"i{i}" for i in range(10)])
        output_vocabulary = Vocabulary([f"o{i}" for i in range(14)])
        if variant == "shared":
            model = QEP2Seq(
                input_vocabulary,
                output_vocabulary,
                Seq2SeqConfig(hidden_dim=12, attention_dim=6, share_weights=True, seed=3),
            )
        else:
            pretrained = np.random.default_rng(0).normal(size=(len(output_vocabulary), 20))
            model = QEP2Seq(
                input_vocabulary,
                output_vocabulary,
                Seq2SeqConfig(hidden_dim=12, attention_dim=6, seed=3),
                decoder_pretrained=pretrained,
            )
        save_qep2seq(model, tmp_path / variant)
        loaded = load_qep2seq(tmp_path / variant)
        assert (loaded.decoder is loaded.encoder) == (model.decoder is model.encoder)
        assert loaded.parameter_count() == model.parameter_count()
        source = ["i1", "i2", "i3"]
        assert loaded.beam_decode_candidates(source, beam_size=3) == (
            model.beam_decode_candidates(source, beam_size=3)
        )

    def test_neural_lantern_state_survives(self, trained_neural, tmp_path):
        # a fresh facade around the shared trained model, so this test owns
        # (and may freely mutate) the exposure and cache state it asserts on
        neural = NeuralLantern(trained_neural.model, beam_size=2)
        sources = [s.source_tokens for s in trained_neural.dataset.samples[:4]]
        for source in sources * 2:  # cycle exposures, fill the cache
            neural._ranked_candidates(source, neural._effective_beam_size())
        neural._act_exposure = {"scan|filter": 3, "join": 1}

        neural.save(tmp_path / "neural")
        loaded = NeuralLantern.load(tmp_path / "neural")

        assert loaded.beam_size == 2
        assert loaded.dataset is None
        assert loaded._act_exposure == neural._act_exposure
        assert loaded.decode_cache.max_size == neural.decode_cache.max_size
        assert loaded.decode_cache.export_entries() == neural.decode_cache.export_entries()

    def test_cache_can_be_excluded(self, trained_neural, tmp_path):
        neural = NeuralLantern(trained_neural.model, beam_size=2, cache_size=17)
        neural._ranked_candidates(
            trained_neural.dataset.samples[0].source_tokens, 2
        )
        assert len(neural.decode_cache) == 1
        neural.save(tmp_path / "cold", include_cache=False)
        loaded = NeuralLantern.load(tmp_path / "cold")
        assert len(loaded.decode_cache) == 0  # entries dropped ...
        assert loaded.decode_cache.max_size == 17  # ... configuration kept
        assert loaded.decode_cache.enabled is True


class TestLanternFacadeRoundTrip:
    def test_continuation_parity_neural_and_auto(self, dblp_db, trained_neural, tmp_path):
        lantern = Lantern(
            neural=NeuralLantern(trained_neural.model, beam_size=2),
            config=LanternConfig(seed=None, frequency_threshold=2),
        )
        trees = [lantern.plan_for_sql(dblp_db, sql) for sql in SQLS]
        for tree in trees:  # build up exposure + habituation state
            lantern.describe_plan(tree, mode="neural")

        lantern.save(tmp_path / "facade")
        loaded = Lantern.load(tmp_path / "facade")

        # both facades continue from the saved state: narrations must match
        # token for token, in both neural and habituation-routed auto mode
        for mode in ("neural", "auto"):
            expected = [lantern.describe_plan(t, mode=mode).text for t in trees]
            actual = [loaded.describe_plan(t, mode=mode).text for t in trees]
            assert actual == expected

    def test_habituation_counters_survive(self, dblp_db, tmp_path):
        lantern = Lantern(config=LanternConfig(seed=None))
        tree = lantern.plan_for_sql(dblp_db, SQLS[0])
        for _ in range(3):
            lantern.describe_plan(tree)
        lantern.save(tmp_path / "rule-only")
        loaded = Lantern.load(tmp_path / "rule-only")

        assert not (tmp_path / "rule-only" / WEIGHTS_FILE).exists()
        assert loaded.neural is None
        assert loaded._operator_counts == lantern._operator_counts
        assert sum(loaded._operator_counts.values()) > 0

    def test_pool_customized_store_survives(self, dblp_db, tmp_path):
        """Regression: a POOL-edited POEM catalog must travel with the
        checkpoint — reverting to the default wording would silently break
        the token-identical contract."""
        from repro.pool import build_default_store
        from repro.pool.interpreter import PoolSession

        store = build_default_store()
        PoolSession(store).execute(
            "UPDATE pg SET desc = 'read one after another every row of' "
            "WHERE pg.name = 'seqscan'"
        )
        lantern = Lantern(store=store, config=LanternConfig(seed=None))
        tree = lantern.plan_for_sql(dblp_db, SQLS[0])
        expected = lantern.describe_plan(tree).text
        assert "read one after another" in expected

        lantern.save(tmp_path / "custom-store")
        loaded = Lantern.load(tmp_path / "custom-store")
        assert loaded.describe_plan(tree).text == expected

    def test_seeded_rule_rng_stream_survives(self, dblp_db, tmp_path):
        """A seeded narrator's wording cycle continues across the restart
        instead of replaying from the seed."""
        lantern = Lantern(config=LanternConfig(seed=23))
        tree = lantern.plan_for_sql(dblp_db, SQLS[2])
        for _ in range(2):  # advance the description-picking rng stream
            lantern.describe_plan(tree)
        lantern.save(tmp_path / "seeded")
        loaded = Lantern.load(tmp_path / "seeded")

        expected = [lantern.describe_plan(tree).text for _ in range(4)]
        actual = [loaded.describe_plan(tree).text for _ in range(4)]
        assert actual == expected


class TestCheckpointValidation:
    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(CheckpointFormatError, match="not a LANTERN-PERSIST"):
            Lantern.load(tmp_path / "nowhere")

    def test_garbage_manifest(self, tmp_path):
        target = tmp_path / "bad"
        target.mkdir()
        (target / MANIFEST_FILE).write_text("{not json")
        with pytest.raises(CheckpointFormatError, match="unreadable"):
            Lantern.load(target)

    def test_unsupported_schema_version(self, tmp_path):
        lantern = Lantern(config=LanternConfig(seed=None))
        target = save_lantern(lantern, tmp_path / "versioned")
        manifest = json.loads((target / MANIFEST_FILE).read_text())
        manifest["schema_version"] = 99
        (target / MANIFEST_FILE).write_text(json.dumps(manifest))
        with pytest.raises(CheckpointVersionError, match="version 99"):
            Lantern.load(target)

    def test_kind_mismatch(self, trained_neural, tmp_path):
        target = save_qep2seq(trained_neural.model, tmp_path / "model")
        with pytest.raises(CheckpointVersionError, match="holds a 'qep2seq'"):
            Lantern.load(target)

    def test_corrupt_weights_detected(self, trained_neural, tmp_path):
        target = save_qep2seq(trained_neural.model, tmp_path / "model")
        weights_path = target / WEIGHTS_FILE
        blob = bytearray(weights_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF  # flip one byte mid-archive
        weights_path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointIntegrityError, match="digest mismatch"):
            load_qep2seq(target)

    def test_missing_weight_array_detected(self, trained_neural, tmp_path):
        target = save_qep2seq(trained_neural.model, tmp_path / "model")
        weights = dict(
            np.load(target / WEIGHTS_FILE, allow_pickle=False)
        )
        weights.pop("output.bias")
        with open(target / WEIGHTS_FILE, "wb") as handle:
            np.savez(handle, **weights)
        manifest = json.loads((target / MANIFEST_FILE).read_text())
        manifest["weights_sha256"] = hashlib.sha256(
            (target / WEIGHTS_FILE).read_bytes()
        ).hexdigest()
        (target / MANIFEST_FILE).write_text(json.dumps(manifest))
        with pytest.raises(CheckpointIntegrityError, match="output.bias"):
            load_qep2seq(target)

    def test_malformed_manifest_numbers_are_structured_errors(self, tmp_path):
        """Hand-edited/bit-rotted numeric fields must surface as
        CheckpointFormatError, never a raw ValueError traceback."""
        lantern = Lantern(config=LanternConfig(seed=None))
        target = save_lantern(lantern, tmp_path / "numbers")
        manifest = json.loads((target / MANIFEST_FILE).read_text())
        manifest["lantern"]["operator_counts"] = {"scan": "three"}
        (target / MANIFEST_FILE).write_text(json.dumps(manifest))
        with pytest.raises(CheckpointFormatError, match="must be a number"):
            Lantern.load(target)

    def test_overwriting_with_rule_only_removes_stale_weights(
        self, dblp_db, trained_neural, tmp_path
    ):
        neural_facade = Lantern(
            neural=NeuralLantern(trained_neural.model, beam_size=2),
            config=LanternConfig(seed=None),
        )
        target = tmp_path / "reused"
        neural_facade.save(target)
        assert (target / WEIGHTS_FILE).exists()
        Lantern(config=LanternConfig(seed=None)).save(target)
        assert not (target / WEIGHTS_FILE).exists()  # no orphaned model
        assert Lantern.load(target).neural is None

    def test_foreign_translator_refused(self, tmp_path):
        class _NotANeuralLantern:
            def translate_step(self, act, rule_step):
                return "nope"

        lantern = Lantern(neural=_NotANeuralLantern(), config=LanternConfig(seed=None))
        with pytest.raises(CheckpointError, match="only NeuralLantern"):
            lantern.save(tmp_path / "foreign")


class TestFloat32Checkpoints:
    """``Seq2SeqConfig.dtype`` must survive the manifest round trip: a
    float32 model saves float32 arrays, loads back as float32, and narrates
    identically — including from a completely fresh process, the way the
    service boots with ``--checkpoint``."""

    @staticmethod
    def _float32_model(trained_neural):
        from repro.nlg.seq2seq import QEP2Seq, Seq2SeqConfig
        from repro.nlg.training import Trainer

        dataset = trained_neural.dataset
        model = QEP2Seq(
            dataset.input_vocabulary,
            dataset.output_vocabulary,
            Seq2SeqConfig(
                hidden_dim=16, attention_dim=8, batch_size=8, seed=21, dtype="float32"
            ),
        )
        Trainer(
            model, dataset.train_samples[:48], dataset.validation_samples[:8], seed=21
        ).train(epochs=1, early_stopping_threshold=None)
        return model

    def test_round_trip_preserves_dtype_and_decodes(self, trained_neural, tmp_path):
        model = self._float32_model(trained_neural)
        target = save_qep2seq(model, tmp_path / "f32")

        manifest = json.loads((target / MANIFEST_FILE).read_text())
        assert manifest["model"]["config"]["dtype"] == "float32"
        with np.load(target / WEIGHTS_FILE, allow_pickle=False) as archive:
            assert all(archive[name].dtype == np.float32 for name in archive.files)

        loaded = load_qep2seq(target)
        assert loaded.config.dtype == "float32"
        assert all(p.value.dtype == np.float32 for p in loaded.parameters())
        originals = {p.name: p.value for p in model.parameters()}
        for parameter in loaded.parameters():
            np.testing.assert_array_equal(parameter.value, originals[parameter.name])

        sources = [s.source_tokens for s in trained_neural.dataset.samples[:5]]
        assert loaded.beam_decode_batch(sources, beam_size=2) == model.beam_decode_batch(
            sources, beam_size=2
        )

    def test_service_checkpoint_narrates_identically_across_processes(
        self, dblp_db, trained_neural, tmp_path
    ):
        """The --checkpoint boot contract for float32: a fresh process loads
        the facade and reproduces the saved state's next narrations token
        for token."""
        from repro.nlg.neural_lantern import NeuralLantern

        lantern = Lantern(
            neural=NeuralLantern(self._float32_model(trained_neural), beam_size=2),
            config=LanternConfig(seed=None),
        )
        payloads = [dblp_db.explain(sql, output_format="json") for sql in SQLS]
        target = tmp_path / "svc-f32"
        lantern.save(target)
        # narrated AFTER the save: the checkpoint is the starting point for
        # exactly these narrations (the --parity-sample convention)
        expected = [
            lantern.describe_plan(lantern.parse_plan(payload), mode="neural").text
            for payload in payloads
        ]
        payload_file = tmp_path / "payloads.json"
        payload_file.write_text(json.dumps(payloads))

        script = (
            "import json, sys\n"
            "import numpy as np\n"
            "from repro.core import Lantern\n"
            "lantern = Lantern.load(sys.argv[1])\n"
            "assert all(p.value.dtype == np.float32 for p in lantern.neural.model.parameters())\n"
            "payloads = json.loads(open(sys.argv[2]).read())\n"
            "texts = [lantern.describe_plan(lantern.parse_plan(p), mode='neural').text"
            " for p in payloads]\n"
            "print(json.dumps(texts))\n"
        )
        source_root = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(source_root) + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-c", script, str(target), str(payload_file)],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert json.loads(completed.stdout.strip().splitlines()[-1]) == expected


class TestTrainCLI:
    def test_parity_sample_requires_lantern_kind(self, tmp_path, capsys):
        """A bare NeuralLantern checkpoint cannot reproduce facade-level
        narrations, so the combination is refused up front."""
        from repro.nlg.train import main

        with pytest.raises(SystemExit):
            main(
                [
                    "--kind", "neural",
                    "--parity-sample", str(tmp_path / "parity.json"),
                    "--out", str(tmp_path / "ckpt"),
                ]
            )
        assert "--parity-sample requires --kind lantern" in capsys.readouterr().err

    def test_cli_trains_saves_and_reloads_with_parity(self, tmp_path, capsys):
        from repro.nlg.train import main

        out = tmp_path / "ckpt"
        sample_path = tmp_path / "parity.json"
        main(
            [
                "--workload", "dblp",
                "--queries", "3",
                "--epochs", "1",
                "--hidden-dim", "16",
                "--attention-dim", "8",
                "--train-cap", "40",
                "--validation-cap", "8",
                "--no-paraphrase",
                "--warm-cache",
                "--parity-sample", str(sample_path),
                "--out", str(out),
            ]
        )
        printed = capsys.readouterr().out
        assert "checkpoint written" in printed

        loaded = Lantern.load(out)
        assert loaded.neural is not None
        assert len(loaded.neural.decode_cache) > 0  # --warm-cache shipped hot

        sample = json.loads(sample_path.read_text())
        for payload, expected in zip(sample["payloads"], sample["texts"]):
            tree = loaded.parse_plan(payload)
            assert loaded.describe_plan(tree, mode=sample["mode"]).text == expected
