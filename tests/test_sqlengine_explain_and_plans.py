"""Tests for EXPLAIN serialization and the plan parsers (PostgreSQL JSON, SQL Server XML)."""

import json

import pytest

from repro.errors import PlanFormatError
from repro.plans import (
    parse_postgres_json,
    parse_sqlserver_xml,
    plan_from_database,
    render_visual_tree,
)
from repro.plans.visual import tree_summary
from repro.sqlengine.explain import to_postgres_dict, to_postgres_json, to_sqlserver_xml, to_text

JOIN_SQL = (
    "SELECT u.city, count(*) AS n FROM users u, orders o "
    "WHERE u.id = o.user_id AND o.amount > 20 GROUP BY u.city ORDER BY n DESC LIMIT 2"
)


class TestExplainText:
    def test_text_contains_operators_and_conditions(self, toy_db):
        text = toy_db.explain(JOIN_SQL)
        assert "Limit" in text and "Sort" in text
        assert "Seq Scan on orders" in text
        assert "cost=" in text and "rows=" in text

    def test_text_indentation_shows_hierarchy(self, toy_db):
        text = toy_db.explain("SELECT id FROM users u ORDER BY u.id")
        lines = text.splitlines()
        assert lines[0].startswith("Sort")
        assert any(line.lstrip().startswith("->") for line in lines)


class TestExplainJson:
    def test_json_roundtrip_structure(self, toy_db):
        document = json.loads(toy_db.explain(JOIN_SQL, output_format="json"))
        assert isinstance(document, list)
        plan = document[0]["Plan"]
        assert plan["Node Type"] == "Limit"
        assert "Plans" in plan

    def test_json_has_pg_style_keys(self, toy_db):
        plan = to_postgres_dict(toy_db.plan(JOIN_SQL))[0]["Plan"]
        flattened = json.dumps(plan)
        assert "Total Cost" in flattened
        assert "Plan Rows" in flattened
        assert "Relation Name" in flattened

    def test_hash_cond_key_used_for_hash_join(self, toy_db):
        flattened = toy_db.explain(JOIN_SQL, output_format="json")
        parsed = parse_postgres_json(flattened)
        join_nodes = [n for n in parsed.walk() if "Join" in n.name or n.name == "Nested Loop"]
        assert join_nodes and join_nodes[0].join_condition


class TestPostgresParser:
    def test_parse_roundtrip(self, toy_db):
        tree = plan_from_database(toy_db, JOIN_SQL)
        assert tree.source == "postgresql"
        assert tree.query_text == JOIN_SQL
        assert tree.root.name == "Limit"
        assert "users" in tree.relations() and "orders" in tree.relations()

    def test_aggregate_strategy_renamed(self, toy_db):
        tree = plan_from_database(toy_db, "SELECT u.city, count(*) FROM users u GROUP BY u.city")
        names = tree.operator_names()
        assert any(name in ("HashAggregate", "GroupAggregate") for name in names)

    def test_filter_and_conditions_normalized(self, toy_db):
        tree = plan_from_database(toy_db, "SELECT id FROM users u WHERE u.age > 30")
        scan = tree.leaves()[0]
        assert scan.filter_condition and "age" in scan.filter_condition

    def test_malformed_json_raises(self):
        with pytest.raises(PlanFormatError):
            parse_postgres_json("{not json")
        with pytest.raises(PlanFormatError):
            parse_postgres_json([])
        with pytest.raises(PlanFormatError):
            parse_postgres_json([{"Plan": {"Missing": "Node Type"}}])

    def test_parse_handcrafted_pg_document(self):
        document = [{
            "Plan": {
                "Node Type": "Hash Join",
                "Hash Cond": "(a.id = b.id)",
                "Total Cost": 12.5,
                "Plan Rows": 42,
                "Plans": [
                    {"Node Type": "Seq Scan", "Relation Name": "a", "Alias": "a"},
                    {"Node Type": "Hash", "Plans": [
                        {"Node Type": "Seq Scan", "Relation Name": "b", "Filter": "(b.x > 1)"},
                    ]},
                ],
            }
        }]
        tree = parse_postgres_json(document)
        assert tree.root.name == "Hash Join"
        assert tree.root.join_condition == "(a.id = b.id)"
        assert tree.node_count() == 4


class TestSqlServerXml:
    def test_xml_structure_and_parse(self, toy_db):
        xml_text = toy_db.explain(JOIN_SQL, output_format="xml")
        assert "ShowPlanXML" in xml_text and "RelOp" in xml_text
        tree = parse_sqlserver_xml(xml_text)
        assert tree.source == "sqlserver"
        names = tree.operator_names()
        assert "Table Scan" in names
        assert all(name not in names for name in ("Seq Scan", "Hash"))

    def test_hash_build_node_spliced_out(self, toy_db):
        pg_tree = plan_from_database(toy_db, JOIN_SQL)
        xml_tree = parse_sqlserver_xml(toy_db.explain(JOIN_SQL, output_format="xml"))
        assert xml_tree.node_count() == pg_tree.node_count() - len(pg_tree.root.find("Hash"))

    def test_hash_match_aggregate_disambiguated(self, toy_db):
        xml_text = toy_db.explain(
            "SELECT u.city, count(*) FROM users u GROUP BY u.city", output_format="xml"
        )
        tree = parse_sqlserver_xml(xml_text)
        assert any(
            name in ("Hash Match (Aggregate)", "Stream Aggregate") for name in tree.operator_names()
        )

    def test_malformed_xml_raises(self):
        with pytest.raises(PlanFormatError):
            parse_sqlserver_xml("<broken")
        with pytest.raises(PlanFormatError):
            parse_sqlserver_xml("<ShowPlanXML></ShowPlanXML>")


class TestVisualTree:
    def test_render_contains_all_operators(self, toy_db):
        tree = plan_from_database(toy_db, JOIN_SQL)
        rendering = render_visual_tree(tree)
        for name in set(tree.operator_names()):
            assert name in rendering

    def test_render_with_details_shows_conditions(self, toy_db):
        tree = plan_from_database(toy_db, "SELECT id FROM users u WHERE u.age > 30")
        rendering = render_visual_tree(tree, show_details=True)
        assert "age" in rendering

    def test_annotation_callback(self, toy_db):
        tree = plan_from_database(toy_db, "SELECT id FROM users u")
        rendering = render_visual_tree(tree, annotation=lambda node: f"note:{node.name}")
        assert "note:Seq Scan" in rendering

    def test_tree_summary_counts(self, toy_db):
        tree = plan_from_database(toy_db, JOIN_SQL)
        summary = tree_summary(tree)
        assert summary["nodes"] == tree.node_count()
        assert summary["scans"] == 2
        assert summary["joins"] >= 1
