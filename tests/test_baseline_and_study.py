"""Tests for the NEURON baseline and the learner-study simulation."""

import pytest

from repro.baselines import Neuron
from repro.errors import NarrationError
from repro.plans import parse_sqlserver_xml, plan_from_database
from repro.study import HabituationModel, LearnerPopulation, boredom_likert
from repro.study.boredom import text_similarity
from repro.study.experiments import (
    StudyMaterials,
    boredom_study,
    error_impact_study,
    format_preference_survey,
    lantern_vs_neuron_study,
    mixed_output_marking,
    presentation_study,
    q1_ease_of_understanding,
    q2_description_quality,
    q3_preferred_format,
)
from repro.study.learner import LearnerProfile, SimulatedLearner
from repro.study.surveys import LikertDistribution, PreferenceShares, format_likert_table

JOIN_SQL = (
    "SELECT i.venue, count(*) AS n FROM inproceedings i, publication p "
    "WHERE i.paper_key = p.pub_key GROUP BY i.venue ORDER BY n DESC LIMIT 5"
)


class TestNeuron:
    def test_narrates_postgres_plan(self, dblp_db):
        tree = plan_from_database(dblp_db, JOIN_SQL)
        narration = Neuron().narrate(tree)
        assert narration.generator == "neuron"
        assert narration.steps[-1].text.endswith("to get the final results.")
        assert "hash" in narration.text or "join" in narration.text

    def test_fails_on_sqlserver_operator_names(self, dblp_db):
        tree = parse_sqlserver_xml(dblp_db.explain(JOIN_SQL, output_format="xml"))
        neuron = Neuron()
        assert not neuron.supports(tree)
        with pytest.raises(NarrationError):
            neuron.narrate(tree)
        assert neuron.try_narrate(tree) is None

    def test_output_is_fixed_wording(self, dblp_db):
        tree = plan_from_database(dblp_db, JOIN_SQL)
        neuron = Neuron()
        assert neuron.narrate(tree).text == neuron.narrate(tree).text

    def test_lantern_covers_sqlserver_where_neuron_fails(self, dblp_db, lantern):
        tree = parse_sqlserver_xml(dblp_db.explain(JOIN_SQL, output_format="xml"))
        assert Neuron().try_narrate(tree) is None
        narration = lantern.describe_plan(tree)
        assert narration.steps


class TestHabituation:
    def test_similarity_bounds(self):
        assert text_similarity("a b c", "a b c") == 1.0
        assert text_similarity("a b c", "x y z") == 0.0

    def test_repetition_increases_state_and_novelty_recovers(self):
        model = HabituationModel(boredom_proneness=0.8)
        repetitive = "perform hash join on orders and customer to get the intermediate relation T1."
        for _ in range(15):
            model.expose(repetitive)
        bored_state = model.state
        assert bored_state > 0.4
        model.expose("a completely different sentence about galaxies and telescopes")
        assert model.state < bored_state

    def test_boredom_likert_monotone(self):
        values = [boredom_likert(state) for state in (0.0, 0.5, 1.5, 2.5, 5.0)]
        assert values == sorted(values)
        assert values[0] == 1 and values[-1] == 5

    def test_varied_text_produces_less_boredom_than_repetitive(self):
        repetitive = ["perform sequential scan on orders to get T1."] * 30
        varied = [f"step {i}: read table number {i} using strategy {i % 7}" for i in range(30)]
        bored = HabituationModel(boredom_proneness=0.7)
        fresh = HabituationModel(boredom_proneness=0.7)
        assert bored.expose_all(repetitive) > fresh.expose_all(varied)


class TestLearnerAndSurveys:
    def test_population_is_reproducible(self):
        first = LearnerPopulation(10, seed=5)
        second = LearnerPopulation(10, seed=5)
        assert [l.profile for l in first] == [l.profile for l in second]
        assert len(first) == 10

    def test_learner_prefers_nl_over_json(self):
        learner = SimulatedLearner(LearnerProfile.sample(__import__("random").Random(1)), seed=2)
        nl_ratings = [learner.rate_ease("nl-rule") for _ in range(20)]
        json_ratings = [learner.rate_ease("json", size_tokens=3000) for _ in range(20)]
        assert sum(nl_ratings) > sum(json_ratings)

    def test_quality_rating_penalizes_errors(self):
        learner = SimulatedLearner(LearnerProfile.sample(__import__("random").Random(3)), seed=4)
        clean = sum(learner.rate_description_quality(0.0) for _ in range(20))
        noisy = sum(learner.rate_description_quality(0.4) for _ in range(20))
        assert clean > noisy

    def test_likert_distribution_accounting(self):
        distribution = LikertDistribution()
        distribution.extend([1, 3, 4, 5, 5])
        assert distribution.total == 5
        assert distribution.fraction_above(3) == pytest.approx(3 / 5)
        assert distribution.as_row() == [1, 0, 1, 1, 2]
        with pytest.raises(ValueError):
            distribution.add(6)

    def test_preference_shares(self):
        shares = PreferenceShares()
        for choice in ["a", "a", "b"]:
            shares.add(choice)
        assert shares.share("a") == pytest.approx(2 / 3)
        assert shares.ranking()[0][0] == "a"

    def test_format_likert_table_renders(self):
        table = format_likert_table({"nl-rule": LikertDistribution()})
        assert "RULE-LANTERN" in table


class TestExperimentDrivers:
    @pytest.fixture(scope="class")
    def materials(self, dblp_db, lantern):
        from repro.plans.visual import render_visual_tree

        queries = [
            JOIN_SQL,
            "SELECT count(*) FROM publication p WHERE p.year > 2010",
            "SELECT p.title FROM publication p ORDER BY p.year DESC LIMIT 10",
        ]
        narrations, trees, json_documents = [], [], []
        for sql in queries:
            tree = lantern.plan_for_sql(dblp_db, sql)
            trees.append(render_visual_tree(tree))
            json_documents.append(dblp_db.explain(sql, output_format="json"))
            narrations.append(lantern.describe_plan(tree))
        return StudyMaterials(
            json_documents=json_documents,
            visual_trees=trees,
            rule_narrations=narrations,
            neural_texts=[n.text for n in narrations],
        )

    def test_figure3_shape_nl_most_preferred(self, materials):
        shares = format_preference_survey(materials, LearnerPopulation(62, seed=11))
        assert shares.total == 62
        assert shares.share("nl") > shares.share("visual-tree") > shares.share("json") - 1e-9

    def test_q1_nl_easier_than_json(self, materials):
        results = q1_ease_of_understanding(materials, LearnerPopulation(43, seed=12))
        assert results["nl-rule"].fraction_above(3) > results["json"].fraction_above(3)
        assert results["visual-tree"].fraction_above(3) >= results["json"].fraction_above(3)
        assert all(distribution.total == 43 for distribution in results.values())

    def test_q2_rule_slightly_better_than_neural(self):
        results = q2_description_quality(
            LearnerPopulation(43, seed=13), {"nl-rule": 0.0, "nl-neural": 0.05}
        )
        assert results["nl-rule"].fraction_above(3) >= results["nl-neural"].fraction_above(3) - 0.1

    def test_q3_nl_formats_lead(self, materials):
        shares = q3_preferred_format(materials, LearnerPopulation(43, seed=14))
        ranking = dict(shares.ranking())
        assert ranking.get("json", 0.0) < max(ranking.get("nl-rule", 0), ranking.get("nl-neural", 0))

    def test_boredom_rule_worse_than_neural(self, materials):
        rule_texts = [step.text for narration in materials.rule_narrations for step in narration.steps] * 8
        varied_texts = [f"{text} (variant {i % 5})" for i, text in enumerate(rule_texts)]
        results = boredom_study({"rule": rule_texts, "neural": varied_texts}, LearnerPopulation(20, seed=15))
        assert results["rule"].mean() >= results["neural"].mean()

    def test_mixed_marking_counts_per_label(self):
        labelled = [("rule", f"perform sequential scan on orders to get T{i % 2}.") for i in range(20)]
        labelled += [("neural", f"read table {i} in an unusual way number {i}") for i in range(10)]
        marks = mixed_output_marking(labelled, LearnerPopulation(10, seed=16))
        assert marks["rule"]["total"] == 20 and marks["neural"]["total"] == 10
        assert marks["rule"]["marked"] >= marks["neural"]["marked"]

    def test_error_impact_minority_finds_problematic(self):
        population = LearnerPopulation(43, seed=17)
        problematic = error_impact_study(population, [(1, 25), (0, 25), (1, 30), (2, 28)])
        assert 0 <= problematic <= len(population)
        assert problematic < len(population) / 2

    def test_lantern_vs_neuron_gap(self):
        results = lantern_vs_neuron_study(
            LearnerPopulation(43, seed=18), lantern_success_rate=1.0, neuron_success_rate=0.5
        )
        assert results["lantern"].fraction_above(3) > results["neuron"].fraction_above(3)

    def test_presentation_document_majority(self):
        shares = presentation_study(LearnerPopulation(43, seed=19))
        assert shares.share("document") > shares.share("annotated-tree")
