"""Tests for the QEP2Seq model, the dataset builder, training, and NEURAL-LANTERN integration."""

import numpy as np
import pytest

from repro.core.acts import align_acts_with_narration, decompose_lot_into_acts
from repro.core.lantern import Lantern
from repro.core.tags import contains_tags
from repro.nlg.dataset import abstract_step, build_dataset, samples_for_database
from repro.nlg.seq2seq import QEP2Seq, Seq2SeqConfig
from repro.nlg.training import Trainer
from repro.nlg.vocab import Vocabulary


def _copy_task_samples():
    """A tiny synthetic task: copy the source tokens — ideal for convergence tests."""
    from repro.nlg.dataset import TrainingSample

    tokens = ["alpha", "beta", "gamma", "delta"]
    samples = []
    for first in tokens:
        for second in tokens:
            samples.append(
                TrainingSample(
                    source_tokens=[first, second],
                    target_tokens=[first, second],
                    abstracted_text=f"{first} {second}",
                )
            )
    return samples


class TestQEP2SeqModel:
    def test_default_config_matches_paper(self):
        config = Seq2SeqConfig()
        assert config.hidden_dim == 256
        assert config.encoder_embedding_dim == 16
        assert config.decoder_embedding_dim == 32
        assert config.batch_size == 4
        assert config.learning_rate == 0.001
        assert config.beam_size == 4

    def test_parameter_count_scales_with_embedding_dimension(self):
        input_vocabulary = Vocabulary([f"i{i}" for i in range(30)])
        output_vocabulary = Vocabulary([f"o{i}" for i in range(56)])
        small = QEP2Seq(input_vocabulary, output_vocabulary, Seq2SeqConfig(hidden_dim=64, decoder_embedding_dim=32))
        pretrained = np.zeros((len(output_vocabulary), 128))
        large = QEP2Seq(
            input_vocabulary, output_vocabulary,
            Seq2SeqConfig(hidden_dim=64), decoder_pretrained=pretrained,
        )
        assert large.parameter_count() > small.parameter_count()
        _, decoder_small = small.recurrent_connection_counts()
        _, decoder_large = large.recurrent_connection_counts()
        assert decoder_large > decoder_small

    def test_weight_sharing_uses_one_lstm(self):
        input_vocabulary = Vocabulary(["a", "b"])
        output_vocabulary = Vocabulary(["x", "y"])
        shared = QEP2Seq(input_vocabulary, output_vocabulary, Seq2SeqConfig(hidden_dim=16, share_weights=True))
        unshared = QEP2Seq(input_vocabulary, output_vocabulary, Seq2SeqConfig(hidden_dim=16, share_weights=False))
        assert shared.encoder is shared.decoder
        assert unshared.encoder is not unshared.decoder
        assert shared.parameter_count() < unshared.parameter_count()

    def test_pretrained_embeddings_must_cover_vocabulary(self):
        from repro.errors import ModelConfigError

        with pytest.raises(ModelConfigError):
            QEP2Seq(Vocabulary(["a"]), Vocabulary(["x"]), decoder_pretrained=np.zeros((2, 8)))

    def test_make_batch_padding_and_masks(self):
        model = QEP2Seq(Vocabulary(["a", "b"]), Vocabulary(["x", "y"]), Seq2SeqConfig(hidden_dim=8))
        batch = model.make_batch([["a"], ["a", "b", "b"]], [["x", "y"], ["y"]])
        assert batch.encoder_ids.shape == (2, 3)
        assert batch.encoder_mask.sum() == 4
        assert batch.decoder_targets.shape[1] == 3  # longest target + END
        assert batch.decoder_inputs[0, 0] == model.output_vocabulary.bos_id

    def test_train_batch_reduces_loss(self):
        samples = _copy_task_samples()
        vocabulary = Vocabulary.from_sequences([s.source_tokens for s in samples])
        model = QEP2Seq(
            vocabulary, vocabulary,
            Seq2SeqConfig(hidden_dim=24, attention_dim=12, learning_rate=0.02, seed=0),
        )
        batch = model.make_batch([s.source_tokens for s in samples], [s.target_tokens for s in samples])
        first_loss, _ = model.evaluate_batch(batch)
        for _ in range(60):
            model.train_batch(batch)
        final_loss, final_accuracy = model.evaluate_batch(batch)
        assert final_loss < first_loss * 0.5
        assert final_accuracy > 0.8

    def test_greedy_decode_learns_copy_task(self):
        samples = _copy_task_samples()
        vocabulary = Vocabulary.from_sequences([s.source_tokens for s in samples])
        model = QEP2Seq(
            vocabulary, vocabulary,
            Seq2SeqConfig(hidden_dim=32, attention_dim=16, learning_rate=0.02, seed=1),
        )
        trainer = Trainer(model, samples, samples[:4], seed=1)
        trainer.train(epochs=40, batch_size=8, early_stopping_threshold=None)
        decoded = model.greedy_decode(["alpha", "delta"])
        assert decoded == ["alpha", "delta"]

    def test_beam_decode_terminates_and_strips_control_tokens(self):
        model = QEP2Seq(Vocabulary(["a"]), Vocabulary(["x"]), Seq2SeqConfig(hidden_dim=8, max_decode_length=5))
        decoded = model.beam_decode(["a"], beam_size=2)
        assert len(decoded) <= 5
        assert all(not token.startswith("<PAD") for token in decoded)


class TestDatasetAndTraining:
    def test_samples_for_database_tags_and_structure(self, dblp_db, poem_store):
        queries = ["SELECT i.venue, count(*) AS n FROM inproceedings i, publication p "
                   "WHERE i.paper_key = p.pub_key AND p.year > 2010 GROUP BY i.venue ORDER BY n DESC LIMIT 5"]
        groups, sentences = samples_for_database(dblp_db, queries, store=poem_store, origin="dblp")
        assert groups and sentences
        for group in groups:
            assert contains_tags(group.original.abstracted_text) or group.original.abstracted_text
            for sample in group.samples:
                assert sample.source_tokens and sample.target_tokens

    def test_abstract_step_replaces_values(self, dblp_db, lantern):
        narration = lantern.describe_sql(
            dblp_db, "SELECT p.title FROM publication p WHERE p.year > 2015"
        )
        step = narration.steps[0]
        abstracted, mapping = abstract_step(step)
        assert "publication" not in abstracted
        assert "<T>" in abstracted
        assert mapping.slots

    def test_build_dataset_split_and_vocabularies(self, dblp_db, poem_store):
        queries = [
            "SELECT count(*) FROM publication p WHERE p.year > 2012",
            "SELECT i.venue, count(*) AS n FROM inproceedings i GROUP BY i.venue",
            "SELECT p.title FROM publication p, inproceedings i WHERE i.paper_key = p.pub_key LIMIT 3",
        ]
        dataset = build_dataset([(dblp_db, queries, "postgresql", "dblp")], store=poem_store, seed=3)
        assert dataset.size == len(dataset.train_samples) + len(dataset.validation_samples)
        assert len(dataset.validation_samples) >= 1
        assert "<T>" in dataset.output_vocabulary.tokens
        assert all(token in dataset.input_vocabulary for sample in dataset.samples for token in sample.source_tokens)

    def test_paraphrasing_enlarges_dataset(self, dblp_db, poem_store):
        queries = ["SELECT count(*) FROM publication p WHERE p.year > 2012"]
        with_paraphrase = build_dataset([(dblp_db, queries, "postgresql", "dblp")], store=poem_store)
        without = build_dataset([(dblp_db, queries, "postgresql", "dblp")], store=poem_store, paraphrase=False)
        assert with_paraphrase.size > without.size
        assert without.size == len(without.groups)

    def test_partial_final_batch_is_weighted_by_chunk_size(self):
        """Regression: epoch metrics must weight per-batch means by chunk size.

        5 samples at batch_size=4 split into chunks of 4 and 1.  The stub
        reports loss 0.0 / accuracy 1.0 for the full chunk and loss 10.0 /
        accuracy 0.0 for the single-sample remainder; the epoch metric must
        be the per-sample mean (2.0 / 0.8), not the unweighted per-batch
        mean (5.0 / 0.5) that overweights the partial batch.
        """

        class _StubModel:
            def encode_pair(self, source_tokens, target_tokens):
                return (source_tokens, target_tokens)

            def make_batch_encoded(self, pairs):
                return len(pairs)

            def train_batch(self, chunk_size):
                return (0.0, 1.0) if chunk_size == 4 else (10.0, 0.0)

            evaluate_batch = train_batch

        samples = _copy_task_samples()[:5]
        trainer = Trainer(_StubModel(), samples, [], seed=0)
        loss, accuracy = trainer._run_batches(samples, batch_size=4, train=True)
        assert loss == pytest.approx(2.0)
        assert accuracy == pytest.approx(0.8)
        assert trainer._run_batches([], batch_size=4, train=False) == (0.0, 0.0)

    def test_trainer_records_history_and_early_stops(self):
        samples = _copy_task_samples()
        vocabulary = Vocabulary.from_sequences([s.source_tokens for s in samples])
        model = QEP2Seq(vocabulary, vocabulary, Seq2SeqConfig(hidden_dim=16, attention_dim=8, seed=2))
        history = Trainer(model, samples, samples[:4], seed=2).train(
            epochs=60, batch_size=8, early_stopping_threshold=0.05, early_stopping_window=4
        )
        assert history.epochs <= 60
        assert history.records[0].train_loss > history.records[-1].train_loss
        assert history.average_epoch_seconds > 0
        assert history.stopped_early or history.epochs == 60


class TestNeuralLanternIntegration:
    def test_translate_step_restores_concrete_values(self, dblp_db, poem_store, trained_neural):
        facade = Lantern(store=poem_store, neural=trained_neural)
        sql = ("SELECT i.venue, count(*) AS n FROM inproceedings i, publication p "
               "WHERE i.paper_key = p.pub_key GROUP BY i.venue")
        tree = facade.plan_for_sql(dblp_db, sql)
        rule = facade.describe_plan(tree, mode="rule")
        neural = facade.describe_plan(tree, mode="neural")
        assert neural.generator == "neural"
        assert len(neural.steps) == len(rule.steps)
        # concrete schema values must survive tag restoration
        assert any("inproceedings" in step.text or "publication" in step.text for step in neural.steps)
        assert not any(contains_tags(step.text) for step in neural.steps)

    def test_auto_mode_switches_after_threshold(self, dblp_db, poem_store, trained_neural):
        from repro.core.lantern import LanternConfig

        facade = Lantern(store=poem_store, neural=trained_neural, config=LanternConfig(frequency_threshold=2))
        sql = "SELECT count(*) FROM publication p WHERE p.year > 2005"
        first = facade.describe_sql(dblp_db, sql, mode="auto")
        assert all(step.generator == "rule" for step in first.steps)
        facade.describe_sql(dblp_db, sql, mode="auto")
        third = facade.describe_sql(dblp_db, sql, mode="auto")
        assert any(step.generator == "neural" for step in third.steps)

    def test_bleu_and_error_profile_on_validation_data(self, trained_neural):
        samples = trained_neural.dataset.validation_samples[:8]
        bleu = trained_neural.test_bleu(samples, beam_size=2)
        assert 0.0 <= bleu <= 100.0
        profile = trained_neural.token_error_profile(samples, beam_size=2)
        assert sum(profile.values()) == len(samples)

    def test_acts_align_with_narration_for_neural_input(self, dblp_db, poem_store, lantern):
        tree = lantern.plan_for_sql(
            dblp_db,
            "SELECT p.title FROM publication p, inproceedings i WHERE i.paper_key = p.pub_key LIMIT 4",
        )
        narration = lantern.describe_plan(tree)
        acts = align_acts_with_narration(decompose_lot_into_acts(narration.lot), narration)
        assert [act.step.index for act in acts] == [step.index for step in narration.steps]
