"""Tests for the NumPy neural substrate, including numerical gradient checks."""

import numpy as np
import pytest

from repro.errors import ModelConfigError
from repro.nlg.nn.attention import AdditiveAttention
from repro.nlg.nn.functional import one_hot, sigmoid, softmax
from repro.nlg.nn.layers import Dense, Embedding
from repro.nlg.nn.losses import cross_entropy_from_logits
from repro.nlg.nn.lstm import LSTM
from repro.nlg.nn.optimizers import SGD, Adam


class TestFunctional:
    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-50, 50, 101)
        y = sigmoid(x)
        assert np.all((y >= 0) & (y <= 1))
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_softmax_sums_to_one_and_is_stable(self):
        logits = np.array([[1000.0, 1000.0, 999.0], [0.0, 1.0, 2.0]])
        probabilities = softmax(logits)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert not np.any(np.isnan(probabilities))

    def test_one_hot(self):
        encoded = one_hot(np.array([[0, 2]]), 3)
        assert encoded.shape == (1, 2, 3)
        assert encoded[0, 1, 2] == 1.0 and encoded[0, 1].sum() == 1.0


class TestLayers:
    def test_dense_forward_backward_shapes(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(5, 4))
        y = layer.forward(x)
        assert y.shape == (5, 3)
        grad_x = layer.backward(x, np.ones_like(y))
        assert grad_x.shape == x.shape
        assert layer.weight.grad.shape == (4, 3)

    def test_embedding_lookup_and_grad_accumulation(self):
        rng = np.random.default_rng(0)
        layer = Embedding(10, 4, rng)
        ids = np.array([[1, 1, 2]])
        out = layer.forward(ids)
        assert out.shape == (1, 3, 4)
        layer.backward(ids, np.ones_like(out))
        assert np.allclose(layer.table.grad[1], 2.0)
        assert np.allclose(layer.table.grad[2], 1.0)
        assert np.allclose(layer.table.grad[3], 0.0)

    def test_embedding_pretrained_shape_checked(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ModelConfigError):
            Embedding(10, 4, rng, pretrained=np.zeros((9, 4)))

    def test_frozen_embedding_accumulates_no_grad(self):
        rng = np.random.default_rng(0)
        layer = Embedding(5, 2, rng, trainable=False)
        layer.backward(np.array([[0]]), np.ones((1, 1, 2)))
        assert not layer.parameters()


class TestLoss:
    def test_cross_entropy_perfect_prediction_is_low(self):
        logits = np.full((1, 2, 3), -10.0)
        logits[0, 0, 1] = 10.0
        logits[0, 1, 2] = 10.0
        loss, grad = cross_entropy_from_logits(logits, np.array([[1, 2]]))
        assert loss < 1e-6
        assert grad.shape == logits.shape

    def test_masked_positions_do_not_contribute(self):
        logits = np.random.default_rng(0).normal(size=(1, 3, 4))
        targets = np.array([[1, 2, 3]])
        full_loss, _ = cross_entropy_from_logits(logits, targets)
        masked_loss, grad = cross_entropy_from_logits(logits, targets, np.array([[1.0, 1.0, 0.0]]))
        assert masked_loss != pytest.approx(full_loss)
        assert np.allclose(grad[0, 2], 0.0)


class TestOptimizers:
    def test_sgd_moves_against_gradient(self):
        from repro.nlg.nn.layers import Parameter

        parameter = Parameter(np.array([1.0, -1.0]))
        parameter.grad = np.array([0.5, -0.5])
        SGD([parameter], learning_rate=0.1, clip_norm=None).step()
        assert np.allclose(parameter.value, [0.95, -0.95])

    def test_sgd_clips_large_gradients(self):
        from repro.nlg.nn.layers import Parameter

        parameter = Parameter(np.zeros(2))
        parameter.grad = np.array([300.0, 400.0])
        SGD([parameter], learning_rate=1.0, clip_norm=5.0).step()
        assert np.linalg.norm(parameter.value) == pytest.approx(5.0)

    def test_adam_converges_on_quadratic(self):
        from repro.nlg.nn.layers import Parameter

        parameter = Parameter(np.array([5.0]))
        optimizer = Adam([parameter], learning_rate=0.2)
        for _ in range(200):
            parameter.grad = 2 * parameter.value
            optimizer.step()
        assert abs(parameter.value[0]) < 0.05


class TestLstmGradients:
    def test_lstm_forward_shapes_and_mask_passthrough(self):
        rng = np.random.default_rng(1)
        lstm = LSTM(3, 5, rng)
        inputs = rng.normal(size=(2, 4, 3))
        mask = np.array([[1, 1, 1, 1], [1, 1, 0, 0]], dtype=float)
        outputs, final_h, final_c, caches = lstm.forward(inputs, mask=mask)
        assert outputs.shape == (2, 4, 5)
        # masked steps keep the previous hidden state
        assert np.allclose(outputs[1, 1], outputs[1, 3])
        assert len(caches) == 4
        assert final_h.shape == (2, 5) and final_c.shape == (2, 5)

    def test_lstm_numerical_gradient_check(self):
        rng = np.random.default_rng(2)
        lstm = LSTM(2, 3, rng)
        inputs = rng.normal(size=(1, 3, 2))

        def loss_for(weight_value):
            original = lstm.weight_x.value.copy()
            lstm.weight_x.value = weight_value
            outputs, _, _, _ = lstm.forward(inputs)
            lstm.weight_x.value = original
            return float(np.sum(outputs ** 2))

        outputs, _, _, caches = lstm.forward(inputs)
        for parameter in lstm.parameters():
            parameter.zero_grad()
        lstm.backward(caches, 2 * outputs)
        analytic = lstm.weight_x.grad.copy()

        epsilon = 1e-5
        index = (0, 1)
        perturbed = lstm.weight_x.value.copy()
        perturbed[index] += epsilon
        plus = loss_for(perturbed)
        perturbed[index] -= 2 * epsilon
        minus = loss_for(perturbed)
        numeric = (plus - minus) / (2 * epsilon)
        assert analytic[index] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_lstm_backward_input_gradient_check(self):
        rng = np.random.default_rng(3)
        lstm = LSTM(2, 3, rng)
        inputs = rng.normal(size=(1, 2, 2))
        outputs, _, _, caches = lstm.forward(inputs)
        grad_inputs, _, _ = lstm.backward(caches, 2 * outputs)

        epsilon = 1e-5
        perturbed = inputs.copy()
        perturbed[0, 0, 1] += epsilon
        plus = float(np.sum(lstm.forward(perturbed)[0] ** 2))
        perturbed[0, 0, 1] -= 2 * epsilon
        minus = float(np.sum(lstm.forward(perturbed)[0] ** 2))
        numeric = (plus - minus) / (2 * epsilon)
        assert grad_inputs[0, 0, 1] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_recurrent_connection_count(self):
        rng = np.random.default_rng(4)
        lstm = LSTM(16, 256, rng)
        # 4H(D + H + 1): the quantity the paper reports per component in Table 3
        assert lstm.recurrent_connection_count == 4 * 256 * (16 + 256 + 1)


class TestAttentionGradients:
    def test_attention_weights_sum_to_one_and_respect_mask(self):
        rng = np.random.default_rng(5)
        attention = AdditiveAttention(4, 4, 3, rng)
        decoder_state = rng.normal(size=(2, 4))
        encoder_states = rng.normal(size=(2, 5, 4))
        mask = np.array([[1, 1, 1, 0, 0], [1, 1, 1, 1, 1]], dtype=float)
        context, weights, _ = attention.forward(decoder_state, encoder_states, mask)
        assert context.shape == (2, 4)
        assert np.allclose(weights.sum(axis=1), 1.0)
        assert np.allclose(weights[0, 3:], 0.0)

    def test_attention_numerical_gradient_check(self):
        rng = np.random.default_rng(6)
        attention = AdditiveAttention(3, 3, 2, rng)
        decoder_state = rng.normal(size=(1, 3))
        encoder_states = rng.normal(size=(1, 4, 3))

        def loss(state):
            context, _, _ = attention.forward(state, encoder_states)
            return float(np.sum(context ** 2))

        context, _, cache = attention.forward(decoder_state, encoder_states)
        grad_decoder, _ = attention.backward(cache, 2 * context)

        epsilon = 1e-6
        perturbed = decoder_state.copy()
        perturbed[0, 1] += epsilon
        plus = loss(perturbed)
        perturbed[0, 1] -= 2 * epsilon
        minus = loss(perturbed)
        numeric = (plus - minus) / (2 * epsilon)
        assert grad_decoder[0, 1] == pytest.approx(numeric, rel=1e-3, abs=1e-7)
