"""LANTERN-SCOPE training telemetry: hooks, per-epoch throughput, the CLI.

The contracts: attaching hooks never changes what training computes; every
epoch record carries tokens/s and the last step's gradient norm; and a
``--telemetry`` run persists a JSONL stream a later tool can re-read —
train_begin, per-batch, per-epoch, train_end, and the phase-timing trace.
"""

import json

import pytest

from repro.nlg.training import EpochRecord, TelemetryHooks, Trainer, TrainerHooks
from repro.obs import JsonEventLog, read_events


class _RecordingHooks(TrainerHooks):
    def __init__(self) -> None:
        self.calls: list[tuple] = []

    def on_train_begin(self, trainer, epochs, batch_size):
        self.calls.append(("train_begin", epochs, batch_size))

    def on_epoch_begin(self, epoch):
        self.calls.append(("epoch_begin", epoch))

    def on_batch_end(self, epoch, batch_index, loss, accuracy, tokens, seconds, grad_norm):
        self.calls.append(("batch", epoch, batch_index, tokens, grad_norm))

    def on_epoch_end(self, record, early_stopping):
        self.calls.append(("epoch_end", record, dict(early_stopping)))

    def on_train_end(self, history):
        self.calls.append(("train_end", history.epochs))


@pytest.fixture(scope="module")
def tiny_setup():
    """A small real dataset + config, shared by the hook tests."""
    from repro.nlg.dataset import build_dataset
    from repro.nlg.seq2seq import QEP2Seq, Seq2SeqConfig
    from repro.workloads import build_dblp_database
    from repro.workloads.dblp import DBLP_JOIN_GRAPH
    from repro.workloads.generator import RandomQueryGenerator

    db = build_dblp_database(publication_count=200, seed=11)
    generator = RandomQueryGenerator(db, DBLP_JOIN_GRAPH, seed=11)
    queries = [generated.sql for generated in generator.generate(6)]
    dataset = build_dataset([(db, queries, "postgresql", "dblp")], seed=11)
    config = Seq2SeqConfig(hidden_dim=24, attention_dim=12, batch_size=8, seed=11)
    return dataset, config


def _fresh_trainer(tiny_setup) -> Trainer:
    from repro.nlg.seq2seq import QEP2Seq

    dataset, config = tiny_setup
    model = QEP2Seq(dataset.input_vocabulary, dataset.output_vocabulary, config)
    return Trainer(
        model, dataset.train_samples[:32], dataset.validation_samples[:8], seed=11
    )


class TestTrainerHooks:
    def test_hooks_receive_the_full_lifecycle(self, tiny_setup):
        hooks = _RecordingHooks()
        trainer = _fresh_trainer(tiny_setup)
        history = trainer.train(epochs=2, early_stopping_threshold=None, hooks=hooks)

        kinds = [call[0] for call in hooks.calls]
        assert kinds[0] == "train_begin"
        assert kinds[-1] == "train_end"
        assert kinds.count("epoch_begin") == 2
        assert kinds.count("epoch_end") == 2
        batch_calls = [call for call in hooks.calls if call[0] == "batch"]
        assert len(batch_calls) == 2 * 4  # 32 samples / batch_size 8
        assert all(call[3] > 0 for call in batch_calls)  # tokens
        assert all(call[4] is not None and call[4] >= 0.0 for call in batch_calls)

        (_, record, early_stopping) = next(
            call for call in hooks.calls if call[0] == "epoch_end"
        )
        assert isinstance(record, EpochRecord)
        assert record.tokens > 0
        assert record.tokens_per_second > 0
        assert record.grad_norm is not None
        assert early_stopping["triggered"] is False
        assert hooks.calls[-1] == ("train_end", history.epochs)

    def test_hooks_do_not_change_training(self, tiny_setup):
        """Observation must be free: identical seeds with and without hooks
        produce bit-identical loss curves."""
        bare = _fresh_trainer(tiny_setup).train(epochs=2, early_stopping_threshold=None)
        hooked = _fresh_trainer(tiny_setup).train(
            epochs=2, early_stopping_threshold=None, hooks=_RecordingHooks()
        )
        assert [record.train_loss for record in bare.records] == [
            record.train_loss for record in hooked.records
        ]
        assert [record.validation_loss for record in bare.records] == [
            record.validation_loss for record in hooked.records
        ]

    def test_early_stopping_state_reaches_hooks(self, tiny_setup):
        hooks = _RecordingHooks()
        trainer = _fresh_trainer(tiny_setup)
        # an impossible fluctuation threshold triggers at the first window
        trainer.train(
            epochs=8,
            early_stopping_threshold=1e9,
            early_stopping_window=2,
            hooks=hooks,
        )
        epoch_ends = [call for call in hooks.calls if call[0] == "epoch_end"]
        assert epoch_ends[-1][2]["triggered"] is True
        assert epoch_ends[-1][2]["fluctuation"] is not None
        assert hooks.calls[-1][0] == "train_end"  # still closed out

    def test_telemetry_hooks_emit_jsonl(self, tiny_setup, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonEventLog(path) as log:
            trainer = _fresh_trainer(tiny_setup)
            trainer.train(
                epochs=2,
                early_stopping_threshold=None,
                hooks=TelemetryHooks(log),
            )
        events = list(read_events(path))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "train_begin"
        assert kinds[-1] == "train_end"
        assert kinds.count("epoch") == 2
        assert "batch" in kinds
        epoch = next(event for event in events if event["event"] == "epoch")
        assert epoch["tokens"] > 0 and epoch["tokens_per_second"] > 0
        assert epoch["grad_norm"] is not None
        assert "early_stopping" in epoch
        end = events[-1]
        assert end["epochs"] == 2 and end["stopped_early"] is False

    def test_per_batch_false_keeps_only_run_events(self, tiny_setup, tmp_path):
        path = tmp_path / "quiet.jsonl"
        with JsonEventLog(path) as log:
            _fresh_trainer(tiny_setup).train(
                epochs=1,
                early_stopping_threshold=None,
                hooks=TelemetryHooks(log, per_batch=False),
            )
        kinds = [event["event"] for event in read_events(path)]
        assert "batch" not in kinds
        assert kinds == ["train_begin", "epoch", "train_end"]


class TestTrainCliTelemetry:
    def test_cli_persists_telemetry_and_phase_trace(self, tmp_path, capsys):
        from repro.nlg.train import main

        telemetry_path = tmp_path / "telemetry.jsonl"
        main(
            [
                "--workload", "dblp",
                "--queries", "3",
                "--epochs", "2",
                "--hidden-dim", "24",
                "--attention-dim", "12",
                "--telemetry", str(telemetry_path),
                "--out", str(tmp_path / "ckpt"),
            ]
        )
        events = list(read_events(telemetry_path))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "train_begin"
        assert kinds.count("epoch") == 2
        assert kinds[-1] == "trace"  # phase timings close the stream
        trace = events[-1]
        assert trace["name"] == "nlg.train"
        child_names = [child["name"] for child in trace["children"]]
        assert {"build_workload", "build_dataset", "train", "save"} <= set(child_names)
        save = next(child for child in trace["children"] if child["name"] == "save")
        assert save["children"][0]["name"] == "checkpoint.save"
        printed = capsys.readouterr().out
        assert "phase timings:" in printed
        assert "nlg.train" in printed

    def test_no_batch_telemetry_flag(self, tmp_path):
        from repro.nlg.train import main

        telemetry_path = tmp_path / "telemetry.jsonl"
        main(
            [
                "--workload", "dblp",
                "--queries", "3",
                "--epochs", "1",
                "--hidden-dim", "24",
                "--attention-dim", "12",
                "--telemetry", str(telemetry_path),
                "--no-batch-telemetry",
                "--out", str(tmp_path / "ckpt"),
            ]
        )
        kinds = [event["event"] for event in read_events(telemetry_path)]
        assert "batch" not in kinds
        assert "epoch" in kinds and "trace" in kinds


class TestCheckpointPhaseSpans:
    def test_load_and_save_report_phases(self, tmp_path):
        """checkpoint save/load publish manifest/weights/restore spans
        through the default tracer wherever the caller's trace is rooted."""
        import numpy as np

        from repro.nlg.persistence import load_qep2seq, save_qep2seq
        from repro.nlg.seq2seq import QEP2Seq, Seq2SeqConfig
        from repro.nlg.vocab import Vocabulary
        from repro.obs import default_tracer

        vocabulary = Vocabulary(["join", "scan"])
        model = QEP2Seq(vocabulary, vocabulary, Seq2SeqConfig(hidden_dim=8, attention_dim=4, seed=3))
        tracer = default_tracer()

        with tracer.trace("save_root"):
            save_qep2seq(model, tmp_path / "ckpt")
        save_trace = tracer.last_trace()
        save_span = save_trace["children"][0]
        assert save_span["name"] == "checkpoint.save"
        assert {child["name"] for child in save_span["children"]} == {"weights", "manifest"}

        with tracer.trace("load_root"):
            restored = load_qep2seq(tmp_path / "ckpt")
        load_trace = tracer.last_trace()
        load_span = load_trace["children"][0]
        assert load_span["name"] == "checkpoint.load"
        assert [child["name"] for child in load_span["children"]] == ["manifest", "restore"]
        for restored_parameter, original_parameter in zip(
            restored.parameters(), model.parameters()
        ):
            np.testing.assert_array_equal(
                restored_parameter.value, original_parameter.value
            )
