"""Unit tests for catalog, heap storage, and index data structures."""

import pytest

from repro.errors import CatalogError, ExecutionError
from repro.sqlengine import Database, DataType
from repro.sqlengine.schema import Catalog, Column, Index, TableSchema
from repro.sqlengine.storage import BTreeIndexData, HashIndexData, HeapTable, StorageManager


def make_schema():
    return TableSchema(
        name="t",
        columns=[Column("id", DataType.INTEGER), Column("name", DataType.TEXT),
                 Column("score", DataType.FLOAT)],
        primary_key=("id",),
    )


class TestCatalog:
    def test_add_and_lookup_table(self):
        catalog = Catalog()
        catalog.add_table(make_schema())
        assert catalog.has_table("T")
        assert catalog.table("t").column("name").data_type is DataType.TEXT

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.add_table(make_schema())
        with pytest.raises(CatalogError):
            catalog.add_table(make_schema())

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("missing")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("x", [Column("a", DataType.INTEGER), Column("a", DataType.TEXT)])

    def test_primary_key_must_exist(self):
        with pytest.raises(CatalogError):
            TableSchema("x", [Column("a", DataType.INTEGER)], primary_key=("b",))

    def test_index_validation(self):
        catalog = Catalog()
        catalog.add_table(make_schema())
        catalog.add_index(Index("idx_t_id", "t", ("id",)))
        assert catalog.indexes_for("t")[0].leading_column == "id"
        with pytest.raises(CatalogError):
            catalog.add_index(Index("idx_bad", "t", ("missing",)))

    def test_invalid_index_kind_rejected(self):
        with pytest.raises(CatalogError):
            Index("idx", "t", ("id",), kind="rtree")

    def test_resolve_column_ambiguity(self):
        catalog = Catalog()
        catalog.add_table(make_schema())
        catalog.add_table(TableSchema("u", [Column("id", DataType.INTEGER)]))
        with pytest.raises(CatalogError):
            catalog.resolve_column("id", ["t", "u"])
        table, column = catalog.resolve_column("name", ["t", "u"])
        assert table == "t" and column.name == "name"

    def test_drop_table_removes_indexes(self):
        catalog = Catalog()
        catalog.add_table(make_schema())
        catalog.add_index(Index("idx_t_id", "t", ("id",)))
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        assert not catalog.has_index("idx_t_id")


class TestHeapTable:
    def test_insert_and_scan(self):
        table = HeapTable(make_schema())
        table.insert((1, "a", 1.5))
        table.insert({"id": 2, "name": "b", "score": 2.5})
        assert table.row_count == 2
        assert list(table.column_values("name")) == ["a", "b"]

    def test_insert_wrong_arity_raises(self):
        table = HeapTable(make_schema())
        with pytest.raises(ExecutionError):
            table.insert((1, "a"))

    def test_type_coercion_on_insert(self):
        table = HeapTable(make_schema())
        table.insert(("7", 123, "9.5"))
        row = table.fetch(0)
        assert row == (7, "123", 9.5)

    def test_as_dicts_uses_binding_prefix(self):
        table = HeapTable(make_schema())
        table.insert((1, "a", 1.0))
        row = next(table.as_dicts("x"))
        assert set(row) == {"x.id", "x.name", "x.score"}

    def test_page_count_grows_with_rows(self):
        table = HeapTable(make_schema())
        small = table.page_count
        table.insert_many((i, "n", 0.5) for i in range(5000))
        assert table.page_count > small


class TestIndexes:
    def _table(self):
        table = HeapTable(make_schema())
        table.insert_many((i, f"name{i}", float(i % 7)) for i in range(100))
        return table

    def test_hash_index_lookup(self):
        index = Index("idx", "t", ("id",), kind="hash")
        data = HashIndexData(index, self._table())
        assert data.lookup(42) == [42]
        assert data.lookup(-1) == []
        assert data.distinct_keys == 100

    def test_btree_range_lookup(self):
        index = Index("idx", "t", ("id",))
        data = BTreeIndexData(index, self._table())
        assert data.range_lookup(10, 14) == [10, 11, 12, 13, 14]
        assert data.range_lookup(95, None) == [95, 96, 97, 98, 99]
        assert data.range_lookup(None, 2) == [0, 1, 2]
        assert data.range_lookup(10, 12, low_inclusive=False, high_inclusive=False) == [11]
        assert data.lookup(7) == [7]

    def test_storage_manager_rebuilds_dirty_indexes(self):
        manager = StorageManager()
        schema = make_schema()
        table = manager.create_table(schema)
        manager.register_index(Index("idx", "t", ("id",)))
        table.insert((1, "a", 0.0))
        manager.mark_dirty("t")
        assert manager.index_data("idx").lookup(1) == [0]
        table.insert((2, "b", 0.0))
        manager.mark_dirty("t")
        assert manager.index_data("idx").lookup(2) == [1]


class TestDatabaseFacade:
    def test_create_insert_analyze_roundtrip(self):
        db = Database("x")
        db.create_table("t", [("id", DataType.INTEGER), ("v", DataType.TEXT)])
        assert db.insert("t", [(1, "a"), (2, "b")]) == 2
        db.analyze()
        assert db.statistics("t").row_count == 2
        assert db.row_count("t") == 2

    def test_insert_into_missing_table_raises(self):
        with pytest.raises(CatalogError):
            Database("x").insert("nope", [(1,)])

    def test_explain_unknown_format_raises(self, toy_db):
        with pytest.raises(ValueError):
            toy_db.explain("SELECT id FROM users", output_format="yaml")

    def test_drop_table(self):
        db = Database("x")
        db.create_table("t", [("id", DataType.INTEGER)])
        db.drop_table("t")
        assert not db.catalog.has_table("t")
