"""LANTERN-ZERO compiled narration cache: offline pre-decode, zero-matmul serving.

``python -m repro.nlg.compile`` walks a workload through the *live* neural
narration path and freezes the ranked beam candidates into a sorted-key
file.  Contracts: a mounted compiled cache serves those signatures without
touching the model (zero matmuls), the served text is token-identical to a
live decode, beam/precision mismatches fall through to live decoding, and
the file round-trips across processes.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import Lantern, LanternConfig
from repro.errors import NLGError
from repro.nlg.cache import (
    DEFAULT_PRECISION,
    CompiledCache,
    DecodeCache,
    make_key,
)
from repro.nlg.compile import compile_plans
from repro.nlg.neural_lantern import NeuralLantern

SQLS = [
    "SELECT count(*) FROM publication p WHERE p.year > 2005",
    "SELECT p.venue_key FROM publication p WHERE p.year > 1999 ORDER BY p.venue_key",
    (
        "SELECT i.venue, count(*) AS n FROM inproceedings i, publication p "
        "WHERE i.paper_key = p.pub_key GROUP BY i.venue"
    ),
]

ENTRIES = [
    (["scan", "<T>"], [["read", "<T>", "rows"], ["scan", "<T>"]]),
    (["join", "<T>", "<TN>"], [["join", "them"]]),
    (["sort", "<A>"], [["order", "by", "<A>"]]),
]


class TestCompiledCacheUnit:
    def test_lookup_and_misses(self):
        cache = CompiledCache(ENTRIES, beam_size=2, precision=DEFAULT_PRECISION)
        assert len(cache) == 3
        hit = cache.lookup(make_key(["scan", "<T>"], 2))
        assert hit == [["read", "<T>", "rows"], ["scan", "<T>"]]
        assert cache.lookup(make_key(["scan", "<T>", "x"], 2)) is None
        # beam / precision mismatches miss instead of serving foreign decodes
        assert cache.lookup(make_key(["scan", "<T>"], 3)) is None
        assert cache.lookup(make_key(["scan", "<T>"], 2, "float64:int8")) is None
        assert make_key(["join", "<T>", "<TN>"], 2) in cache

    def test_lookup_returns_shared_read_only_snapshot(self):
        """Hits cost the binary search alone: every lookup hands back the
        same prebuilt snapshot (the tier is mounted read-only — callers
        never mutate candidate lists)."""
        cache = CompiledCache(ENTRIES, beam_size=2)
        key = make_key(["scan", "<T>"], 2)
        assert cache.lookup(key) is cache.lookup(key)
        assert cache.lookup(key) == [["read", "<T>", "rows"], ["scan", "<T>"]]

    def test_file_round_trip(self, tmp_path):
        cache = CompiledCache(ENTRIES, beam_size=2, precision="float64:int8")
        path = tmp_path / "compiled.json"
        cache.save(path)
        loaded = CompiledCache.load(path)
        assert loaded.beam_size == 2
        assert loaded.precision == "float64:int8"
        assert len(loaded) == len(cache)
        for tokens, candidates in ENTRIES:
            key = make_key(tokens, 2, "float64:int8")
            assert loaded.lookup(key) == cache.lookup(key)

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({"format": "something-else"}, "not a compiled"),
            ({"format": "lantern-compiled-cache", "version": 99}, "version"),
            (
                {"format": "lantern-compiled-cache", "version": 1, "entries": [[1]]},
                "malformed",
            ),
            ("not even a dict", "not a compiled"),
        ],
    )
    def test_malformed_payloads_are_structured_errors(self, payload, match):
        with pytest.raises(NLGError, match=match):
            CompiledCache.from_payload(payload)


class TestDecodeCacheMount:
    def test_fallthrough_and_counters(self):
        cache = DecodeCache(max_size=4)
        compiled = CompiledCache(ENTRIES, beam_size=2)
        cache.mount_compiled(compiled)
        key = make_key(["scan", "<T>"], 2)
        assert cache.get(key) == [["read", "<T>", "rows"], ["scan", "<T>"]]
        assert cache.hits == 1 and cache.compiled_hits == 1
        # compiled hits are NOT promoted into the LRU tier
        assert len(cache) == 0
        assert cache.get(make_key(["unknown"], 2)) is None
        assert cache.misses == 1
        stats = cache.stats()
        assert stats["compiled_hits"] == 1 and stats["compiled_size"] == 3

    def test_lru_shadows_compiled(self):
        """A dynamic LRU entry for the same key wins (it is newer)."""
        cache = DecodeCache(max_size=4)
        cache.mount_compiled(CompiledCache(ENTRIES, beam_size=2))
        key = make_key(["scan", "<T>"], 2)
        cache.put(key, [["fresher", "decode"]])
        assert cache.get(key) == [["fresher", "decode"]]
        assert cache.compiled_hits == 0

    def test_clear_preserves_compiled_tier(self):
        cache = DecodeCache(max_size=4)
        cache.mount_compiled(CompiledCache(ENTRIES, beam_size=2))
        cache.put(make_key(["dynamic"], 2), [["x"]])
        cache.clear()
        assert len(cache) == 0
        assert cache.compiled is not None
        assert cache.get(make_key(["scan", "<T>"], 2)) is not None

    def test_unmount(self):
        cache = DecodeCache(max_size=4)
        cache.mount_compiled(CompiledCache(ENTRIES, beam_size=2))
        cache.unmount_compiled()
        assert cache.get(make_key(["scan", "<T>"], 2)) is None
        assert "compiled_hits" not in cache.stats()


@pytest.fixture()
def facade(trained_neural):
    return Lantern(
        neural=NeuralLantern(trained_neural.model, beam_size=2),
        config=LanternConfig(seed=None),
    )


class TestCompilePlans:
    def test_compile_covers_workload_and_restores_state(self, facade, dblp_db):
        trees = [facade.plan_for_sql(dblp_db, sql) for sql in SQLS]
        neural = facade.neural
        before_entries = neural.decode_cache.export_entries()
        before_exposure = dict(neural._act_exposure)

        compiled = compile_plans(facade, trees)
        assert len(compiled) > 0
        assert compiled.beam_size == 2
        assert compiled.precision == neural.model.precision
        # compiling leaves the lantern exactly as it found it
        assert neural.decode_cache.export_entries() == before_entries
        assert neural._act_exposure == before_exposure

    def test_compiled_serving_is_token_identical_and_decode_free(
        self, facade, dblp_db, trained_neural, monkeypatch
    ):
        trees = [facade.plan_for_sql(dblp_db, sql) for sql in SQLS]
        compiled = compile_plans(facade, trees)
        # live (uncached) narrations from a parallel fresh facade
        live = Lantern(
            neural=NeuralLantern(trained_neural.model, beam_size=2),
            config=LanternConfig(seed=None),
        )
        expected = [live.describe_plan(tree, mode="neural").text for tree in trees]

        served = Lantern(
            neural=NeuralLantern(trained_neural.model, beam_size=2),
            config=LanternConfig(seed=None),
        )
        served.neural.decode_cache.mount_compiled(compiled)

        def _no_decodes(*args, **kwargs):  # pragma: no cover - should not run
            raise AssertionError("compiled-cache serving must not decode")

        monkeypatch.setattr(trained_neural.model, "beam_decode_batch", _no_decodes)
        monkeypatch.setattr(trained_neural.model, "beam_decode_candidates", _no_decodes)
        actual = [served.describe_plan(tree, mode="neural").text for tree in trees]
        assert actual == expected
        assert served.neural.decode_cache.compiled_hits > 0

    def test_precision_mismatch_falls_through_to_live_decode(
        self, facade, dblp_db, trained_neural
    ):
        trees = [facade.plan_for_sql(dblp_db, SQLS[0])]
        compiled = compile_plans(facade, trees)
        served = Lantern(
            neural=NeuralLantern(trained_neural.model, beam_size=2),
            config=LanternConfig(seed=None),
        )
        served.neural.decode_cache.mount_compiled(compiled)
        trained_neural.model.quantize("int8")
        try:
            narration = served.describe_plan(trees[0], mode="neural")
        finally:
            trained_neural.model.dequantize()
        assert narration.text
        assert served.neural.decode_cache.compiled_hits == 0  # wrong precision
        assert served.neural.decode_cache.misses > 0

    def test_rule_only_lantern_refused(self):
        with pytest.raises(NLGError, match="no neural generator"):
            compile_plans(Lantern(config=LanternConfig(seed=None)), [])


class TestCompiledCacheCrossProcess:
    def test_cli_compile_then_serve_parity(self, facade, dblp_db, tmp_path):
        """The full LANTERN-ZERO loop: checkpoint → compile CLI in a fresh
        process → mount the file here → narrations match live decoding."""
        trees = [facade.plan_for_sql(dblp_db, sql) for sql in SQLS]
        checkpoint = tmp_path / "ckpt"
        facade.save(checkpoint, include_cache=False, weights_layout="mmap")
        # narrated AFTER the save (the --parity-sample convention): the
        # checkpoint's exposure state is the starting point for exactly
        # these narrations
        expected = [facade.describe_plan(tree, mode="neural").text for tree in trees]
        compiled_path = tmp_path / "workload.cache.json"

        source_root = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(source_root) + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro.nlg.compile",
                "--checkpoint", str(checkpoint),
                "--workload", "dblp",
                "--queries", "3",
                "--seed", "9",
                "--out", str(compiled_path),
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "compiled" in completed.stdout

        compiled = CompiledCache.load(compiled_path)
        assert len(compiled) > 0
        # the file was compiled in another process from the same checkpoint:
        # every signature it knows must hold exactly the candidates this
        # process would decode live
        model = facade.neural.model
        for tokens, candidates in zip(compiled._keys, compiled._values):
            live = model.beam_decode_candidates(list(tokens), beam_size=compiled.beam_size)
            assert [list(c) for c in candidates] == live

        # and a facade serving from the file narrates the plans identically
        served = Lantern.load(checkpoint)
        served.neural.decode_cache.mount_compiled(compiled)
        actual = [served.describe_plan(tree, mode="neural").text for tree in trees]
        assert actual == expected
        assert served.neural.decode_cache.compiled_hits > 0


class TestLegacyCacheEntries:
    def test_three_element_checkpoint_entries_get_model_precision(
        self, trained_neural, tmp_path
    ):
        """Checkpoints written before precision-aware keys store 3-element
        cache entries; they load under the model's current precision tag."""
        neural = NeuralLantern(trained_neural.model, beam_size=2)
        source = trained_neural.dataset.samples[0].source_tokens
        neural._ranked_candidates(source, 2)
        target = neural.save(tmp_path / "legacy")

        from repro.nlg.persistence import MANIFEST_FILE

        manifest = json.loads((target / MANIFEST_FILE).read_text())
        entries = manifest["neural"]["cache"]["entries"]
        manifest["neural"]["cache"]["entries"] = [
            [tokens, beam, candidates] for tokens, beam, _, candidates in entries
        ]
        (target / MANIFEST_FILE).write_text(json.dumps(manifest))

        loaded = NeuralLantern.load(target)
        [(key, _)] = loaded.decode_cache.export_entries()
        assert key == make_key(source, 2, loaded.model.precision)
        # and the entry is actually served
        assert loaded.decode_cache.get(key) is not None
