"""Tests for the POEM model, the POOL parser/interpreter, and the default catalogs."""

import pytest

from repro.errors import PoolSemanticError, PoolSyntaxError
from repro.pool import PoolSession, build_default_store, normalize_operator_name
from repro.pool.ast_nodes import ComposeStatement, CreateOperatorStatement, PoolSelectStatement, UpdateStatement
from repro.pool.catalogs import postgresql_operator_definitions, sqlserver_operator_definitions
from repro.pool.parser import parse_pool, parse_pool_script
from repro.pool.poem import PoemStore, compose_pair_template, operator_template


class TestPoemStore:
    def test_normalize_operator_name(self):
        assert normalize_operator_name("Hash Join") == "hashjoin"
        assert normalize_operator_name("Hash Match (Aggregate)") == "hashmatchaggregate"
        assert normalize_operator_name("nested-loop") == "nestedloop"

    def test_create_and_get(self):
        store = PoemStore()
        store.create("pg", "Hash Join", operator_type="binary", descriptions=["perform hash join on"], cond=True)
        obj = store.get("pg", "hashjoin")
        assert obj.operator_type == "binary"
        assert obj.cond
        assert obj.display_name == "hashjoin"

    def test_duplicate_create_rejected(self):
        store = PoemStore()
        store.create("pg", "sort")
        with pytest.raises(PoolSemanticError):
            store.create("pg", "Sort")

    def test_invalid_type_rejected(self):
        store = PoemStore()
        with pytest.raises(PoolSemanticError):
            store.create("pg", "x", operator_type="ternary")

    def test_multi_target_auxiliary(self):
        store = PoemStore()
        store.create("pg", "mergejoin", operator_type="binary", cond=True)
        store.create("pg", "groupaggregate")
        store.create("pg", "sort", target="mergejoin,groupaggregate", descriptions=["sort"])
        assert store.get("pg", "sort").targets == ["mergejoin", "groupaggregate"]
        pairs = store.auxiliary_pairs("pg")
        assert {(aux.name, crit.name) for aux, crit in pairs} == {
            ("sort", "mergejoin"), ("sort", "groupaggregate")
        }

    def test_update_attributes(self):
        store = PoemStore()
        store.create("pg", "seqscan", descriptions=["perform sequential scan on"])
        store.update("pg", "seqscan", alias="sequential scan", defn="reads all rows")
        obj = store.get("pg", "seqscan")
        assert obj.alias == "sequential scan"
        store.update("pg", "seqscan", add_desc="scan every row of")
        assert len(obj.descriptions) == 2

    def test_update_unknown_attribute_rejected(self):
        store = PoemStore()
        store.create("pg", "seqscan")
        with pytest.raises(PoolSemanticError):
            store.update("pg", "seqscan", nonsense="x")

    def test_to_relations_schema(self):
        store = build_default_store()
        poperators, pdesc = store.to_relations()
        assert {"oid", "source", "name", "alias", "type", "defn", "cond", "targetid"} == set(poperators[0])
        assert {"oid", "desc"} == set(pdesc[0])
        assert len(pdesc) >= len(poperators)


class TestTemplates:
    def test_unary_template(self):
        store = PoemStore()
        obj = store.create("pg", "hash", descriptions=["hash"])
        assert operator_template(obj) == "hash $R1$"

    def test_binary_template_with_condition(self):
        store = PoemStore()
        obj = store.create("pg", "hashjoin", operator_type="binary",
                           descriptions=["perform hash join on"], cond=True)
        assert operator_template(obj) == "perform hash join on $R2$ and $R1$ on condition $cond$"

    def test_pair_composition_matches_paper_example(self):
        store = build_default_store()
        template = compose_pair_template(
            store.get("pg", "hash"), store.get("pg", "hashjoin"),
            critical_description="perform hash join on", auxiliary_description="hash",
        )
        assert template == "hash $R1$ and perform hash join on $R2$ and $R1$ on condition $cond$"

    def test_pair_composition_rejects_non_pair(self):
        store = build_default_store()
        with pytest.raises(PoolSemanticError):
            compose_pair_template(store.get("pg", "seqscan"), store.get("pg", "hashjoin"))


class TestPoolParser:
    def test_parse_create(self):
        statement = parse_pool(
            "CREATE POPERATOR zzjoin FOR db2 (ALIAS = 'zigzag join', TYPE = 'binary', "
            "DEFN = null, DESC = 'perform zigzag join on', COND = 'true', TARGET = null)"
        )
        assert isinstance(statement, CreateOperatorStatement)
        assert statement.source == "db2"
        assert statement.attributes["alias"] == "zigzag join"
        assert statement.attributes["defn"] is None

    def test_parse_create_with_multiple_desc(self):
        statement = parse_pool(
            "CREATE POPERATOR hj FOR pg (TYPE = 'binary', DESC = 'perform hash join on', "
            "DESC = 'execute hash join on', COND = 'true')"
        )
        descriptions = [v for k, v in statement.attributes.items() if k.startswith("desc") and v]
        assert len(descriptions) == 2

    def test_parse_select(self):
        statement = parse_pool("SELECT defn FROM pg WHERE name = 'zzjoin'")
        assert isinstance(statement, PoolSelectStatement)
        assert statement.attributes == ["defn"]
        assert statement.source == "pg"

    def test_parse_select_star_like(self):
        statement = parse_pool("SELECT * FROM pg WHERE name LIKE '%join'")
        assert statement.select_all

    def test_parse_compose_with_using(self):
        statement = parse_pool("COMPOSE hash, hashjoin FROM pg USING hashjoin.desc = 'perform hash join on'")
        assert isinstance(statement, ComposeStatement)
        assert statement.operator_names == ["hash", "hashjoin"]
        assert statement.using == {"hashjoin": "perform hash join on"}

    def test_parse_compose_too_many_names(self):
        with pytest.raises(PoolSyntaxError):
            parse_pool("COMPOSE a, b, c FROM pg")

    def test_parse_update_with_replace_and_subquery(self):
        statement = parse_pool(
            "UPDATE pg SET desc = REPLACE((SELECT desc FROM pg AS pg2 WHERE pg2.name = 'hashjoin'), "
            "'hash', 'nested loop') WHERE pg.name = 'nestedloop'"
        )
        assert isinstance(statement, UpdateStatement)
        assert "desc" in statement.assignments
        assert statement.assignments["desc"].replace is not None

    def test_parse_script_multiple_statements(self):
        statements = parse_pool_script(
            "SELECT defn FROM pg WHERE name = 'sort'; COMPOSE sort FROM pg;"
        )
        assert len(statements) == 2

    def test_unknown_statement_rejected(self):
        with pytest.raises(PoolSyntaxError):
            parse_pool("DELETE FROM pg")

    def test_unknown_attribute_in_create_rejected(self):
        with pytest.raises(PoolSyntaxError):
            parse_pool("CREATE POPERATOR x FOR pg (COLOR = 'red')")


class TestPoolSession:
    @pytest.fixture()
    def session(self):
        return PoolSession(build_default_store())

    def test_select_single_attribute(self, session):
        rows = session.execute("SELECT defn FROM pg WHERE name = 'hashjoin'")
        assert len(rows) == 1 and "hash" in rows[0]["defn"]

    def test_select_star_returns_objects(self, session):
        objects = session.execute("SELECT * FROM pg WHERE name LIKE '%join'")
        names = {obj.name for obj in objects}
        assert names == {"hashjoin", "mergejoin"}

    def test_select_desc_joins_pdesc(self, session):
        rows = session.execute("SELECT desc FROM pg WHERE name = 'seqscan'")
        assert {row["desc"] for row in rows} == {"perform sequential scan on", "scan every row of"}

    def test_compiled_sql_targets_backing_relations(self, session):
        sql = session.compiled_sql("SELECT defn FROM pg WHERE name = 'zzjoin'")
        assert "poperators" in sql and "p.source = 'pg'" in sql

    def test_compose_single_and_pair(self, session):
        assert session.execute("COMPOSE hash FROM pg") == "hash $R1$"
        composed = session.execute(
            "COMPOSE hash, hashjoin FROM pg USING hashjoin.desc = 'perform hash join on'"
        )
        assert composed == "hash $R1$ and perform hash join on $R2$ and $R1$ on condition $cond$"

    def test_create_then_select(self, session):
        session.execute(
            "CREATE POPERATOR zzjoin FOR db2 (ALIAS = 'zigzag join', TYPE = 'binary', "
            "DESC = 'perform zigzag join on', COND = 'true')"
        )
        rows = session.execute("SELECT alias FROM db2 WHERE name = 'zzjoin'")
        assert rows[0]["alias"] == "zigzag join"

    def test_cross_engine_transfer(self, session):
        session.execute(
            "CREATE POPERATOR hsjoin FOR db2 (TYPE = 'binary', DESC = 'join', COND = 'true')"
        )
        session.execute(
            "UPDATE db2 SET defn = (SELECT defn FROM pg WHERE pg.name = 'hashjoin') "
            "WHERE db2.name = 'hsjoin'"
        )
        assert "hash" in session.store.get("db2", "hsjoin").defn

    def test_replace_transfer_within_engine(self, session):
        session.execute(
            "UPDATE pg SET desc = REPLACE((SELECT desc FROM pg AS pg2 WHERE pg2.name = 'mergejoin'), "
            "'merge', 'nested loop') WHERE pg.name = 'nestedloop'"
        )
        assert session.store.get("pg", "nestedloop").description == "perform nested loop join on"

    def test_update_unknown_attribute_rejected(self, session):
        with pytest.raises(PoolSemanticError):
            session.execute("UPDATE pg SET oid = 'x' WHERE name = 'sort'")

    def test_select_unknown_attribute_rejected(self, session):
        with pytest.raises(PoolSemanticError):
            session.execute("SELECT colour FROM pg WHERE name = 'sort'")


class TestDefaultCatalogs:
    def test_both_engines_populated(self):
        store = build_default_store()
        assert set(store.sources()) == {"pg", "mssql"}
        assert len(list(store.objects("pg"))) == len(postgresql_operator_definitions())
        assert len(list(store.objects("mssql"))) == len(sqlserver_operator_definitions())

    def test_every_definition_has_description(self):
        for definition in postgresql_operator_definitions() + sqlserver_operator_definitions():
            assert definition["descriptions"], definition["name"]

    def test_join_operators_are_binary_with_condition(self):
        store = build_default_store()
        for name in ("hashjoin", "mergejoin", "nestedloop"):
            obj = store.get("pg", name)
            assert obj.operator_type == "binary" and obj.cond

    def test_auxiliary_pairs_cover_hash_and_sort(self):
        store = build_default_store()
        pairs = {(aux.name, crit.name) for aux, crit in store.auxiliary_pairs("pg")}
        assert ("hash", "hashjoin") in pairs
        assert ("sort", "mergejoin") in pairs
        assert ("materialize", "nestedloop") in pairs
