"""Batched beam-search parity and the act-signature decode cache.

The contract under test: the fused decoders (`beam_decode_candidates`,
`beam_decode_batch`) must produce token-for-token the same output as the
unbatched reference path (`beam_decode_candidates_sequential`) at a fixed
seed, and caching must preserve the exposure-based cycling through ranked
beam alternatives.
"""

import numpy as np
import pytest

from repro.core.acts import Act
from repro.core.narration import NarrationStep
from repro.nlg.cache import DecodeCache, make_key
from repro.nlg.neural_lantern import NeuralLantern
from repro.nlg.seq2seq import QEP2Seq, Seq2SeqConfig
from repro.nlg.vocab import Vocabulary


@pytest.fixture(scope="module")
def tiny_model() -> QEP2Seq:
    """A fixed-seed (untrained) model: decoding is still fully deterministic."""
    input_vocabulary = Vocabulary([f"op{i}" for i in range(10)] + ["<T>", "<F>", "<TN>"])
    output_vocabulary = Vocabulary([f"word{i}" for i in range(24)])
    return QEP2Seq(
        input_vocabulary,
        output_vocabulary,
        Seq2SeqConfig(hidden_dim=20, attention_dim=10, max_decode_length=14, seed=11),
    )


@pytest.fixture(scope="module")
def tiny_sources() -> list[list[str]]:
    rng = np.random.default_rng(29)
    sources = []
    for _ in range(7):
        length = int(rng.integers(2, 6))
        sources.append([f"op{int(rng.integers(0, 10))}" for _ in range(length)] + ["<TN>"])
    return sources


class TestBatchedBeamParity:
    @pytest.mark.parametrize("beam_size", [1, 4])
    def test_single_act_matches_sequential(self, tiny_model, tiny_sources, beam_size):
        for source in tiny_sources:
            sequential = tiny_model.beam_decode_candidates_sequential(source, beam_size=beam_size)
            batched = tiny_model.beam_decode_candidates(source, beam_size=beam_size)
            assert batched == sequential

    @pytest.mark.parametrize("beam_size", [1, 4])
    def test_plan_batch_matches_per_act_decode(self, tiny_model, tiny_sources, beam_size):
        batched = tiny_model.beam_decode_batch(tiny_sources, beam_size=beam_size)
        sequential = [
            tiny_model.beam_decode_candidates_sequential(source, beam_size=beam_size)
            for source in tiny_sources
        ]
        assert batched == sequential

    def test_greedy_decode_goes_through_batched_path(self, tiny_model, tiny_sources):
        for source in tiny_sources:
            assert (
                tiny_model.greedy_decode(source)
                == tiny_model.beam_decode_candidates_sequential(source, beam_size=1)[0]
            )

    def test_trained_model_parity(self, trained_neural):
        """Parity must also hold on a genuinely trained model (realistic logits)."""
        samples = trained_neural.dataset.validation_samples[:6]
        sources = [sample.source_tokens for sample in samples]
        batched = trained_neural.model.beam_decode_batch(sources, beam_size=4)
        for source, candidates in zip(sources, batched):
            assert candidates == trained_neural.model.beam_decode_candidates_sequential(
                source, beam_size=4
            )

    def test_empty_batch(self, tiny_model):
        assert tiny_model.beam_decode_batch([]) == []


class TestDecodeCache:
    def test_lru_eviction_and_counters(self):
        cache = DecodeCache(max_size=2)
        key_a, key_b, key_c = (("a",), 2), (("b",), 2), (("c",), 2)
        assert cache.get(key_a) is None
        cache.put(key_a, [["x"]])
        cache.put(key_b, [["y"]])
        assert cache.get(key_a) == [["x"]]  # refreshes a's LRU position
        cache.put(key_c, [["z"]])  # evicts b, the least recently used
        assert key_b not in cache
        assert cache.get(key_b) is None
        assert cache.get(key_a) == [["x"]]
        assert cache.get(key_c) == [["z"]]
        assert cache.hits == 3 and cache.misses == 2
        assert cache.stats()["hit_rate"] == pytest.approx(3 / 5)

    def test_disabled_cache_never_stores(self):
        cache = DecodeCache(max_size=8, enabled=False)
        cache.put((("a",), 1), [["x"]])
        assert len(cache) == 0
        assert cache.get((("a",), 1)) is None
        assert cache.misses == 1

    def test_hit_returns_fresh_lists(self):
        cache = DecodeCache()
        key = make_key(["a", "b"], 2)
        cache.put(key, [["x", "y"]])
        first = cache.get(key)
        first[0].append("mutated")
        assert cache.get(key) == [["x", "y"]]


def _act_and_step(index: int = 0) -> tuple[Act, NarrationStep]:
    act = Act(operators=["Seq Scan"], relations=["publication"], has_filter=True)
    step = NarrationStep(
        index=index,
        text="the publication table is scanned",
        operator_names=["Seq Scan"],
        relations=["publication"],
        filter_condition="year > 2010",
    )
    return act, step


class TestCachedGeneration:
    def test_cache_hit_preserves_candidate_cycling(self, tiny_model):
        """Repeated exposures must cycle through ranked beam alternatives
        even when every decode after the first is a cache hit."""
        lantern = NeuralLantern(tiny_model, beam_size=4)
        act, _ = _act_and_step()
        uncached = NeuralLantern(tiny_model, beam_size=4, cache_enabled=False)
        cycle_length = len(tiny_model.beam_decode_candidates(act.input_tokens(), beam_size=4))
        exposures = cycle_length + 2
        cached_outputs = [lantern.generate_abstracted(act) for _ in range(exposures)]
        uncached_outputs = [uncached.generate_abstracted(act) for _ in range(exposures)]
        assert cached_outputs == uncached_outputs
        if cycle_length > 1:
            assert len(set(cached_outputs)) > 1  # wording actually varies
        assert cached_outputs[0] == cached_outputs[cycle_length]  # and cycles
        assert lantern.decode_cache.misses == 1
        assert lantern.decode_cache.hits == exposures - 1

    def test_translate_steps_matches_per_step_hook(self, tiny_model):
        acts_steps = [_act_and_step(i) for i in range(4)]
        acts = [act for act, _ in acts_steps]
        steps = [step for _, step in acts_steps]
        batched_lantern = NeuralLantern(tiny_model, beam_size=3)
        looped_lantern = NeuralLantern(tiny_model, beam_size=3)
        batched = batched_lantern.translate_steps(acts, steps)
        looped = [looped_lantern.translate_step(act, step) for act, step in acts_steps]
        assert batched == looped
        # four identical act signatures: every lookup missed the (empty)
        # cache, but in-plan dedup means only ONE signature was decoded
        assert batched_lantern.decode_cache.misses == 4
        assert batched_lantern.decode_cache.hits == 0
        assert len(batched_lantern.decode_cache) == 1
        # a second identical plan is now served entirely from the cache
        batched_lantern.translate_steps(acts, steps)
        assert batched_lantern.decode_cache.hits == 4

    def test_lantern_config_cache_knobs_reach_the_generator(self, tiny_model, poem_store):
        from repro.core.lantern import Lantern, LanternConfig

        neural = NeuralLantern(tiny_model, beam_size=2)
        Lantern(
            store=poem_store,
            neural=neural,
            config=LanternConfig(decode_cache_size=3, decode_cache_enabled=False),
        )
        assert neural.decode_cache.max_size == 3
        assert not neural.decode_cache.enabled

    def test_describe_plan_batched_neural_output(self, dblp_db, poem_store, trained_neural):
        """End to end: MODE_NEURAL narration through the batched path equals
        the per-step hook narration (fresh exposure state on both sides)."""
        from repro.core.lantern import Lantern

        sql = (
            "SELECT i.venue, count(*) AS n FROM inproceedings i, publication p "
            "WHERE i.paper_key = p.pub_key GROUP BY i.venue"
        )
        # snapshot + restore the session fixture's mutable state so this
        # test never changes what later tests observe (order independence)
        exposure_before = dict(trained_neural._act_exposure)
        try:
            batched_facade = Lantern(store=poem_store, neural=trained_neural)
            tree = batched_facade.plan_for_sql(dblp_db, sql)
            trained_neural._act_exposure.clear()
            trained_neural.decode_cache.clear()
            batched = batched_facade.describe_plan(tree, mode="neural")

            trained_neural._act_exposure.clear()
            trained_neural.decode_cache.clear()
            from repro.core.acts import align_acts_with_narration, decompose_lot_into_acts

            rule = batched_facade.describe_plan(tree, mode="rule")
            acts = align_acts_with_narration(decompose_lot_into_acts(rule.lot), rule)
            looped = [
                trained_neural.translate_step(act, step)
                for act, step in zip(acts, rule.steps)
            ]
            assert [step.text for step in batched.steps] == looped
            assert all(step.generator == "neural" for step in batched.steps)
        finally:
            trained_neural.decode_cache.clear()
            trained_neural._act_exposure.clear()
            trained_neural._act_exposure.update(exposure_before)
