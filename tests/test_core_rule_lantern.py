"""Tests for the LANTERN core: tags, LOT, clustering, RULE-LANTERN, acts, presentation, facade."""

import pytest

from repro.core import Lantern, decompose_into_acts
from repro.core.acts import align_acts_with_narration, decompose_lot_into_acts
from repro.core.clustering import cluster, pair_for_critical
from repro.core.lot import build_lot
from repro.core.narration import NARRATION_LAYERS
from repro.core.presentation import render, render_annotated_tree, render_document
from repro.core.rule_lantern import RuleLantern
from repro.core.tags import SPECIAL_TAGS, abstract_step_text, contains_tags, restore_step_text
from repro.errors import NarrationError
from repro.plans import plan_from_database, parse_sqlserver_xml

DBLP_EXAMPLE = (
    "SELECT DISTINCT i.proceeding_key FROM inproceedings i, publication p "
    "WHERE i.paper_key = p.pub_key AND p.title LIKE '%July%' "
    "GROUP BY i.proceeding_key HAVING count(*) > 2"
)


class TestTags:
    def test_tag_table_matches_paper(self):
        assert set(SPECIAL_TAGS) == {"<I>", "<F>", "<C>", "<T>", "<TN>", "<A>", "<G>"}

    def test_abstract_and_restore_roundtrip(self):
        text = (
            "perform sequential scan on publication and filtering on (p.title like '%July%') "
            "to get the intermediate relation T1."
        )
        abstracted, mapping = abstract_step_text(
            text, relations=["publication"], filter_condition="(p.title like '%July%')"
        )
        assert "<T>" in abstracted and "<F>" in abstracted and "<TN>" in abstracted
        assert "publication" not in abstracted
        assert restore_step_text(abstracted, mapping) == text

    def test_longer_fragments_replaced_first(self):
        text = "perform hash join on orders and customer on condition (orders.o_custkey = customer.c_custkey)"
        abstracted, _ = abstract_step_text(
            text,
            relations=["orders", "customer"],
            join_condition="(orders.o_custkey = customer.c_custkey)",
        )
        assert abstracted.count("<T>") == 2
        assert "<C>" in abstracted

    def test_contains_tags(self):
        assert contains_tags("perform scan on <T>")
        assert not contains_tags("perform scan on users")

    def test_restore_reuses_last_value_when_decoder_repeats_tag(self):
        abstracted, mapping = abstract_step_text("sort T1.", relations=["T1"])
        assert restore_step_text("sort <T> and <T>.", mapping) == "sort T1 and T1."


class TestLotAndClustering:
    def test_lot_annotates_every_node(self, dblp_db, poem_store):
        tree = plan_from_database(dblp_db, DBLP_EXAMPLE)
        lot = build_lot(tree, poem_store, "pg")
        assert lot.node_count() == tree.node_count()
        for node in lot.walk():
            assert node.label
            assert node.name

    def test_unknown_operator_strict_mode(self, dblp_db, poem_store):
        tree = plan_from_database(dblp_db, "SELECT paper_key FROM inproceedings i")
        tree.root.name = "Quantum Scan"
        with pytest.raises(NarrationError):
            build_lot(tree, poem_store, "pg", strict=True)
        lenient = build_lot(tree, poem_store, "pg", strict=False)
        assert "Quantum Scan" in lenient.root.label or "Quantum Scan" in lenient.root.name

    def test_cluster_finds_hash_pair(self, dblp_db, poem_store):
        tree = plan_from_database(dblp_db, DBLP_EXAMPLE)
        lot = build_lot(tree, poem_store, "pg")
        pairs = cluster(lot)
        names = {(pair.auxiliary.operator_name, pair.critical.operator_name) for pair in pairs}
        assert ("Hash", "Hash Join") in names

    def test_clustered_aux_marked(self, dblp_db, poem_store):
        tree = plan_from_database(dblp_db, DBLP_EXAMPLE)
        lot = build_lot(tree, poem_store, "pg")
        pairs = cluster(lot)
        assert all(pair.auxiliary.is_auxiliary_member for pair in pairs)
        critical = pairs[0].critical
        assert pair_for_critical(pairs, critical) is pairs[0]


class TestRuleLantern:
    @pytest.fixture()
    def narration(self, dblp_db, poem_store):
        narrator = RuleLantern(poem_store, poem_source="pg", seed=None)
        tree = plan_from_database(dblp_db, DBLP_EXAMPLE)
        return narrator.narrate(tree), tree

    def test_step_per_non_auxiliary_node(self, narration):
        result, tree = narration
        auxiliary = sum(1 for name in tree.operator_names() if name in ("Hash", "Sort", "Materialize"))
        assert len(result.steps) == tree.node_count() - auxiliary

    def test_final_step_marks_final_results(self, narration):
        result, _ = narration
        assert result.steps[-1].is_final
        assert result.steps[-1].text.endswith("to get the final results.")
        assert all(not step.is_final for step in result.steps[:-1])

    def test_intermediate_identifiers_are_sequential_and_referenced(self, narration):
        result, _ = narration
        identifiers = [step.intermediate for step in result.steps if step.intermediate]
        assert identifiers == [f"T{i}" for i in range(1, len(identifiers) + 1)]
        # later steps must reference earlier intermediates
        assert any("T1" in step.text for step in result.steps[1:])

    def test_hash_join_step_composes_hash(self, narration):
        result, _ = narration
        join_step = next(step for step in result.steps if "hash join" in step.text)
        assert join_step.text.startswith("hash ")
        assert "on condition" in join_step.text
        assert join_step.join_condition

    def test_filter_appears_in_scan_step(self, narration):
        result, _ = narration
        scan_step = next(step for step in result.steps if "publication" in step.relations)
        assert "filtering on" in scan_step.text
        assert "July" in scan_step.text

    def test_unfiltered_scan_has_no_identifier(self, narration):
        result, _ = narration
        scan_step = next(step for step in result.steps if "inproceedings" in step.relations)
        assert scan_step.intermediate is None

    def test_having_filter_on_aggregate_step(self, narration):
        result, _ = narration
        aggregate_step = next(step for step in result.steps if step.group_keys)
        assert "grouping" in aggregate_step.text
        assert "count" in aggregate_step.text.lower()

    def test_describe_operator_definition(self, poem_store):
        narrator = RuleLantern(poem_store, "pg")
        text = narrator.describe_operator("Hash Join")
        assert "hash" in text.lower() and ":" in text
        with pytest.raises(NarrationError):
            narrator.describe_operator("Quantum Scan")

    def test_deterministic_with_seed(self, dblp_db, poem_store):
        tree = plan_from_database(dblp_db, DBLP_EXAMPLE)
        first = RuleLantern(poem_store, "pg", seed=3).narrate(tree).text
        second = RuleLantern(poem_store, "pg", seed=3).narrate(tree).text
        assert first == second

    def test_sqlserver_plans_narrated_via_mssql_catalog(self, sdss_db, poem_store):
        sql = "SELECT s.class, count(*) AS n FROM specobj s GROUP BY s.class"
        tree = parse_sqlserver_xml(sdss_db.explain(sql, output_format="xml"))
        narration = RuleLantern(poem_store, poem_source="mssql").narrate(tree)
        assert "table scan" in narration.text or "aggregate" in narration.text
        assert narration.steps[-1].is_final


class TestActs:
    def test_act_count_matches_steps(self, dblp_db, poem_store, lantern):
        tree = plan_from_database(dblp_db, DBLP_EXAMPLE)
        narration = lantern.describe_plan(tree)
        acts = decompose_into_acts(tree, poem_store, "pg")
        assert len(acts) == len(narration.steps)

    def test_cluster_act_contains_both_operators(self, dblp_db, poem_store):
        tree = plan_from_database(dblp_db, DBLP_EXAMPLE)
        acts = decompose_into_acts(tree, poem_store, "pg")
        join_act = next(act for act in acts if "hashjoin" in [o.lower().replace(" ", "") for o in act.operators])
        assert len(join_act.operators) == 2

    def test_input_tokens_are_tags_and_operators(self, dblp_db, poem_store):
        tree = plan_from_database(dblp_db, DBLP_EXAMPLE)
        acts = decompose_into_acts(tree, poem_store, "pg")
        for act in acts:
            tokens = act.input_tokens()
            assert tokens[0].isalnum()
            assert "<T>" in tokens

    def test_align_acts_with_narration(self, dblp_db, poem_store, lantern):
        tree = plan_from_database(dblp_db, DBLP_EXAMPLE)
        narration = lantern.describe_plan(tree)
        acts = align_acts_with_narration(decompose_lot_into_acts(narration.lot), narration)
        assert all(act.step is not None for act in acts)


class TestPresentationAndFacade:
    def test_document_rendering_numbers_steps(self, dblp_db, lantern):
        narration = lantern.describe_sql(dblp_db, DBLP_EXAMPLE)
        document = render_document(narration)
        assert document.count("Step ") == len(narration.steps)

    def test_annotated_tree_rendering(self, dblp_db, lantern):
        tree = lantern.plan_for_sql(dblp_db, DBLP_EXAMPLE)
        narration = lantern.describe_plan(tree)
        rendering = render_annotated_tree(tree, narration)
        assert "~" in rendering and "Hash Join" in rendering

    def test_render_unknown_mode_raises(self, dblp_db, lantern):
        narration = lantern.describe_sql(dblp_db, DBLP_EXAMPLE)
        with pytest.raises(ValueError):
            render(narration, mode="hologram")

    def test_narration_layers_documented(self):
        assert set(NARRATION_LAYERS) == {"factual", "intentional", "structural", "presentation"}

    def test_facade_tracks_operator_exposure(self, dblp_db, poem_store):
        facade = Lantern(store=poem_store)
        facade.describe_sql(dblp_db, "SELECT count(*) FROM publication p")
        facade.describe_sql(dblp_db, "SELECT count(*) FROM publication p WHERE p.year > 2010")
        assert facade.operator_exposure("Seq Scan") >= 2
        facade.reset_session()
        assert facade.operator_exposure("Seq Scan") == 0

    def test_facade_engine_selection(self, dblp_db, lantern):
        pg_narration = lantern.describe_sql(dblp_db, "SELECT count(*) FROM publication p", engine="postgresql")
        mssql_narration = lantern.describe_sql(dblp_db, "SELECT count(*) FROM publication p", engine="sqlserver")
        assert pg_narration.source == "postgresql"
        assert mssql_narration.source == "sqlserver"
        assert pg_narration.text != mssql_narration.text

    def test_facade_rejects_unknown_engine(self, dblp_db, lantern):
        with pytest.raises(NarrationError):
            lantern.plan_for_sql(dblp_db, "SELECT count(*) FROM publication p", engine="oracle")

    def test_parse_plan_formats(self, dblp_db, lantern):
        json_text = dblp_db.explain("SELECT count(*) FROM publication p", output_format="json")
        xml_text = dblp_db.explain("SELECT count(*) FROM publication p", output_format="xml")
        assert lantern.parse_plan(json_text, "postgres-json").source == "postgresql"
        assert lantern.parse_plan(xml_text, "sqlserver-xml").source == "sqlserver"
        with pytest.raises(NarrationError):
            lantern.parse_plan(json_text, "yaml")
