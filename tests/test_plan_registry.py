"""Plan-format auto-ingestion: the registry, the MySQL adapter, and the
batched multi-plan facade API.

Contracts under test: every supported serialization auto-detects and parses
to an equivalent operator tree; malformed payloads raise a structured
``PlanDetectionError`` naming the attempted formats; ``describe_plans``
produces token-identical narrations to sequential ``describe_plan`` calls;
and the rule-phase memo is transparent (same texts, fewer narrations).
"""

import json

import pytest

from repro.core import Lantern, LanternConfig
from repro.errors import PlanDetectionError, PlanFormatError
from repro.plans import (
    OperatorTree,
    PlanRegistry,
    default_registry,
    parse_mysql_json,
)
from repro.plans.registry import (
    FORMAT_MINI_ENGINE,
    FORMAT_MYSQL_JSON,
    FORMAT_OPERATOR_TREE,
    FORMAT_POSTGRES_JSON,
    FORMAT_SQLSERVER_XML,
    FORMAT_TREE_JSON,
    PlanFormat,
)

#: a hand-written document in real MySQL 8 ``EXPLAIN FORMAT=JSON`` shape
MYSQL_EXPLAIN = {
    "query_block": {
        "select_id": 1,
        "cost_info": {"query_cost": "212.40"},
        "ordering_operation": {
            "using_filesort": True,
            "grouping_operation": {
                "using_temporary_table": True,
                "nested_loop": [
                    {
                        "table": {
                            "table_name": "publication",
                            "access_type": "ALL",
                            "rows_examined_per_scan": 400,
                            "attached_condition": "(publication.year > 2005)",
                            "cost_info": {"read_cost": "40.00", "eval_cost": "8.00"},
                        }
                    },
                    {
                        "table": {
                            "table_name": "inproceedings",
                            "access_type": "eq_ref",
                            "key": "PRIMARY",
                            "used_key_parts": ["paper_key"],
                            "ref": ["dblp.publication.pub_key"],
                            "rows_examined_per_scan": 1,
                            "index_condition": "(inproceedings.paper_key = publication.pub_key)",
                        }
                    },
                ],
            },
        },
    }
}


class TestMysqlAdapter:
    def test_parses_realistic_document(self):
        tree = parse_mysql_json(MYSQL_EXPLAIN)
        assert tree.source == "mysql"
        assert tree.operator_names() == [
            "Sort",
            "HashAggregate",
            "Nested Loop",
            "Seq Scan",
            "Index Scan",
        ]
        scan = tree.root.find("Seq Scan")[0]
        assert scan.relation == "publication"
        assert scan.filter_condition == "(publication.year > 2005)"
        lookup = tree.root.find("Index Scan")[0]
        assert lookup.attributes["index"] == "PRIMARY"
        assert lookup.index_condition == "(inproceedings.paper_key = publication.pub_key)"
        join = tree.root.find("Nested Loop")[0]
        assert "PRIMARY" in (join.join_condition or "")

    def test_accepts_serialized_text(self):
        tree = parse_mysql_json(json.dumps(MYSQL_EXPLAIN))
        assert tree.node_count() == 5

    @pytest.mark.parametrize(
        "document, complaint",
        [
            ("not json {", "invalid MySQL EXPLAIN JSON"),
            ({"no_query_block": 1}, "query_block"),
            ({"query_block": {"nested_loop": []}}, "empty"),
            ({"query_block": {"table": {"access_type": "ALL"}}}, "table_name"),
            (
                {"query_block": {"table": {"table_name": "t", "access_type": "warp"}}},
                "access_type",
            ),
            ({"query_block": {"select_id": 1}}, "no recognized access"),
        ],
    )
    def test_malformed_documents_rejected(self, document, complaint):
        with pytest.raises(PlanFormatError, match=complaint):
            parse_mysql_json(document)

    def test_engine_roundtrip_narrates(self, dblp_db, lantern):
        sql = (
            "SELECT i.venue, count(*) AS n FROM inproceedings i, publication p "
            "WHERE i.paper_key = p.pub_key AND p.year > 2000 GROUP BY i.venue"
        )
        payload = dblp_db.explain(sql, output_format="mysql")
        tree = lantern.parse_plan(payload)
        assert tree.source == "mysql"
        assert "Nested Loop" in tree.operator_names()  # MySQL joins are NL-only
        narration = lantern.describe_plan(tree)
        assert narration.steps
        assert "nested loop" in narration.text
        assert narration.steps[-1].is_final


class TestRegistry:
    @pytest.fixture(scope="class")
    def payloads(self, dblp_db):
        sql = "SELECT count(*) FROM publication p WHERE p.year > 2005"
        return {
            FORMAT_POSTGRES_JSON: dblp_db.explain(sql, output_format="json"),
            FORMAT_SQLSERVER_XML: dblp_db.explain(sql, output_format="xml"),
            FORMAT_MYSQL_JSON: dblp_db.explain(sql, output_format="mysql"),
            FORMAT_MINI_ENGINE: dblp_db.plan(sql),
        }

    def test_sniffs_every_builtin_format(self, payloads):
        registry = default_registry()
        for name, payload in payloads.items():
            assert registry.sniff(payload) == name

    def test_sniffs_tree_and_tree_dict(self, payloads):
        registry = default_registry()
        tree = registry.parse(payloads[FORMAT_POSTGRES_JSON])
        assert registry.sniff(tree) == FORMAT_OPERATOR_TREE
        assert registry.sniff(tree.to_dict()) == FORMAT_TREE_JSON

    def test_auto_parse_agrees_with_explicit(self, payloads):
        registry = default_registry()
        for name, payload in payloads.items():
            auto = registry.parse(payload)
            explicit = registry.parse(payload, name)
            assert auto.operator_names() == explicit.operator_names()

    def test_aliases_resolve(self, payloads):
        registry = default_registry()
        assert (
            registry.parse(payloads[FORMAT_POSTGRES_JSON], "json").operator_names()
            == registry.parse(payloads[FORMAT_POSTGRES_JSON], "pg").operator_names()
        )
        registry.parse(payloads[FORMAT_SQLSERVER_XML], "xml")
        registry.parse(payloads[FORMAT_MYSQL_JSON], "mysql")

    def test_unknown_format_lists_known_ones(self, payloads):
        registry = default_registry()
        with pytest.raises(PlanDetectionError, match="registered formats"):
            registry.parse(payloads[FORMAT_POSTGRES_JSON], "oracle-plan-table")

    def test_explicit_format_with_malformed_payload_is_structured(self):
        """A named format whose parser rejects the payload must still raise
        the structured detection error (the service's 400), never a bare
        ValueError/TypeError — including for the pass-through formats."""
        registry = default_registry()
        for payload, plan_format in (
            ({"root": {}}, FORMAT_TREE_JSON),  # node dict without a name
            ("garbage", FORMAT_OPERATOR_TREE),  # not a tree instance
            ("garbage", FORMAT_MINI_ENGINE),
            ("{not json", FORMAT_POSTGRES_JSON),
        ):
            with pytest.raises(PlanDetectionError) as excinfo:
                registry.parse(payload, plan_format)
            assert excinfo.value.attempted_formats == [plan_format]

    def test_ingest_reports_the_format_that_parsed(self, payloads):
        registry = default_registry()
        for name, payload in payloads.items():
            tree, resolved = registry.ingest(payload)
            assert resolved == name
            assert tree.operator_names()

    def test_undetectable_payload_reports_attempts(self):
        registry = default_registry()
        with pytest.raises(PlanDetectionError) as excinfo:
            registry.parse("SELECT this is not a plan")
        assert excinfo.value.attempted_formats == registry.formats()

    def test_matching_detector_failing_parser_keeps_probing(self):
        """A dict that looks vaguely pg-ish but parses as nothing reports the
        formats that were actually attempted."""
        registry = default_registry()
        with pytest.raises(PlanDetectionError) as excinfo:
            registry.parse({"Plan": "not an object"})
        assert FORMAT_POSTGRES_JSON in excinfo.value.attempted_formats

    def test_custom_format_registration(self):
        registry = default_registry()
        sentinel = OperatorTree.from_dict(
            {"source": "pg", "root": {"name": "Seq Scan", "attributes": {"relation": "t"}}}
        )
        registry.register(
            PlanFormat(
                name="tuple-plan",
                detector=lambda payload: isinstance(payload, tuple),
                parser=lambda payload: sentinel,
            ),
            index=0,
        )
        assert registry.formats()[0] == "tuple-plan"
        assert registry.parse(("anything",)) is sentinel
        with pytest.raises(ValueError, match="already registered"):
            registry.register(PlanFormat("tuple-plan", lambda p: False, lambda p: None))

    def test_tree_dict_roundtrip_preserves_narration(self, dblp_db, lantern):
        sql = (
            "SELECT p.venue_key FROM publication p "
            "WHERE p.year > 2001 ORDER BY p.venue_key"
        )
        tree = lantern.plan_for_sql(dblp_db, sql)
        rebuilt = OperatorTree.from_dict(
            json.loads(json.dumps(tree.to_dict()))  # through real JSON text
        )
        assert rebuilt.operator_names() == tree.operator_names()
        fresh = Lantern(config=LanternConfig(seed=None))
        assert (
            fresh.describe_plan(rebuilt).text
            == Lantern(config=LanternConfig(seed=None)).describe_plan(tree).text
        )

    def test_lantern_owns_a_registry(self, lantern):
        assert isinstance(lantern.registry, PlanRegistry)
        assert FORMAT_MYSQL_JSON in lantern.registry.formats()


class TestDescribePlansBatched:
    def _mixed_trees(self, db, lantern, count: int = 9):
        sqls = [
            "SELECT count(*) FROM publication p WHERE p.year > 2003",
            "SELECT p.venue_key FROM publication p ORDER BY p.venue_key",
            (
                "SELECT i.venue, count(*) AS n FROM inproceedings i, publication p "
                "WHERE i.paper_key = p.pub_key GROUP BY i.venue"
            ),
        ]
        engines = ("pg", "mssql", "mysql")
        return [
            lantern.plan_for_sql(db, sqls[i % len(sqls)], engine=engines[i % 3])
            for i in range(count)
        ]

    def test_rule_mode_parity(self, dblp_db):
        batched_facade = Lantern(config=LanternConfig(seed=None))
        sequential_facade = Lantern(config=LanternConfig(seed=None))
        trees = self._mixed_trees(dblp_db, batched_facade)
        batched = batched_facade.describe_plans(trees)
        sequential = [sequential_facade.describe_plan(tree) for tree in trees]
        assert [n.text for n in batched] == [n.text for n in sequential]
        assert batched_facade._operator_counts == sequential_facade._operator_counts

    def test_neural_mode_parity(self, dblp_db, poem_store, trained_neural):
        """Fused cross-plan decode ≡ per-plan describe_plan calls, token for
        token, including exposure-based wording cycling across repeats."""
        exposure_before = dict(trained_neural._act_exposure)
        try:
            batched_facade = Lantern(store=poem_store, neural=trained_neural)
            trees = self._mixed_trees(dblp_db, batched_facade, count=6)
            trees = trees + trees[:3]  # repeats exercise the wording cycle

            trained_neural._act_exposure.clear()
            trained_neural.decode_cache.clear()
            batched = batched_facade.describe_plans(trees, mode="neural")

            trained_neural._act_exposure.clear()
            trained_neural.decode_cache.clear()
            sequential_facade = Lantern(store=poem_store, neural=trained_neural)
            sequential = [
                sequential_facade.describe_plan(tree, mode="neural") for tree in trees
            ]
            assert [n.text for n in batched] == [n.text for n in sequential]
            assert all(
                step.generator == "neural" for n in batched for step in n.steps
            )
        finally:
            trained_neural.decode_cache.clear()
            trained_neural._act_exposure.clear()
            trained_neural._act_exposure.update(exposure_before)

    def test_collect_errors_isolates_bad_trees(self, dblp_db):
        facade = Lantern(config=LanternConfig(seed=None))
        good = facade.plan_for_sql(dblp_db, "SELECT count(*) FROM publication p")
        bad = OperatorTree(root=good.root, source="oracle")  # no POEM catalog
        results = facade.describe_plans([good, bad, good], collect_errors=True)
        assert results[0].text == results[2].text
        assert isinstance(results[1], Exception)
        with pytest.raises(Exception):
            facade.describe_plans([good, bad], collect_errors=False)

    def test_per_tree_modes(self, dblp_db):
        facade = Lantern(config=LanternConfig(seed=None))
        trees = self._mixed_trees(dblp_db, facade, count=2)
        results = facade.describe_plans(trees, mode=["rule", "rule"])
        assert len(results) == 2
        with pytest.raises(Exception, match="modes"):
            facade.describe_plans(trees, mode=["rule"])


class TestRuleMemo:
    def test_memo_enabled_iff_deterministic(self):
        assert Lantern(config=LanternConfig(seed=None))._rule_memo is not None
        assert Lantern(config=LanternConfig(seed=7))._rule_memo is None
        assert (
            Lantern(config=LanternConfig(seed=7, rule_memo_enabled=True))._rule_memo
            is not None
        )
        assert (
            Lantern(config=LanternConfig(seed=None, rule_memo_enabled=False))._rule_memo
            is None
        )

    def test_memo_is_transparent(self, dblp_db):
        sql = "SELECT count(*) FROM publication p WHERE p.year > 2005"
        memoized = Lantern(config=LanternConfig(seed=None))
        plain = Lantern(config=LanternConfig(seed=None, rule_memo_enabled=False))
        tree = memoized.plan_for_sql(dblp_db, sql)
        first = memoized.describe_plan(tree)
        second = memoized.describe_plan(tree)  # memo hit
        reference = plain.describe_plan(tree)
        assert first.text == second.text == reference.text
        stats = memoized.rule_memo_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert plain.rule_memo_stats() is None
        # habituation still advances on memo hits
        assert memoized.operator_exposure("Seq Scan") == 2 * plain.operator_exposure(
            "Seq Scan"
        )

    def test_memo_distinguishes_structures_and_sources(self, dblp_db):
        facade = Lantern(config=LanternConfig(seed=None))
        sql = "SELECT count(*) FROM publication p WHERE p.year > 2005"
        facade.describe_plan(facade.plan_for_sql(dblp_db, sql, engine="pg"))
        facade.describe_plan(facade.plan_for_sql(dblp_db, sql, engine="mysql"))
        facade.describe_plan(
            facade.plan_for_sql(dblp_db, "SELECT count(*) FROM publication p")
        )
        assert facade.rule_memo_stats()["size"] == 3
