"""Shared fixtures: small workload databases, the POEM store, and a trained tiny model."""

from __future__ import annotations

import pytest

from repro.core import Lantern
from repro.pool import build_default_store
from repro.sqlengine import Database, DataType
from repro.workloads import (
    build_dblp_database,
    build_imdb_database,
    build_sdss_database,
    build_tpch_database,
)


@pytest.fixture(scope="session")
def tpch_db() -> Database:
    return build_tpch_database(scale=0.001, seed=1)


@pytest.fixture(scope="session")
def sdss_db() -> Database:
    return build_sdss_database(object_count=800, seed=2)


@pytest.fixture(scope="session")
def imdb_db() -> Database:
    return build_imdb_database(title_count=600, seed=3)


@pytest.fixture(scope="session")
def dblp_db() -> Database:
    return build_dblp_database(publication_count=400, seed=4)


@pytest.fixture(scope="session")
def poem_store():
    return build_default_store()


@pytest.fixture(scope="session")
def lantern(poem_store) -> Lantern:
    return Lantern(store=poem_store)


@pytest.fixture()
def toy_db() -> Database:
    """A tiny two-table database with known contents for exact-result tests."""
    db = Database("toy", enable_parallel=False)
    db.create_table(
        "users",
        [("id", DataType.INTEGER), ("name", DataType.TEXT), ("age", DataType.INTEGER),
         ("city", DataType.TEXT)],
        primary_key=("id",),
    )
    db.create_table(
        "orders",
        [("order_id", DataType.INTEGER), ("user_id", DataType.INTEGER),
         ("amount", DataType.FLOAT), ("status", DataType.TEXT)],
        primary_key=("order_id",),
    )
    db.insert("users", [
        (1, "alice", 34, "london"),
        (2, "bob", 28, "paris"),
        (3, "carol", 41, "london"),
        (4, "dave", 19, "berlin"),
        (5, "erin", 55, "paris"),
    ])
    db.insert("orders", [
        (10, 1, 120.0, "shipped"),
        (11, 1, 75.5, "pending"),
        (12, 2, 19.99, "shipped"),
        (13, 3, 250.0, "cancelled"),
        (14, 3, 30.0, "shipped"),
        (15, 5, 60.0, "shipped"),
        (16, 5, 45.0, "pending"),
    ])
    db.create_index("idx_users_id", "users", ["id"])
    db.create_index("idx_orders_user", "orders", ["user_id"])
    db.analyze()
    return db


@pytest.fixture(scope="session")
def trained_neural():
    """A tiny but genuinely trained NEURAL-LANTERN used by integration tests."""
    from repro.nlg.dataset import build_dataset
    from repro.nlg.neural_lantern import NeuralLantern
    from repro.nlg.seq2seq import QEP2Seq, Seq2SeqConfig
    from repro.nlg.training import Trainer
    from repro.workloads.dblp import DBLP_JOIN_GRAPH
    from repro.workloads.generator import RandomQueryGenerator

    db = build_dblp_database(publication_count=300, seed=9)
    generator = RandomQueryGenerator(db, DBLP_JOIN_GRAPH, seed=9)
    queries = [generated.sql for generated in generator.generate(25)]
    dataset = build_dataset([(db, queries, "postgresql", "dblp")], seed=9)
    config = Seq2SeqConfig(hidden_dim=48, attention_dim=24, learning_rate=0.005, batch_size=8, seed=9)
    model = QEP2Seq(dataset.input_vocabulary, dataset.output_vocabulary, config)
    Trainer(model, dataset.train_samples[:220], dataset.validation_samples[:40], seed=9).train(
        epochs=10, early_stopping_threshold=None
    )
    return NeuralLantern(model, dataset=dataset, beam_size=2)
