"""TRAIN-TURBO: parity of the fused training path with the step-wise reference.

The contract mirrors PR 1's beam-search batching: the vectorized pipeline
(hoisted gate matmuls, cross-timestep fused attention, SoA caches) must
reproduce the kept reference path — per-batch loss/accuracy and *every*
parameter gradient to ``allclose(rtol=1e-9)`` in float64, and
token-identical narrations after an identical-seed training run.  The
length-bucketed batch scheduler is covered by its own regression tests:
deterministic given the Trainer seed, degenerates to the unbucketed
schedule on uniform-length data, and keeps the PR 3 chunk-size-weighted
epoch metrics under uneven buckets.
"""

import numpy as np
import pytest

from repro.errors import ModelConfigError
from repro.nlg.dataset import TrainingSample, length_bucketed_chunks
from repro.nlg.nn.attention import AdditiveAttention
from repro.nlg.nn.losses import cross_entropy_from_logits
from repro.nlg.nn.lstm import LSTM
from repro.nlg.seq2seq import QEP2Seq, Seq2SeqConfig
from repro.nlg.training import Trainer
from repro.nlg.vocab import Vocabulary

RTOL = 1e-9
ATOL = 1e-12

SOURCES = [
    ["scan", "TBL1", "filter", "COND1"],
    ["join", "TBL1", "TBL2", "hash", "COND2", "build"],
    ["sort", "KEY1"],
    ["aggregate", "group", "KEY2", "TBL1"],
    ["scan", "TBL2"],
    ["join", "TBL2", "TBL3", "merge", "COND1"],
    ["limit", "N1", "sort", "KEY1", "KEY2"],
    ["scan", "TBL3", "index", "IDX1", "COND2"],
]
TARGETS = [
    ["read", "every", "row", "of", "TBL1"],
    ["combine", "TBL1", "and", "TBL2"],
    ["order", "the", "rows"],
    ["group", "rows", "by", "KEY2"],
    ["read", "TBL2"],
    ["merge", "TBL2", "with", "TBL3", "pairwise"],
    ["keep", "the", "first", "rows"],
    ["probe", "the", "index", "IDX1", "of", "TBL3"],
]


def _samples(sources=SOURCES, targets=TARGETS):
    return [
        TrainingSample(
            source_tokens=list(source),
            target_tokens=list(target),
            abstracted_text=" ".join(target),
        )
        for source, target in zip(sources, targets)
    ]


def _model(turbo=True, dtype="float64", share_weights=False, seed=5) -> QEP2Seq:
    input_vocabulary = Vocabulary.from_sequences(SOURCES)
    output_vocabulary = Vocabulary.from_sequences(TARGETS)
    config = Seq2SeqConfig(
        hidden_dim=12,
        attention_dim=7,
        encoder_embedding_dim=6,
        decoder_embedding_dim=9,
        batch_size=4,
        seed=seed,
        turbo=turbo,
        dtype=dtype,
        share_weights=share_weights,
        max_decode_length=12,
        beam_size=2,
    )
    return QEP2Seq(input_vocabulary, output_vocabulary, config)


def _parameter_grads(module) -> dict[str, np.ndarray]:
    return {p.name: p.grad.copy() for p in module.parameters()}


def _assert_grads_match(module, expected: dict[str, np.ndarray]) -> None:
    for parameter in module.parameters():
        np.testing.assert_allclose(
            parameter.grad, expected[parameter.name], rtol=RTOL, atol=ATOL,
            err_msg=parameter.name,
        )


class TestLstmFusedParity:
    """forward_fused/backward_fused vs the step-wise forward/backward."""

    def _lstm_and_data(self):
        rng = np.random.default_rng(2)
        lstm = LSTM(3, 5, rng)
        inputs = rng.normal(size=(4, 6, 3))
        mask = np.ones((4, 6))
        mask[1, 4:] = 0.0  # ragged lengths exercise the pass-through branch
        mask[3, 2:] = 0.0
        return lstm, inputs, mask, rng

    def test_forward_fused_matches_stepwise(self):
        lstm, inputs, mask, _ = self._lstm_and_data()
        out_ref, h_ref, c_ref, _ = lstm.forward(inputs, mask=mask)
        out_fused, h_fused, c_fused, cache = lstm.forward_fused(inputs, mask=mask)
        np.testing.assert_allclose(out_fused, out_ref, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(h_fused, h_ref, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(c_fused, c_ref, rtol=RTOL, atol=ATOL)
        # the SoA cache holds the whole sequence: no per-step objects
        assert cache.gates.shape == (4, 6, 20)
        assert cache.h_all.shape == (4, 7, 5)

    def test_backward_fused_matches_stepwise(self):
        lstm, inputs, mask, rng = self._lstm_and_data()
        grad_outputs = rng.normal(size=(4, 6, 5))
        grad_h_final = rng.normal(size=(4, 5))
        grad_c_final = rng.normal(size=(4, 5))

        _, _, _, step_caches = lstm.forward(inputs, mask=mask)
        for parameter in lstm.parameters():
            parameter.zero_grad()
        gi_ref, gh_ref, gc_ref = lstm.backward(
            step_caches, grad_outputs, grad_h_final=grad_h_final, grad_c_final=grad_c_final
        )
        expected = _parameter_grads(lstm)

        _, _, _, fused_cache = lstm.forward_fused(inputs, mask=mask)
        for parameter in lstm.parameters():
            parameter.zero_grad()
        gi_fused, gh_fused, gc_fused = lstm.backward_fused(
            fused_cache, grad_outputs, grad_h_final=grad_h_final, grad_c_final=grad_c_final
        )
        np.testing.assert_allclose(gi_fused, gi_ref, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(gh_fused, gh_ref, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(gc_fused, gc_ref, rtol=RTOL, atol=ATOL)
        _assert_grads_match(lstm, expected)


class TestAttentionFusedParity:
    """One fused call over all decoder steps vs one reference call per step."""

    def _attention_and_data(self):
        rng = np.random.default_rng(3)
        attention = AdditiveAttention(4, 5, 3, rng)
        decoder_states = rng.normal(size=(2, 6, 4))
        encoder_states = rng.normal(size=(2, 5, 5))
        mask = np.array([[1, 1, 1, 0, 0], [1, 1, 1, 1, 1]], dtype=float)
        return attention, decoder_states, encoder_states, mask, rng

    def test_forward_fused_matches_per_step(self):
        attention, decoder_states, encoder_states, mask, _ = self._attention_and_data()
        contexts, weights, _ = attention.forward_fused(decoder_states, encoder_states, mask)
        for t in range(decoder_states.shape[1]):
            context_ref, weights_ref, _ = attention.forward(
                decoder_states[:, t], encoder_states, mask
            )
            np.testing.assert_allclose(contexts[:, t], context_ref, rtol=RTOL, atol=ATOL)
            np.testing.assert_allclose(weights[:, t], weights_ref, rtol=RTOL, atol=ATOL)

    def test_backward_fused_matches_per_step(self):
        attention, decoder_states, encoder_states, mask, rng = self._attention_and_data()
        steps = decoder_states.shape[1]
        grad_contexts = rng.normal(size=(2, steps, 5))

        for parameter in attention.parameters():
            parameter.zero_grad()
        grad_decoder_ref = np.zeros_like(decoder_states)
        grad_encoder_ref = np.zeros_like(encoder_states)
        for t in range(steps):
            _, _, cache = attention.forward(decoder_states[:, t], encoder_states, mask)
            grad_decoder_step, grad_encoder_step = attention.backward(cache, grad_contexts[:, t])
            grad_decoder_ref[:, t] = grad_decoder_step
            grad_encoder_ref += grad_encoder_step
        expected = _parameter_grads(attention)

        for parameter in attention.parameters():
            parameter.zero_grad()
        _, _, fused_cache = attention.forward_fused(decoder_states, encoder_states, mask)
        grad_decoder, grad_encoder = attention.backward_fused(fused_cache, grad_contexts)
        np.testing.assert_allclose(grad_decoder, grad_decoder_ref, rtol=RTOL, atol=ATOL)
        np.testing.assert_allclose(grad_encoder, grad_encoder_ref, rtol=RTOL, atol=ATOL)
        _assert_grads_match(attention, expected)


class TestSeq2SeqTurboParity:
    """Full-model parity: the acceptance contract of the turbo path."""

    @pytest.mark.parametrize("share_weights", [False, True])
    def test_loss_and_every_gradient_match_reference(self, share_weights):
        model = _model(share_weights=share_weights)
        samples = _samples()
        batch = model.make_batch(
            [s.source_tokens for s in samples], [s.target_tokens for s in samples]
        )

        reference = model._forward_reference(batch)
        loss_ref, grad_logits_ref = cross_entropy_from_logits(
            reference.logits, batch.decoder_targets, batch.decoder_mask
        )
        model.optimizer.zero_grad()
        model._backward_reference(batch, reference, grad_logits_ref)
        expected = _parameter_grads(model)

        turbo = model._forward_turbo(batch)
        loss_turbo, grad_logits_turbo = cross_entropy_from_logits(
            turbo.logits, batch.decoder_targets, batch.decoder_mask
        )
        model.optimizer.zero_grad()
        model._backward_turbo(batch, turbo, grad_logits_turbo)

        np.testing.assert_allclose(turbo.logits, reference.logits, rtol=RTOL, atol=ATOL)
        assert loss_turbo == pytest.approx(loss_ref, rel=RTOL, abs=ATOL)
        _assert_grads_match(model, expected)

    def test_train_batch_dispatches_on_config(self):
        samples = _samples()
        turbo_model = _model(turbo=True)
        reference_model = _model(turbo=False)
        batch = turbo_model.make_batch(
            [s.source_tokens for s in samples], [s.target_tokens for s in samples]
        )
        loss_turbo, accuracy_turbo = turbo_model.train_batch(batch)
        loss_ref, accuracy_ref = reference_model.train_batch(batch)
        assert loss_turbo == pytest.approx(loss_ref, rel=RTOL)
        assert accuracy_turbo == pytest.approx(accuracy_ref, rel=RTOL)

    def test_token_identical_narrations_after_identical_seed_training(self):
        """Train the same seed twice — fused vs reference — and require the
        resulting narrators to emit token-for-token identical output."""
        histories = []
        decoded = []
        for turbo in (True, False):
            model = _model(turbo=turbo)
            trainer = Trainer(model, _samples(), _samples()[:2], seed=11)
            history = trainer.train(epochs=3, early_stopping_threshold=None)
            histories.append(history)
            decoded.append(model.beam_decode_batch(SOURCES, beam_size=2))
        assert decoded[0] == decoded[1]
        for turbo_record, reference_record in zip(histories[0].records, histories[1].records):
            assert turbo_record.train_loss == pytest.approx(
                reference_record.train_loss, rel=1e-9
            )
            assert turbo_record.validation_loss == pytest.approx(
                reference_record.validation_loss, rel=1e-9
            )


class TestDtypeKnob:
    def test_float32_threads_through_parameters_and_training(self):
        model = _model(dtype="float32")
        assert all(p.value.dtype == np.float32 for p in model.parameters())
        assert all(p.grad.dtype == np.float32 for p in model.parameters())
        samples = _samples()
        batch = model.make_batch(
            [s.source_tokens for s in samples], [s.target_tokens for s in samples]
        )
        assert batch.encoder_mask.dtype == np.float32
        loss, accuracy = model.train_batch(batch)
        assert np.isfinite(loss) and 0.0 <= accuracy <= 1.0
        # the update really happened in float32 — no silent upcast
        assert all(p.value.dtype == np.float32 for p in model.parameters())
        cache = model._forward(batch)
        assert cache.logits.dtype == np.float32

    def test_float32_close_to_float64(self):
        samples = _samples()
        losses = []
        for dtype in ("float64", "float32"):
            model = _model(dtype=dtype)
            batch = model.make_batch(
                [s.source_tokens for s in samples], [s.target_tokens for s in samples]
            )
            losses.append(model.evaluate_batch(batch)[0])
        assert losses[0] == pytest.approx(losses[1], rel=1e-4)

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ModelConfigError, match="unsupported dtype"):
            _model(dtype="float16")


class TestLengthBucketedScheduler:
    def test_deterministic_and_orders_by_total_length(self):
        samples = _samples()
        chunks = length_bucketed_chunks(samples, 3)
        assert chunks == length_bucketed_chunks(samples, 3)  # deterministic
        assert [len(chunk) for chunk in chunks] == [3, 3, 2]  # only last partial
        totals = [
            len(sample.source_tokens) + len(sample.target_tokens)
            for chunk in chunks
            for sample in chunk
        ]
        assert totals == sorted(totals)

    def test_reduces_padded_width(self):
        """The point of bucketing: mixed-length epochs stop paying the
        widest member's padded cost in every batch."""
        samples = _samples()

        def padded_positions(chunks):
            return sum(
                len(chunk)
                * (
                    max(len(s.source_tokens) for s in chunk)
                    + max(len(s.target_tokens) for s in chunk)
                )
                for chunk in chunks
            )

        sequential = [samples[i : i + 4] for i in range(0, len(samples), 4)]
        assert padded_positions(length_bucketed_chunks(samples, 4)) < padded_positions(sequential)

    def test_uniform_lengths_degenerate_to_sequential_schedule(self):
        """Stable sort + equal keys = the incoming (seed-shuffled) order."""
        sources = [[f"s{i}", "x", "y"] for i in range(7)]
        targets = [[f"t{i}", "u"] for i in range(7)]
        samples = _samples(sources, targets)
        assert length_bucketed_chunks(samples, 3) == [
            samples[0:3], samples[3:6], samples[6:7]
        ]

    def test_epoch_metrics_identical_bucketing_on_or_off_uniform_lengths(self):
        """Regression guard for the PR 3 weighted-metric fix under the new
        scheduler: on uniform-length data (where bucketing is schedule-
        neutral by construction) a fixed seed must produce *identical*
        loss/accuracy curves and early-stopping behaviour — including a
        partial final batch (7 samples, batch size 3)."""
        sources = [[f"s{i}", "x", "y"] for i in range(7)]
        targets = [[f"t{i}", "u", "v"] for i in range(7)]
        histories = []
        for bucket in (False, True):
            input_vocabulary = Vocabulary.from_sequences(sources)
            output_vocabulary = Vocabulary.from_sequences(targets)
            model = QEP2Seq(
                input_vocabulary,
                output_vocabulary,
                Seq2SeqConfig(hidden_dim=10, attention_dim=6, batch_size=3, seed=7),
            )
            trainer = Trainer(
                model,
                _samples(sources, targets),
                _samples(sources[:3], targets[:3]),
                seed=19,
                bucket_by_length=bucket,
            )
            histories.append(
                trainer.train(epochs=4, early_stopping_threshold=10.0, early_stopping_window=3)
            )
        off, on = histories
        assert [r.train_loss for r in on.records] == [r.train_loss for r in off.records]
        assert [r.train_accuracy for r in on.records] == [r.train_accuracy for r in off.records]
        assert [r.validation_loss for r in on.records] == [r.validation_loss for r in off.records]
        assert on.stopped_early == off.stopped_early
        assert on.epochs == off.epochs

    def test_weighted_metrics_hold_under_uneven_buckets(self):
        """Chunk-size weighting (PR 3) applied to the bucketed schedule: the
        Trainer's epoch metric must equal the hand-computed weighted mean of
        per-chunk metrics, partial final batch included."""
        model = _model()
        samples = _samples()  # 8 samples, batch 3 -> chunks of 3/3/2
        trainer = Trainer(model, samples, [], seed=13, bucket_by_length=True)
        loss, accuracy = trainer._run_batches(samples, 3, train=False)

        expected_loss = 0.0
        expected_accuracy = 0.0
        for chunk in length_bucketed_chunks(samples, 3):
            batch = model.make_batch(
                [s.source_tokens for s in chunk], [s.target_tokens for s in chunk]
            )
            chunk_loss, chunk_accuracy = model.evaluate_batch(batch)
            expected_loss += chunk_loss * len(chunk)
            expected_accuracy += chunk_accuracy * len(chunk)
        assert loss == pytest.approx(expected_loss / len(samples), abs=1e-12)
        assert accuracy == pytest.approx(expected_accuracy / len(samples), abs=1e-12)
