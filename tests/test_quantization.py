"""LANTERN-ZERO quantized inference: the parity contract and its edge cases.

Quantization is an opt-in *inference* optimization: int8 (per-row absmax)
or float16 replicas are attached next to the float64 master weights, the
decode cache keys on the precision tag, and training is refused until the
replicas are dropped.  The load-bearing contract (ISSUE 6): against the
float64 reference on the dblp workload, top-1 token agreement >= 0.98 and
corpus-BLEU delta <= 0.5 points — reduced precision may change wording
only within that envelope (on the test model it changes nothing at all).
"""

import numpy as np
import pytest

from repro.errors import ModelConfigError
from repro.nlg.metrics import corpus_bleu
from repro.nlg.nn.quant import infer_replica, quantize_int8_rowwise, validate_quantize_mode

#: the ISSUE 6 acceptance thresholds
MIN_TOKEN_AGREEMENT = 0.98
MAX_BLEU_DELTA_POINTS = 0.5


@pytest.fixture(scope="module")
def parity_samples(trained_neural):
    samples = (
        trained_neural.dataset.validation_samples[:40]
        + trained_neural.dataset.train_samples[:20]
    )
    return samples


def _token_agreement(reference: list[list[str]], candidate: list[list[str]]) -> float:
    agreeing = total = 0
    for ref, cand in zip(reference, candidate):
        length = max(len(ref), len(cand))
        total += length
        agreeing += sum(1 for a, b in zip(ref, cand) if a == b)
    return agreeing / total if total else 1.0


class TestQuantPrimitives:
    def test_validate_quantize_mode(self):
        for mode in ("none", "int8", "float16"):
            validate_quantize_mode(mode)
        with pytest.raises(ModelConfigError, match="quantize"):
            validate_quantize_mode("int4")

    def test_int8_rowwise_reconstruction_error_bounded(self):
        rng = np.random.default_rng(5)
        value = rng.normal(scale=0.4, size=(37, 53))
        codes, scales = quantize_int8_rowwise(value)
        assert codes.dtype == np.int8
        replica = codes.astype(np.float32) * scales.astype(np.float32)
        # per-row absmax grid: error is at most half a quantization step
        steps = np.abs(value).max(axis=1, keepdims=True) / 127.0
        assert np.all(np.abs(replica - value) <= steps * 0.5 + 1e-7)

    def test_int8_zero_row_does_not_divide_by_zero(self):
        value = np.zeros((3, 8))
        value[1] = np.linspace(-1, 1, 8)
        codes, scales = quantize_int8_rowwise(value)
        assert np.all(np.isfinite(scales))
        assert np.all(codes[0] == 0) and np.all(codes[2] == 0)

    def test_replica_dtypes(self):
        value = np.random.default_rng(0).normal(size=(4, 6))
        assert infer_replica(value, "float16").dtype == np.float32  # f16 grid, f32 math
        assert infer_replica(value, "int8").dtype == np.float32
        assert infer_replica(value[0], "int8").dtype == np.float32  # 1-D stays plain
        with pytest.raises(ModelConfigError):
            infer_replica(value, "none")


class TestParityContract:
    @pytest.mark.parametrize("mode", ["int8", "float16"])
    def test_token_agreement_and_bleu_delta(self, trained_neural, parity_samples, mode):
        model = trained_neural.model
        sources = [s.source_tokens for s in parity_samples]
        references = [s.target_tokens for s in parity_samples]
        baseline = model.beam_decode_batch(sources, beam_size=2)
        model.quantize(mode)
        try:
            assert model.precision == f"float64:{mode}"
            quantized = model.beam_decode_batch(sources, beam_size=2)
        finally:
            model.dequantize()
        assert model.precision == "float64:none"

        agreement = _token_agreement(
            [c[0] for c in baseline], [c[0] for c in quantized]
        )
        assert agreement >= MIN_TOKEN_AGREEMENT
        bleu_full = corpus_bleu([c[0] for c in baseline], references)
        bleu_quant = corpus_bleu([c[0] for c in quantized], references)
        assert abs(bleu_full - bleu_quant) <= MAX_BLEU_DELTA_POINTS

    def test_batched_matches_sequential_under_int8(self, trained_neural, parity_samples):
        """The fused-beam parity guarantee must also hold on the reduced
        grid — including how beam ties resolve (both paths rank with the
        same stable sort over the same float32 scores)."""
        model = trained_neural.model
        sources = [s.source_tokens for s in parity_samples[:20]]
        model.quantize("int8")
        try:
            batched = model.beam_decode_batch(sources, beam_size=2)
            sequential = [
                model.beam_decode_candidates_sequential(source, beam_size=2)
                for source in sources
            ]
            assert batched == sequential
            # decoding is deterministic: re-running yields the exact ranking
            assert model.beam_decode_batch(sources, beam_size=2) == batched
        finally:
            model.dequantize()

    def test_dequantize_restores_exact_float64_path(self, trained_neural, parity_samples):
        model = trained_neural.model
        sources = [s.source_tokens for s in parity_samples[:10]]
        baseline = model.beam_decode_batch(sources, beam_size=2)
        model.quantize("int8")
        model.quantize("float16")  # re-quantizing switches replicas in place
        model.dequantize()
        assert model.beam_decode_batch(sources, beam_size=2) == baseline
        assert all(p.infer_value is p.value for p in model.parameters())


class TestQuantizedLifecycle:
    def test_training_refused_while_quantized(self, trained_neural):
        model = trained_neural.model
        samples = trained_neural.dataset.train_samples[:4]
        batch = model.make_batch(
            [s.source_tokens for s in samples], [s.target_tokens for s in samples]
        )
        model.quantize("int8")
        try:
            with pytest.raises(ModelConfigError, match="dequantize"):
                model.train_batch(batch)
        finally:
            model.dequantize()
        # and after dequantizing, the training forward works again
        # (evaluate_batch shares train_batch's forward without mutating the
        # session-scoped fixture's weights)
        loss, accuracy = model.evaluate_batch(batch)
        assert np.isfinite(loss) and 0.0 <= accuracy <= 1.0

    def test_quantized_checkpoint_round_trip(self, trained_neural, tmp_path):
        """A quantized model saves its ORIGINAL weights plus the quantize
        mode; loading re-quantizes deterministically, so decodes match."""
        import json

        from repro.nlg.persistence import MANIFEST_FILE, load_qep2seq, save_qep2seq

        model = trained_neural.model
        sources = [s.source_tokens for s in trained_neural.dataset.samples[:6]]
        model.quantize("int8")
        try:
            expected = model.beam_decode_batch(sources, beam_size=2)
            target = save_qep2seq(model, tmp_path / "int8")
        finally:
            model.dequantize()

        manifest = json.loads((target / MANIFEST_FILE).read_text())
        assert manifest["model"]["config"]["quantize"] == "int8"

        loaded = load_qep2seq(target)
        assert loaded.config.quantize == "int8"
        assert loaded.precision == "float64:int8"
        assert loaded.beam_decode_batch(sources, beam_size=2) == expected
        # the master weights survived at full precision
        originals = {p.name: p.value for p in model.parameters()}
        for parameter in loaded.parameters():
            np.testing.assert_array_equal(parameter.value, originals[parameter.name])

    def test_decode_cache_keys_on_precision(self, trained_neural):
        """Toggling quantization must never serve candidates decoded under
        the other numeric grid (satellite 1: dtype+quantize in the key)."""
        from repro.nlg.cache import make_key
        from repro.nlg.neural_lantern import NeuralLantern

        neural = NeuralLantern(trained_neural.model, beam_size=2)
        source = trained_neural.dataset.samples[0].source_tokens
        neural._ranked_candidates(source, 2)
        [full_key] = [key for key, _ in neural.decode_cache.export_entries()]
        assert full_key == make_key(source, 2, "float64:none")

        neural.model.quantize("int8")
        try:
            neural._ranked_candidates(source, 2)
            keys = {key for key, _ in neural.decode_cache.export_entries()}
        finally:
            neural.model.dequantize()
        assert make_key(source, 2, "float64:int8") in keys
        assert len(keys) == 2  # distinct entries per precision


class TestQuantizedEdgeCases:
    @pytest.mark.parametrize("mode", ["int8", "float16"])
    def test_oov_tokens_decode(self, trained_neural, mode):
        model = trained_neural.model
        oov = ["positronic", "flux", "capacitor", "scan"]
        model.quantize(mode)
        try:
            batched = model.beam_decode_batch([oov], beam_size=2)
            sequential = model.beam_decode_candidates_sequential(oov, beam_size=2)
        finally:
            model.dequantize()
        assert batched[0] == sequential
        assert all(candidate for candidate in sequential)

    @pytest.mark.parametrize("source", [[], ["  "], ["", " "]])
    def test_empty_and_whitespace_acts(self, trained_neural, source):
        """Degenerate act serializations must decode (as pure-UNK input),
        not crash — quantized or not, batched or not."""
        model = trained_neural.model
        plain = model.beam_decode_candidates(source, beam_size=2)
        assert plain and all(plain)
        model.quantize("int8")
        try:
            quantized = model.beam_decode_batch([source], beam_size=2)[0]
            assert quantized == model.beam_decode_candidates_sequential(source, beam_size=2)
        finally:
            model.dequantize()
        assert quantized and all(quantized)

    def test_generation_through_facade_while_quantized(self, trained_neural, dblp_db):
        """End to end: a quantized NeuralLantern narrates real plans with
        non-empty, tag-restored text."""
        from repro.core import Lantern, LanternConfig
        from repro.nlg.neural_lantern import NeuralLantern

        lantern = Lantern(
            neural=NeuralLantern(trained_neural.model, beam_size=2),
            config=LanternConfig(seed=None),
        )
        sql = "SELECT count(*) FROM publication p WHERE p.year > 2005"
        tree = lantern.plan_for_sql(dblp_db, sql)
        trained_neural.model.quantize("int8")
        try:
            narration = lantern.describe_plan(tree, mode="neural")
        finally:
            trained_neural.model.dequantize()
        assert narration.text.strip().endswith(".")
        assert "<" not in narration.text  # all tags restored or filled
