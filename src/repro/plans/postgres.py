"""Parse PostgreSQL ``EXPLAIN (FORMAT JSON)`` output into an operator tree."""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.errors import PlanFormatError
from repro.plans.operator_tree import (
    ATTR_AGGREGATES,
    ATTR_ALIAS,
    ATTR_FILTER,
    ATTR_GROUP_KEYS,
    ATTR_INDEX,
    ATTR_INDEX_COND,
    ATTR_JOIN_COND,
    ATTR_LIMIT,
    ATTR_OUTPUT,
    ATTR_RELATION,
    ATTR_SORT_KEYS,
    ATTR_STRATEGY,
    OperatorNode,
    OperatorTree,
)

_CONDITION_KEYS = ("Hash Cond", "Merge Cond", "Join Filter", "Recheck Cond")


def _parse_node(entry: Mapping[str, Any]) -> OperatorNode:
    if "Node Type" not in entry:
        raise PlanFormatError("plan node is missing 'Node Type'")
    attributes: dict[str, Any] = {}
    if entry.get("Relation Name"):
        attributes[ATTR_RELATION] = entry["Relation Name"]
        attributes[ATTR_ALIAS] = entry.get("Alias", entry["Relation Name"])
    if entry.get("Index Name"):
        attributes[ATTR_INDEX] = entry["Index Name"]
    if entry.get("Index Cond"):
        attributes[ATTR_INDEX_COND] = entry["Index Cond"]
    if entry.get("Filter"):
        attributes[ATTR_FILTER] = entry["Filter"]
    for key in _CONDITION_KEYS:
        if entry.get(key):
            attributes[ATTR_JOIN_COND] = entry[key]
            break
    if entry.get("Sort Key"):
        attributes[ATTR_SORT_KEYS] = list(entry["Sort Key"])
    if entry.get("Group Key"):
        attributes[ATTR_GROUP_KEYS] = list(entry["Group Key"])
    if entry.get("Aggregates"):
        attributes[ATTR_AGGREGATES] = list(entry["Aggregates"])
    if entry.get("Strategy"):
        attributes[ATTR_STRATEGY] = entry["Strategy"]
    if entry.get("Rows Limit") is not None:
        attributes[ATTR_LIMIT] = entry["Rows Limit"]
    if entry.get("Output"):
        attributes[ATTR_OUTPUT] = list(entry["Output"])

    node_type = entry["Node Type"]
    strategy = entry.get("Strategy")
    if node_type == "Aggregate" and strategy:
        # real PostgreSQL reports Aggregate + Strategy; expose the specific
        # operator name the paper's figures use (HashAggregate/GroupAggregate).
        if strategy == "Hashed":
            node_type = "HashAggregate"
        elif strategy == "Sorted":
            node_type = "GroupAggregate"

    node = OperatorNode(
        name=node_type,
        attributes=attributes,
        estimated_rows=float(entry.get("Plan Rows", 0) or 0),
        estimated_cost=float(entry.get("Total Cost", 0.0) or 0.0),
        raw=dict(entry),
    )
    for child in entry.get("Plans", []) or []:
        node.children.append(_parse_node(child))
    return node


def parse_postgres_json(document: str | list | dict) -> OperatorTree:
    """Parse ``EXPLAIN (FORMAT JSON)`` output (text or already-decoded objects)."""
    if isinstance(document, str):
        try:
            document = json.loads(document)
        except json.JSONDecodeError as error:
            raise PlanFormatError(f"invalid EXPLAIN JSON: {error}") from error
    query_text = ""
    if isinstance(document, list):
        if not document:
            raise PlanFormatError("EXPLAIN JSON document is empty")
        first = document[0]
        query_text = first.get("Query Text", "") if isinstance(first, dict) else ""
        plan = first.get("Plan") if isinstance(first, dict) else None
    elif isinstance(document, dict):
        query_text = document.get("Query Text", "")
        plan = document.get("Plan", document)
    else:
        raise PlanFormatError(f"unsupported EXPLAIN JSON payload: {type(document).__name__}")
    if not isinstance(plan, Mapping):
        raise PlanFormatError("EXPLAIN JSON document has no 'Plan' object")
    return OperatorTree(root=_parse_node(plan), source="postgresql", query_text=query_text)


def plan_from_database(database, sql: str) -> OperatorTree:
    """Convenience helper: EXPLAIN ``sql`` on a :class:`repro.sqlengine.Database`.

    This is the substitute for connecting to a real PostgreSQL instance — the
    JSON round-trip goes through exactly the same parser as external plans.
    """
    return parse_postgres_json(database.explain(sql, output_format="json"))
