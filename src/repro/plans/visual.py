"""ASCII rendering of operator trees (the "visual tree" QEP format).

The paper compares the NL description against the visual tree representation
(Figure 2 / Figure 4); this module provides the equivalent text rendering used
by the examples, the user-study simulator, and US 6's annotated-tree
presentation mode.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.plans.operator_tree import OperatorNode, OperatorTree


def render_visual_tree(
    tree: OperatorTree,
    show_details: bool = False,
    annotation: Optional[Callable[[OperatorNode], str]] = None,
) -> str:
    """Render the operator tree with box-drawing connectors.

    ``show_details`` appends the relation and condition to each node label.
    ``annotation`` (used by the annotated-tree presentation mode of US 6)
    adds an arbitrary per-node string on an indented line below the node.
    """
    lines: list[str] = []

    def label(node: OperatorNode) -> str:
        text = node.name
        if node.relation:
            text += f" ({node.relation})"
        if show_details:
            condition = node.join_condition or node.index_condition or node.filter_condition
            if condition:
                text += f"  [{condition}]"
        return text

    def render(node: OperatorNode, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(label(node))
            child_prefix = ""
        else:
            connector = "└── " if is_last else "├── "
            lines.append(prefix + connector + label(node))
            child_prefix = prefix + ("    " if is_last else "│   ")
        if annotation is not None:
            note = annotation(node)
            if note:
                lines.append(child_prefix + "      ~ " + note)
        for position, child in enumerate(node.children):
            render(child, child_prefix, position == len(node.children) - 1, False)

    render(tree.root, "", True, True)
    return "\n".join(lines)


def tree_summary(tree: OperatorTree) -> dict[str, int]:
    """Simple structural statistics used in tests and experiments."""
    names = tree.operator_names()
    return {
        "nodes": len(names),
        "depth": tree.depth(),
        "scans": sum(1 for name in names if "scan" in name.lower() or "seek" in name.lower()),
        "joins": sum(
            1
            for name in names
            if "join" in name.lower() or name.lower() in ("nested loops", "hash match")
        ),
    }
