"""The auto-detecting plan-ingestion registry (LANTERN-SERVE's front door).

Before this registry existed, :class:`repro.core.lantern.Lantern` hard-coded
an if/elif dispatch over two serializations.  The registry replaces that with
an ordered list of :class:`PlanFormat` entries, each pairing a cheap
*detector* with a *parser*; payloads are dispatched either explicitly (by
format name or alias) or by auto-detection.  New engines plug in with one
:meth:`PlanRegistry.register` call — no facade changes — which is how the
MySQL adapter, the mini-engine pass-through, and the parsed-tree wire format
are all wired in.

Detection is two-phase: string payloads are normalized once (XML sniffed by
the leading ``<``, everything else JSON-decoded a single time), then every
registered detector is probed in order.  When a detector matches but its
parser rejects the payload, the registry keeps probing the remaining formats
and finally raises a structured :class:`repro.errors.PlanDetectionError`
carrying every attempted format and its rejection reason — the ``/narrate``
endpoint returns exactly that list in its 400 response body.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import PlanDetectionError, PlanFormatError
from repro.plans.mysql import parse_mysql_json
from repro.plans.operator_tree import OperatorTree
from repro.plans.postgres import parse_postgres_json
from repro.plans.sqlserver import parse_sqlserver_xml

#: canonical format names (importable so callers never typo a string)
FORMAT_OPERATOR_TREE = "operator-tree"
FORMAT_MINI_ENGINE = "mini-engine"
FORMAT_SQLSERVER_XML = "sqlserver-xml"
FORMAT_MYSQL_JSON = "mysql-json"
FORMAT_TREE_JSON = "operator-tree-json"
FORMAT_POSTGRES_JSON = "postgres-json"


@dataclass(frozen=True)
class PlanFormat:
    """One ingestible plan serialization.

    ``detector`` receives the *prepared* payload (JSON strings arrive
    decoded) and must answer cheaply — it gates whether ``parser`` is tried
    during auto-detection.  ``parser`` receives the same prepared payload and
    returns an :class:`OperatorTree` or raises (``PlanFormatError``,
    ``ValueError``, ``TypeError``, ``KeyError``, and ``AttributeError`` are
    treated as "not this format").
    """

    name: str
    detector: Callable[[Any], bool]
    parser: Callable[[Any], OperatorTree]
    aliases: tuple[str, ...] = ()
    description: str = ""

    def matches(self, name: str) -> bool:
        return name == self.name or name in self.aliases


class PlanRegistry:
    """Ordered, extensible dispatch from payloads to plan parsers."""

    def __init__(self, formats: Optional[list[PlanFormat]] = None) -> None:
        self._formats: list[PlanFormat] = list(formats or [])

    def register(self, plan_format: PlanFormat, index: Optional[int] = None) -> None:
        """Add a format (at ``index`` to control auto-detection priority)."""
        existing = [f.name for f in self._formats]
        if plan_format.name in existing:
            raise ValueError(f"plan format {plan_format.name!r} is already registered")
        if index is None:
            self._formats.append(plan_format)
        else:
            self._formats.insert(index, plan_format)

    def formats(self) -> list[str]:
        """Registered format names, in detection order."""
        return [f.name for f in self._formats]

    def resolve(self, name: str) -> PlanFormat:
        """The format registered under ``name`` (or one of its aliases)."""
        for plan_format in self._formats:
            if plan_format.matches(name):
                return plan_format
        raise PlanDetectionError(
            f"unknown plan format {name!r}; registered formats: "
            + ", ".join(self.formats()),
            attempted_formats=self.formats(),
        )

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    @staticmethod
    def _prepare(payload: Any) -> Any:
        """Normalize a payload for detection: decode JSON text exactly once.

        XML stays text (sniffed by the leading ``<``); non-JSON text stays
        text too, so detectors can reject it and the final error names the
        decode failure.
        """
        if isinstance(payload, str):
            stripped = payload.lstrip()
            if stripped.startswith("<"):
                return stripped
            if stripped[:1] in ("{", "["):
                try:
                    return json.loads(stripped)
                except json.JSONDecodeError:
                    return stripped
        return payload

    def sniff(self, payload: Any) -> Optional[str]:
        """The name of the first format whose detector accepts ``payload``."""
        prepared = self._prepare(payload)
        for plan_format in self._formats:
            try:
                if plan_format.detector(prepared):
                    return plan_format.name
            except Exception:
                continue
        return None

    def parse(self, payload: Any, plan_format: Optional[str] = None) -> OperatorTree:
        """Ingest ``payload``, auto-detecting the format unless one is named."""
        return self.ingest(payload, plan_format)[0]

    def ingest(
        self, payload: Any, plan_format: Optional[str] = None
    ) -> tuple[OperatorTree, str]:
        """Ingest ``payload`` and report which format actually parsed it.

        Auto-detection tries every format whose detector matches; a matching
        detector with a failing parser does not abort the search.  When
        nothing succeeds — or a payload is malformed for an explicitly named
        format — the raised :class:`PlanDetectionError` records each
        attempted format and why it was rejected.
        """
        prepared = self._prepare(payload)
        if plan_format is not None:
            resolved = self.resolve(plan_format)
            try:
                return resolved.parser(prepared), resolved.name
            except (
                PlanFormatError,
                ValueError,
                TypeError,
                KeyError,
                AttributeError,
            ) as error:
                raise PlanDetectionError(
                    f"payload is not valid {resolved.name}: {error}",
                    attempted_formats=[resolved.name],
                ) from error
        attempted: list[str] = []
        reasons: list[str] = []
        for candidate in self._formats:
            try:
                detected = candidate.detector(prepared)
            except Exception:
                detected = False
            if not detected:
                continue
            attempted.append(candidate.name)
            try:
                return candidate.parser(prepared), candidate.name
            except (
                PlanFormatError,
                ValueError,
                TypeError,
                KeyError,
                AttributeError,
            ) as error:
                reasons.append(f"{candidate.name}: {error}")
        if not attempted:
            attempted = self.formats()
            detail = f"payload of type {type(payload).__name__} matched no registered detector"
        else:
            detail = "; ".join(reasons) if reasons else "no parser accepted the payload"
        raise PlanDetectionError(
            "could not ingest the plan payload — attempted formats: "
            + ", ".join(attempted)
            + f" ({detail})",
            attempted_formats=attempted,
        )


# ---------------------------------------------------------------------------
# built-in formats
# ---------------------------------------------------------------------------


def _is_operator_tree(payload: Any) -> bool:
    return isinstance(payload, OperatorTree)


def _parse_operator_tree(payload: Any) -> OperatorTree:
    if not isinstance(payload, OperatorTree):
        raise PlanFormatError(
            f"expected an OperatorTree instance, got {type(payload).__name__}"
        )
    return payload


def _is_mini_engine_plan(payload: Any) -> bool:
    # duck-typed so repro.plans does not import the engine at detection time
    return hasattr(payload, "root") and hasattr(payload, "statement_text")


def _parse_mini_engine(payload: Any) -> OperatorTree:
    from repro.sqlengine.explain import to_postgres_dict

    return parse_postgres_json(to_postgres_dict(payload))


def _is_sqlserver_xml(payload: Any) -> bool:
    return isinstance(payload, str) and payload.lstrip().startswith("<")


def _is_mysql_json(payload: Any) -> bool:
    return isinstance(payload, dict) and "query_block" in payload


def _is_tree_dict(payload: Any) -> bool:
    return isinstance(payload, dict) and isinstance(payload.get("root"), dict)


def _is_postgres_json(payload: Any) -> bool:
    if isinstance(payload, list):
        return bool(payload) and isinstance(payload[0], dict)
    return isinstance(payload, dict) and ("Plan" in payload or "Node Type" in payload)


def default_registry() -> PlanRegistry:
    """A fresh registry with every built-in format, in detection order.

    Order matters: Python-object formats first (exact ``isinstance``/duck
    checks), then XML, then the JSON dialects from most to least specific —
    PostgreSQL last because its detector is the loosest.
    """
    return PlanRegistry(
        [
            PlanFormat(
                name=FORMAT_OPERATOR_TREE,
                aliases=("tree",),
                detector=_is_operator_tree,
                parser=_parse_operator_tree,
                description="an already-parsed repro.plans OperatorTree (pass-through)",
            ),
            PlanFormat(
                name=FORMAT_MINI_ENGINE,
                aliases=("engine", "physical-plan"),
                detector=_is_mini_engine_plan,
                parser=_parse_mini_engine,
                description="a repro.sqlengine PhysicalPlan (narrated as PostgreSQL)",
            ),
            PlanFormat(
                name=FORMAT_SQLSERVER_XML,
                aliases=("xml", "sqlserver", "mssql"),
                detector=_is_sqlserver_xml,
                parser=parse_sqlserver_xml,
                description="SQL Server showplan XML",
            ),
            PlanFormat(
                name=FORMAT_MYSQL_JSON,
                aliases=("mysql",),
                detector=_is_mysql_json,
                parser=parse_mysql_json,
                description="MySQL EXPLAIN FORMAT=JSON",
            ),
            PlanFormat(
                name=FORMAT_TREE_JSON,
                aliases=("tree-json",),
                detector=_is_tree_dict,
                parser=OperatorTree.from_dict,
                description="the OperatorTree.to_dict() wire format",
            ),
            PlanFormat(
                name=FORMAT_POSTGRES_JSON,
                aliases=("json", "pg", "postgres", "postgresql"),
                detector=_is_postgres_json,
                parser=parse_postgres_json,
                description="PostgreSQL EXPLAIN (FORMAT JSON)",
            ),
        ]
    )
