"""Parse MySQL ``EXPLAIN FORMAT=JSON`` output into an operator tree.

MySQL's optimizer trace nests the plan inside a ``query_block`` object whose
wrapper keys (``ordering_operation``, ``grouping_operation``,
``duplicates_removal``) each contain the next stage, bottoming out in either a
single ``table`` access or a ``nested_loop`` array — MySQL's executor joins
exclusively with (block) nested loops, so an N-way join is a flat list of N
table accesses read left to right.

The adapter maps MySQL's vocabulary onto the operator names of the PostgreSQL
POEM catalog (``access_type: ALL`` → ``Seq Scan``, ``ref``/``range``/
``eq_ref`` → ``Index Scan``, ``nested_loop`` → left-deep ``Nested Loop``
trees, and so on).  Every MySQL operator has a direct PostgreSQL analogue, so
narration reuses the existing catalog — ``repro.core.lantern`` maps the
``"mysql"`` source to the PostgreSQL POEM source for exactly this reason —
while the tree keeps ``source="mysql"`` for provenance.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.errors import PlanFormatError
from repro.plans.operator_tree import (
    ATTR_ALIAS,
    ATTR_FILTER,
    ATTR_INDEX,
    ATTR_INDEX_COND,
    ATTR_JOIN_COND,
    ATTR_RELATION,
    OperatorNode,
    OperatorTree,
)

#: MySQL access types → the operator name used for the scan node.  ``index``
#: is MySQL's full-index scan (the index alone is read end to end), hence
#: ``Index Only Scan``; the lookup types all become ``Index Scan``.
ACCESS_TYPE_OPERATORS = {
    "ALL": "Seq Scan",
    "system": "Seq Scan",
    "index": "Index Only Scan",
    "range": "Index Scan",
    "ref": "Index Scan",
    "ref_or_null": "Index Scan",
    "eq_ref": "Index Scan",
    "const": "Index Scan",
    "fulltext": "Index Scan",
    "index_merge": "Index Scan",
    "unique_subquery": "Index Scan",
    "index_subquery": "Index Scan",
}

#: wrapper keys of a query block, outermost first — the order MySQL nests
#: them when several apply to the same block
_WRAPPER_KEYS = ("ordering_operation", "duplicates_removal", "grouping_operation")


def _cost(info: Any) -> float:
    """Total cost out of a MySQL ``cost_info`` object (values are strings)."""
    if not isinstance(info, Mapping):
        return 0.0
    total = 0.0
    for key in ("query_cost", "prefix_cost", "read_cost", "eval_cost"):
        try:
            total += float(info.get(key, 0) or 0)
        except (TypeError, ValueError):
            continue
    return total


def _parse_table(entry: Mapping[str, Any]) -> OperatorNode:
    if "table_name" not in entry:
        raise PlanFormatError("MySQL table entry is missing 'table_name'")
    access_type = entry.get("access_type", "ALL")
    name = ACCESS_TYPE_OPERATORS.get(access_type)
    if name is None:
        raise PlanFormatError(f"unknown MySQL access_type {access_type!r}")
    attributes: dict[str, Any] = {
        ATTR_RELATION: entry["table_name"],
        ATTR_ALIAS: entry.get("alias", entry["table_name"]),
    }
    if entry.get("key"):
        attributes[ATTR_INDEX] = entry["key"]
    if entry.get("index_condition"):
        # index condition pushdown: the predicate evaluated inside the index
        attributes[ATTR_INDEX_COND] = entry["index_condition"]
    if entry.get("attached_condition"):
        attributes[ATTR_FILTER] = entry["attached_condition"]
    rows = entry.get("rows_examined_per_scan", entry.get("rows_produced_per_join", 0))
    try:
        rows = float(rows or 0)
    except (TypeError, ValueError):
        rows = 0.0
    return OperatorNode(
        name=name,
        attributes=attributes,
        estimated_rows=rows,
        estimated_cost=_cost(entry.get("cost_info")),
        raw=dict(entry),
    )


def _join_condition(entry: Mapping[str, Any]) -> str | None:
    """The lookup predicate MySQL records on an index-driven inner table."""
    table = entry.get("table", entry)
    key = table.get("key")
    ref = table.get("ref")
    if key and isinstance(ref, list) and ref:
        return f"{table.get('table_name', '?')}.{key} = ({', '.join(str(r) for r in ref)})"
    return None


def _parse_nested_loop(entries: list) -> OperatorNode:
    """A ``nested_loop`` array → a left-deep tree of ``Nested Loop`` joins."""
    if not entries:
        raise PlanFormatError("MySQL nested_loop array is empty")
    nodes: list[OperatorNode] = []
    conditions: list[str | None] = []
    for entry in entries:
        if not isinstance(entry, Mapping) or "table" not in entry:
            raise PlanFormatError("MySQL nested_loop entries must contain 'table' objects")
        nodes.append(_parse_table(entry["table"]))
        conditions.append(_join_condition(entry))
    left = nodes[0]
    for inner, condition in zip(nodes[1:], conditions[1:]):
        attributes: dict[str, Any] = {}
        if condition:
            attributes[ATTR_JOIN_COND] = condition
        left = OperatorNode(
            name="Nested Loop",
            children=[left, inner],
            attributes=attributes,
            estimated_rows=max(left.estimated_rows, inner.estimated_rows),
            estimated_cost=left.estimated_cost + inner.estimated_cost,
        )
    return left


def _grouping_name(block: Mapping[str, Any]) -> str:
    if block.get("using_temporary_table"):
        return "HashAggregate"
    if block.get("using_filesort"):
        return "GroupAggregate"
    return "Aggregate"


def _parse_block(block: Mapping[str, Any]) -> OperatorNode:
    """One query-block level: peel wrapper operations, then reach the access."""
    for key in _WRAPPER_KEYS:
        if key in block:
            inner = block[key]
            if not isinstance(inner, Mapping):
                raise PlanFormatError(f"MySQL {key} must be an object")
            child = _parse_block(inner)
            if key == "ordering_operation":
                name = "Sort"
            elif key == "duplicates_removal":
                name = "Unique"
            else:
                name = _grouping_name(inner)
            return OperatorNode(
                name=name,
                children=[child],
                estimated_rows=child.estimated_rows,
                estimated_cost=child.estimated_cost + _cost(inner.get("cost_info")),
            )
    if "nested_loop" in block:
        if not isinstance(block["nested_loop"], list):
            raise PlanFormatError("MySQL nested_loop must be an array")
        return _parse_nested_loop(block["nested_loop"])
    if "table" in block:
        if not isinstance(block["table"], Mapping):
            raise PlanFormatError("MySQL table must be an object")
        return _parse_table(block["table"])
    raise PlanFormatError(
        "MySQL query block has no recognized access "
        "(expected one of table/nested_loop/" + "/".join(_WRAPPER_KEYS) + ")"
    )


def parse_mysql_json(document: str | Mapping[str, Any]) -> OperatorTree:
    """Parse ``EXPLAIN FORMAT=JSON`` output (text or already-decoded objects)."""
    if isinstance(document, str):
        try:
            document = json.loads(document)
        except json.JSONDecodeError as error:
            raise PlanFormatError(f"invalid MySQL EXPLAIN JSON: {error}") from error
    if not isinstance(document, Mapping):
        raise PlanFormatError(
            f"unsupported MySQL EXPLAIN payload: {type(document).__name__}"
        )
    block = document.get("query_block")
    if not isinstance(block, Mapping):
        raise PlanFormatError("MySQL EXPLAIN JSON has no 'query_block' object")
    root = _parse_block(block)
    if root.estimated_cost == 0.0:
        root.estimated_cost = _cost(block.get("cost_info"))
    # real EXPLAIN JSON has no query text; tooling (and our serializer) may
    # attach it as a sibling "query" key
    query_text = document.get("query", "")
    return OperatorTree(root=root, source="mysql", query_text=query_text)
