"""Parse SQL Server showplan-style XML into an operator tree."""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from typing import Optional

from repro.errors import PlanFormatError
from repro.plans.operator_tree import (
    ATTR_AGGREGATES,
    ATTR_ALIAS,
    ATTR_FILTER,
    ATTR_GROUP_KEYS,
    ATTR_INDEX,
    ATTR_INDEX_COND,
    ATTR_JOIN_COND,
    ATTR_LIMIT,
    ATTR_RELATION,
    ATTR_SORT_KEYS,
    OperatorNode,
    OperatorTree,
)


def _strip_namespace(tag: str) -> str:
    return tag.split("}", 1)[1] if "}" in tag else tag


def _find_child(element: ElementTree.Element, name: str) -> Optional[ElementTree.Element]:
    for child in element:
        if _strip_namespace(child.tag) == name:
            return child
    return None


def _find_all(element: ElementTree.Element, name: str) -> list[ElementTree.Element]:
    return [child for child in element if _strip_namespace(child.tag) == name]


def _parse_relop(element: ElementTree.Element) -> OperatorNode:
    physical = element.get("PhysicalOp")
    if not physical:
        raise PlanFormatError("RelOp element is missing PhysicalOp attribute")
    attributes: dict[str, object] = {}
    logical = element.get("LogicalOp")
    if logical:
        attributes["logical_op"] = logical
    table_object = _find_child(element, "Object")
    if table_object is not None:
        attributes[ATTR_RELATION] = table_object.get("Table")
        attributes[ATTR_ALIAS] = table_object.get("Alias", table_object.get("Table"))
    if element.get("Index"):
        attributes[ATTR_INDEX] = element.get("Index")
    seek = _find_child(element, "SeekPredicate")
    if seek is not None and seek.text:
        attributes[ATTR_INDEX_COND] = seek.text
    predicate = _find_child(element, "Predicate")
    if predicate is not None and predicate.text:
        attributes[ATTR_FILTER] = predicate.text
    join_predicate = _find_child(element, "JoinPredicate")
    if join_predicate is not None and join_predicate.text:
        attributes[ATTR_JOIN_COND] = join_predicate.text
    order_by = _find_child(element, "OrderBy")
    if order_by is not None and order_by.text:
        attributes[ATTR_SORT_KEYS] = [key.strip() for key in order_by.text.split(",")]
    group_by = _find_child(element, "GroupBy")
    if group_by is not None and group_by.text:
        attributes[ATTR_GROUP_KEYS] = [key.strip() for key in group_by.text.split(",")]
    aggregates = _find_child(element, "Aggregates")
    if aggregates is not None and aggregates.text:
        attributes[ATTR_AGGREGATES] = [call.strip() for call in aggregates.text.split(",")]
    if element.get("TopExpression"):
        attributes[ATTR_LIMIT] = int(element.get("TopExpression"))

    name = physical
    if physical == "Hash Match" and logical and logical not in ("Inner Join", "Outer Join"):
        # "Hash Match" doubles as join and aggregate in SQL Server; keep the
        # logical role in the operator name so labelling stays unambiguous.
        name = f"Hash Match ({logical})"
    node = OperatorNode(
        name=name,
        attributes=attributes,
        estimated_rows=float(element.get("EstimateRows", 0) or 0),
        estimated_cost=float(element.get("EstimatedTotalSubtreeCost", 0.0) or 0.0),
        raw={"attrib": dict(element.attrib)},
    )
    for child in _find_all(element, "RelOp"):
        node.children.append(_parse_relop(child))
    return node


def parse_sqlserver_xml(document: str) -> OperatorTree:
    """Parse a showplan XML document into an :class:`OperatorTree`."""
    try:
        root = ElementTree.fromstring(document)
    except ElementTree.ParseError as error:
        raise PlanFormatError(f"invalid showplan XML: {error}") from error
    query_text = ""
    relop: Optional[ElementTree.Element] = None
    for element in root.iter():
        tag = _strip_namespace(element.tag)
        if tag == "StmtSimple" and not query_text:
            query_text = element.get("StatementText", "")
        if tag == "QueryPlan" and relop is None:
            children = _find_all(element, "RelOp")
            if children:
                relop = children[0]
    if relop is None:
        raise PlanFormatError("showplan XML contains no RelOp elements")
    return OperatorTree(root=_parse_relop(relop), source="sqlserver", query_text=query_text)
