"""The physical operator tree abstraction (paper §3).

An :class:`OperatorTree` is the engine-neutral form of a QEP: nodes carry the
engine-specific operator *name* (``Hash Join`` in PostgreSQL, ``Hash Match``
in SQL Server) plus a normalized attribute dictionary so downstream code can
reach the relation, conditions, and keys without knowing the source dialect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

#: Normalized attribute keys available on every node (when applicable).
ATTR_RELATION = "relation"
ATTR_ALIAS = "alias"
ATTR_INDEX = "index"
ATTR_FILTER = "filter"
ATTR_INDEX_COND = "index_cond"
ATTR_JOIN_COND = "join_cond"
ATTR_SORT_KEYS = "sort_keys"
ATTR_GROUP_KEYS = "group_keys"
ATTR_AGGREGATES = "aggregates"
ATTR_STRATEGY = "strategy"
ATTR_LIMIT = "limit"
ATTR_OUTPUT = "output"


@dataclass
class OperatorNode:
    """One physical operator in a QEP."""

    name: str
    children: list["OperatorNode"] = field(default_factory=list)
    attributes: dict[str, Any] = field(default_factory=dict)
    estimated_rows: float = 0.0
    estimated_cost: float = 0.0
    raw: dict[str, Any] = field(default_factory=dict)

    # -- attribute accessors ------------------------------------------------

    @property
    def relation(self) -> Optional[str]:
        return self.attributes.get(ATTR_RELATION)

    @property
    def alias(self) -> Optional[str]:
        return self.attributes.get(ATTR_ALIAS) or self.relation

    @property
    def filter_condition(self) -> Optional[str]:
        return self.attributes.get(ATTR_FILTER)

    @property
    def join_condition(self) -> Optional[str]:
        return self.attributes.get(ATTR_JOIN_COND)

    @property
    def index_condition(self) -> Optional[str]:
        return self.attributes.get(ATTR_INDEX_COND)

    @property
    def sort_keys(self) -> list[str]:
        return list(self.attributes.get(ATTR_SORT_KEYS, []))

    @property
    def group_keys(self) -> list[str]:
        return list(self.attributes.get(ATTR_GROUP_KEYS, []))

    @property
    def aggregates(self) -> list[str]:
        return list(self.attributes.get(ATTR_AGGREGATES, []))

    @property
    def is_leaf(self) -> bool:
        return not self.children

    # -- traversal -----------------------------------------------------------

    def walk(self) -> Iterator["OperatorNode"]:
        """Pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.walk()

    def post_order(self) -> Iterator["OperatorNode"]:
        """Post-order traversal (children before parents) — the narration order."""
        for child in self.children:
            yield from child.post_order()
        yield self

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    def find(self, name: str) -> list["OperatorNode"]:
        """All descendants (including self) whose operator name matches."""
        lowered = name.lower()
        return [node for node in self.walk() if node.name.lower() == lowered]

    def describe(self) -> str:
        parts = [self.name]
        if self.relation:
            parts.append(f"on {self.relation}")
        condition = self.join_condition or self.index_condition or self.filter_condition
        if condition:
            parts.append(f"[{condition}]")
        return " ".join(parts)

    # -- wire serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe dict of this node (``raw`` is dropped — it may hold
        engine objects that do not survive serialization)."""
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "estimated_rows": self.estimated_rows,
            "estimated_cost": self.estimated_cost,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "OperatorNode":
        if not isinstance(payload, dict) or "name" not in payload:
            raise ValueError("operator node dict needs at least a 'name' key")
        return cls(
            name=payload["name"],
            attributes=dict(payload.get("attributes", {})),
            estimated_rows=float(payload.get("estimated_rows", 0.0)),
            estimated_cost=float(payload.get("estimated_cost", 0.0)),
            children=[cls.from_dict(child) for child in payload.get("children", [])],
        )


@dataclass
class OperatorTree:
    """A full QEP: the root operator plus provenance metadata."""

    root: OperatorNode
    source: str = "postgresql"
    query_text: str = ""

    def walk(self) -> Iterator[OperatorNode]:
        return self.root.walk()

    def post_order(self) -> Iterator[OperatorNode]:
        return self.root.post_order()

    def node_count(self) -> int:
        return self.root.node_count()

    def depth(self) -> int:
        return self.root.depth()

    def operator_names(self) -> list[str]:
        """Operator names in pre-order — useful for tests and act statistics."""
        return [node.name for node in self.walk()]

    def leaves(self) -> list[OperatorNode]:
        return [node for node in self.walk() if node.is_leaf]

    def relations(self) -> list[str]:
        """Base relations touched by the plan, in pre-order, without duplicates."""
        seen: list[str] = []
        for node in self.walk():
            if node.relation and node.relation not in seen:
                seen.append(node.relation)
        return seen

    def map_nodes(self, function: Callable[[OperatorNode], Any]) -> list[Any]:
        return [function(node) for node in self.walk()]

    # -- wire serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The JSON-safe form exchanged with LANTERN-SERVE clients.

        This is the ``operator-tree-json`` wire format of the plan-ingestion
        registry: a client that already holds a parsed :class:`OperatorTree`
        can ship it to ``/narrate`` without re-serializing to an engine
        dialect.
        """
        return {"source": self.source, "query_text": self.query_text, "root": self.root.to_dict()}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "OperatorTree":
        if not isinstance(payload, dict) or not isinstance(payload.get("root"), dict):
            raise ValueError("operator tree dict needs a 'root' object")
        return cls(
            root=OperatorNode.from_dict(payload["root"]),
            source=payload.get("source", "postgresql"),
            query_text=payload.get("query_text", ""),
        )
