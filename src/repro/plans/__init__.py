"""Engine-independent representation of query execution plans.

LANTERN consumes QEPs in whatever serialization the RDBMS exposes
(PostgreSQL JSON, SQL Server showplan XML, MySQL EXPLAIN JSON).  This
package parses those formats into a single
:class:`~repro.plans.operator_tree.OperatorTree` abstraction with normalized
attributes, which is what the rest of the pipeline (POOL catalogs,
RULE-LANTERN, act decomposition) operates on.  The
:class:`~repro.plans.registry.PlanRegistry` front door auto-detects which
serialization a payload is in and dispatches to the right parser.
"""

from repro.plans.mysql import parse_mysql_json
from repro.plans.operator_tree import OperatorNode, OperatorTree
from repro.plans.postgres import parse_postgres_json, plan_from_database
from repro.plans.registry import PlanFormat, PlanRegistry, default_registry
from repro.plans.sqlserver import parse_sqlserver_xml
from repro.plans.visual import render_visual_tree

__all__ = [
    "OperatorNode",
    "OperatorTree",
    "PlanFormat",
    "PlanRegistry",
    "default_registry",
    "parse_mysql_json",
    "parse_postgres_json",
    "parse_sqlserver_xml",
    "plan_from_database",
    "render_visual_tree",
]
