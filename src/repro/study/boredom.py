"""A habituation/boredom model for repeated exposure to narration text.

The model follows the qualitative findings the paper builds on:

* habituation — the response to a stimulus decreases with repeated,
  near-identical presentations (Cacioppo & Petty; O'Hanlon);
* simple, homogeneous stimuli and high exposure accelerate boredom
  (Harrison & Crandall);
* diversified messaging reduces tedium (Schumann et al.).

Concretely, each newly read description is compared with the recently read
ones; the more similar it is, the larger the habituation increment.  Novel
wording produces little increment (and slight recovery), so a learner reading
NEURAL-LANTERN's varied output accumulates less boredom than one reading the
repetitive RULE-LANTERN output.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _token_set(text: str) -> frozenset[str]:
    return frozenset(word.lower().strip(".,()") for word in text.split() if word)


def text_similarity(first: str, second: str) -> float:
    """Jaccard similarity of the word sets of two descriptions."""
    first_set, second_set = _token_set(first), _token_set(second)
    if not first_set or not second_set:
        return 0.0
    return len(first_set & second_set) / len(first_set | second_set)


@dataclass
class HabituationModel:
    """Tracks one learner's habituation state across a reading session."""

    boredom_proneness: float = 0.5
    recovery_rate: float = 0.03
    memory_window: int = 8
    novelty_threshold: float = 0.55
    state: float = 0.0
    exposures: int = 0
    repetitive_exposures: int = 0
    _history: list[str] = field(default_factory=list)

    def expose(self, text: str) -> float:
        """Read one description; returns the updated habituation state."""
        if self._history:
            recent = self._history[-self.memory_window :]
            similarity = max(text_similarity(text, previous) for previous in recent)
        else:
            similarity = 0.0
        self.exposures += 1
        if similarity >= self.novelty_threshold:
            # repetition: habituation grows with similarity and proneness
            self.repetitive_exposures += 1
            self.state += self.boredom_proneness * (similarity - self.novelty_threshold) * 1.3
        else:
            # novelty: dishabituation / recovery
            self.state = max(0.0, self.state - self.recovery_rate * 2.0)
        self.state = max(0.0, self.state - self.recovery_rate * 0.2)
        self._history.append(text)
        return self.state

    @property
    def repetition_fraction(self) -> float:
        """Fraction of the session's readings that felt like repetition.

        This normalized measure (rather than the raw habituation state, which
        grows with session length) is what maps to the self-reported boredom
        index: a long but varied session bores less than a short monotonous one.
        """
        if not self.exposures:
            return 0.0
        return self.repetitive_exposures / self.exposures

    def expose_all(self, texts: list[str]) -> float:
        for text in texts:
            self.expose(text)
        return self.state

    def reset(self) -> None:
        self.state = 0.0
        self.exposures = 0
        self.repetitive_exposures = 0
        self._history.clear()


def boredom_likert(state: float) -> int:
    """Map a habituation state to the 1–5 boredom index used in Table 7."""
    thresholds = (0.4, 1.0, 2.0, 3.2)
    for likert, threshold in enumerate(thresholds, start=1):
        if state < threshold:
            return likert
    return 5
