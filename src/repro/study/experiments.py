"""Drivers for the paper's surveys and user studies (US 1–US 6, Figures 3, 8, 9, Table 7).

Each driver takes *real artifacts produced by the system* (EXPLAIN JSON
documents, visual trees, RULE-/NEURAL-LANTERN narrations) plus a simulated
learner population, and returns the same distributions the paper plots.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.core.narration import Narration
from repro.study.learner import LearnerProfile, SimulatedLearner
from repro.study.surveys import LikertDistribution, PreferenceShares


class LearnerPopulation:
    """A reproducible population of simulated volunteers."""

    def __init__(self, size: int = 43, seed: int = 2021) -> None:
        rng = random.Random(seed)
        self.learners = [
            SimulatedLearner(LearnerProfile.sample(rng), seed=rng.randrange(1 << 30))
            for _ in range(size)
        ]

    def __len__(self) -> int:
        return len(self.learners)

    def __iter__(self):
        return iter(self.learners)


@dataclass
class StudyMaterials:
    """The artifacts shown to learners during the surveys."""

    json_documents: list[str] = field(default_factory=list)
    xml_documents: list[str] = field(default_factory=list)
    visual_trees: list[str] = field(default_factory=list)
    rule_narrations: list[Narration] = field(default_factory=list)
    neural_texts: list[str] = field(default_factory=list)
    neural_wrong_token_ratio: float = 0.02

    @property
    def rule_texts(self) -> list[str]:
        return [narration.text for narration in self.rule_narrations]

    def average_size(self, artifact: str) -> int:
        documents = {
            "json": self.json_documents,
            "xml": self.xml_documents,
            "visual-tree": self.visual_trees,
            "nl-rule": self.rule_texts,
            "nl-neural": self.neural_texts,
        }[artifact]
        if not documents:
            return 0
        return int(sum(len(document.split()) for document in documents) / len(documents))


# ---------------------------------------------------------------------------
# Figure 3 — preliminary survey of QEP formats (62 volunteers, 3 formats)
# ---------------------------------------------------------------------------


def format_preference_survey(
    materials: StudyMaterials, population: LearnerPopulation
) -> PreferenceShares:
    """Which format (JSON, visual tree, NL description) helps most?"""
    shares = PreferenceShares()
    for learner in population:
        ratings = {
            "json": learner.rate_ease("json", materials.average_size("json")),
            "visual-tree": learner.rate_ease("visual-tree", materials.average_size("visual-tree")),
            "nl-rule": learner.rate_ease("nl-rule", materials.average_size("nl-rule")),
        }
        choice = learner.choose_format(ratings)
        shares.add("nl" if choice.startswith("nl") else choice)
    return shares


# ---------------------------------------------------------------------------
# US 1 — Q1 / Q2 / Q3 (Figures 8(b)-(d))
# ---------------------------------------------------------------------------


def q1_ease_of_understanding(
    materials: StudyMaterials, population: LearnerPopulation
) -> dict[str, LikertDistribution]:
    """Q1: ease of understanding per format."""
    results = {fmt: LikertDistribution() for fmt in ("json", "visual-tree", "nl-rule", "nl-neural")}
    for learner in population:
        results["json"].add(learner.rate_ease("json", materials.average_size("json")))
        results["visual-tree"].add(
            learner.rate_ease("visual-tree", materials.average_size("visual-tree"))
        )
        results["nl-rule"].add(learner.rate_ease("nl-rule", materials.average_size("nl-rule")))
        results["nl-neural"].add(learner.rate_ease("nl-neural", materials.average_size("nl-neural")))
    return results


def q2_description_quality(
    population: LearnerPopulation,
    conditions: Mapping[str, float],
    generators: Optional[Mapping[str, str]] = None,
) -> dict[str, LikertDistribution]:
    """Q2: how well does each condition describe the plans?

    ``conditions`` maps a condition name to its wrong-token ratio;
    ``generators`` optionally maps the condition to "rule"/"neural"
    (defaults to neural for any condition that is not exactly "nl-rule").
    """
    results = {condition: LikertDistribution() for condition in conditions}
    for learner in population:
        for condition, wrong_ratio in conditions.items():
            generator = (generators or {}).get(
                condition, "rule" if condition == "nl-rule" else "neural"
            )
            results[condition].add(
                learner.rate_description_quality(wrong_ratio, generator=generator)
            )
    return results


def q3_preferred_format(
    materials: StudyMaterials, population: LearnerPopulation
) -> PreferenceShares:
    """Q3: single most preferred format among JSON, visual tree, RULE, NEURAL."""
    shares = PreferenceShares()
    for learner in population:
        ratings = {
            "json": learner.rate_ease("json", materials.average_size("json")),
            "visual-tree": learner.rate_ease("visual-tree", materials.average_size("visual-tree")),
            "nl-rule": learner.rate_ease("nl-rule", materials.average_size("nl-rule")),
            "nl-neural": learner.rate_ease("nl-neural", materials.average_size("nl-neural")),
        }
        shares.add(learner.choose_format(ratings))
    return shares


# ---------------------------------------------------------------------------
# US 3 — boredom / habituation (Table 7)
# ---------------------------------------------------------------------------


def boredom_study(
    sequences: Mapping[str, Sequence[str]], population: LearnerPopulation
) -> dict[str, LikertDistribution]:
    """Each learner reads every method's output sequence and reports a boredom index."""
    results = {method: LikertDistribution() for method in sequences}
    for learner in population:
        for method, texts in sequences.items():
            results[method].add(learner.read_session(list(texts)))
    return results


def mixed_output_marking(
    labelled_texts: Sequence[tuple[str, str]], population: LearnerPopulation
) -> dict[str, dict[str, int]]:
    """US 3 (second part): learners mark boring vs interesting outputs in a mixed stream.

    ``labelled_texts`` is a sequence of (generator label, text); returns per
    label how many texts were marked boring and how many aroused interest
    (counted once per text if any learner marked it, as in the paper).
    """
    marked_boring: dict[str, set[int]] = {}
    marked_interesting: dict[str, set[int]] = {}
    for learner in population:
        boring, interesting = learner.mark_boring_outputs([text for _, text in labelled_texts])
        for index in boring:
            marked_boring.setdefault(labelled_texts[index][0], set()).add(index)
        for index in interesting:
            marked_interesting.setdefault(labelled_texts[index][0], set()).add(index)
    labels = {label for label, _ in labelled_texts}
    return {
        label: {
            "total": sum(1 for l, _ in labelled_texts if l == label),
            "marked": len(marked_boring.get(label, set())),
            "aroused_interest": len(marked_interesting.get(label, set())),
        }
        for label in labels
    }


# ---------------------------------------------------------------------------
# US 4 — impact of incorrect tokens
# ---------------------------------------------------------------------------


def error_impact_study(
    population: LearnerPopulation, error_samples: Sequence[tuple[int, int]]
) -> int:
    """How many learners find the wrong tokens problematic (rating below 3)?

    ``error_samples`` is a list of (wrong-token count, description length)
    pairs drawn from the actual neural output audit.
    """
    problematic = 0
    for learner in population:
        votes = [
            learner.finds_errors_problematic(wrong, length) for wrong, length in error_samples
        ]
        if votes and sum(votes) / len(votes) > 0.5:
            problematic += 1
    return problematic


# ---------------------------------------------------------------------------
# US 5 — LANTERN vs NEURON
# ---------------------------------------------------------------------------


def lantern_vs_neuron_study(
    population: LearnerPopulation,
    lantern_success_rate: float,
    neuron_success_rate: float,
    lantern_wrong_token_ratio: float = 0.02,
) -> dict[str, LikertDistribution]:
    """Q2 ratings for the two systems given their actual translation coverage.

    A failed translation (NEURON on SQL Server plans) is experienced as an
    unusable description and rated at the bottom of the scale.
    """
    results = {"lantern": LikertDistribution(), "neuron": LikertDistribution()}
    rng = random.Random(77)
    for learner in population:
        for system, success_rate, wrong_ratio, generator in (
            ("lantern", lantern_success_rate, lantern_wrong_token_ratio, "neural"),
            ("neuron", neuron_success_rate, 0.0, "rule"),
        ):
            if rng.random() <= success_rate:
                results[system].add(learner.rate_description_quality(wrong_ratio, generator=generator))
            else:
                results[system].add(rng.choice([1, 1, 2]))
    return results


# ---------------------------------------------------------------------------
# US 6 — presentation modes
# ---------------------------------------------------------------------------


def presentation_study(population: LearnerPopulation) -> PreferenceShares:
    """Document-style text vs NL-annotated visual tree."""
    shares = PreferenceShares()
    for learner in population:
        shares.add(learner.choose_presentation())
    return shares
