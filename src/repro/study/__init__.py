"""Learner-population simulation for the user studies (paper §7.3).

The paper's evaluation relies on surveys of 43–62 student volunteers.  Real
subjects are not available to an offline reproduction, so this package
implements a documented simulator grounded in the habituation/boredom
literature the paper cites: responses decay under repeated exposure to
near-identical text (habituation), diversity restores arousal, comprehension
ratings depend on the readability of the presented artifact and on error
tokens, and per-learner traits (reading skill, boredom proneness, error
tolerance) vary across the population.

The experiment drivers consume *real system output* (actual JSON plans,
visual trees, RULE-/NEURAL-LANTERN narrations), so what is simulated is only
the human judgement, not the artifacts being judged.
"""

from repro.study.boredom import HabituationModel, boredom_likert
from repro.study.learner import LearnerProfile, SimulatedLearner
from repro.study.surveys import LikertDistribution, QEP_FORMATS
from repro.study.experiments import LearnerPopulation

__all__ = [
    "HabituationModel",
    "LearnerPopulation",
    "LearnerProfile",
    "LikertDistribution",
    "QEP_FORMATS",
    "SimulatedLearner",
    "boredom_likert",
]
