"""Survey instruments and result containers."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping

#: The QEP formats compared throughout the paper's surveys.
QEP_FORMATS = ("json", "visual-tree", "nl-rule", "nl-neural")

#: Human-readable labels used when printing benchmark tables.
FORMAT_LABELS = {
    "json": "JSON",
    "xml": "XML",
    "visual-tree": "Visual tree",
    "nl-rule": "RULE-LANTERN",
    "nl-neural": "NEURAL-LANTERN",
    "document": "document-style text",
    "annotated-tree": "annotated visual tree",
}


@dataclass
class LikertDistribution:
    """Counts of 1–5 responses to one survey question."""

    counts: Counter = field(default_factory=Counter)

    def add(self, rating: int) -> None:
        if not 1 <= rating <= 5:
            raise ValueError(f"Likert rating must be 1..5, got {rating}")
        self.counts[rating] += 1

    def extend(self, ratings: Iterable[int]) -> None:
        for rating in ratings:
            self.add(rating)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def count(self, rating: int) -> int:
        return self.counts.get(rating, 0)

    def fraction_above(self, threshold: int = 3) -> float:
        """Share of responses strictly above ``threshold`` (the paper's headline stat)."""
        if not self.total:
            return 0.0
        return sum(count for rating, count in self.counts.items() if rating > threshold) / self.total

    def mean(self) -> float:
        if not self.total:
            return 0.0
        return sum(rating * count for rating, count in self.counts.items()) / self.total

    def as_row(self) -> list[int]:
        return [self.count(rating) for rating in range(1, 6)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LikertDistribution({self.as_row()})"


@dataclass
class PreferenceShares:
    """Result of a "which do you prefer most?" question."""

    votes: Counter = field(default_factory=Counter)

    def add(self, choice: str) -> None:
        self.votes[choice] += 1

    @property
    def total(self) -> int:
        return sum(self.votes.values())

    def share(self, choice: str) -> float:
        if not self.total:
            return 0.0
        return self.votes.get(choice, 0) / self.total

    def ranking(self) -> list[tuple[str, float]]:
        return sorted(
            ((choice, self.share(choice)) for choice in self.votes),
            key=lambda item: item[1],
            reverse=True,
        )


def format_likert_table(distributions: Mapping[str, LikertDistribution]) -> str:
    """Render a {condition -> Likert distribution} mapping as an aligned text table."""
    header = f"{'condition':<28}" + "".join(f"{rating:>6}" for rating in range(1, 6)) + f"{'>3':>8}"
    lines = [header, "-" * len(header)]
    for condition, distribution in distributions.items():
        label = FORMAT_LABELS.get(condition, condition)
        row = "".join(f"{distribution.count(rating):>6}" for rating in range(1, 6))
        lines.append(f"{label:<28}{row}{distribution.fraction_above():>8.1%}")
    return "\n".join(lines)
