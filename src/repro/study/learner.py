"""A simulated database-course learner."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.study.boredom import HabituationModel, boredom_likert


@dataclass
class LearnerProfile:
    """Per-learner traits drawn once per simulated volunteer."""

    reading_skill: float      # 0..1 — comfort with dense technical formats
    boredom_proneness: float  # 0..1 — how quickly repetition bores this learner
    error_tolerance: float    # 0..1 — tolerance for occasional wrong tokens
    visual_affinity: float    # 0..1 — preference for diagrammatic formats
    first_course: bool        # most volunteers take the database course for the first time

    @classmethod
    def sample(cls, rng: random.Random) -> "LearnerProfile":
        return cls(
            reading_skill=rng.betavariate(2.2, 2.0),
            boredom_proneness=rng.betavariate(2.0, 2.2),
            error_tolerance=rng.betavariate(3.0, 1.6),
            visual_affinity=rng.betavariate(2.0, 2.4),
            first_course=rng.random() < 0.85,
        )


#: Baseline readability of each QEP format, before per-learner adjustment.
#: NL narration reads like a textbook; the visual tree is succinct but hides
#: detail; raw JSON/XML assumes vendor-specific knowledge.
_FORMAT_READABILITY = {
    "nl-rule": 0.82,
    "nl-neural": 0.80,
    "visual-tree": 0.62,
    "json": 0.28,
    "xml": 0.26,
}


def _to_likert(score: float) -> int:
    """Map a 0..1 utility score to a 1–5 Likert rating."""
    bounded = min(max(score, 0.0), 1.0)
    return min(5, max(1, int(round(bounded * 4)) + 1))


class SimulatedLearner:
    """One volunteer: rates artifacts, chooses formats, and gets bored."""

    def __init__(self, profile: LearnerProfile, seed: int) -> None:
        self.profile = profile
        self._rng = random.Random(seed)
        self.habituation = HabituationModel(boredom_proneness=0.4 + 0.8 * profile.boredom_proneness)

    # ------------------------------------------------------------------
    # comprehension ratings (Q1 / Q2)
    # ------------------------------------------------------------------

    def rate_ease(self, format_kind: str, size_tokens: int = 0) -> int:
        """Q1: how easy is it to understand the plan in this format?"""
        base = _FORMAT_READABILITY.get(format_kind, 0.5)
        skill_adjustment = (self.profile.reading_skill - 0.5) * (0.35 if format_kind in ("json", "xml") else 0.1)
        length_penalty = min(size_tokens / 4000.0, 0.15) if format_kind in ("json", "xml") else min(size_tokens / 12000.0, 0.05)
        noise = self._rng.gauss(0.0, 0.08)
        return _to_likert(base + skill_adjustment - length_penalty + noise)

    def rate_description_quality(self, wrong_token_ratio: float = 0.0, generator: str = "rule") -> int:
        """Q2: how well does the description explain the execution steps?"""
        base = 0.84 if generator == "rule" else 0.80
        error_penalty = wrong_token_ratio * (1.2 - self.profile.error_tolerance)
        noise = self._rng.gauss(0.0, 0.08)
        return _to_likert(base - error_penalty + noise)

    # ------------------------------------------------------------------
    # preferences (Q3, US 6)
    # ------------------------------------------------------------------

    def choose_format(self, candidates: dict[str, int]) -> str:
        """Q3: pick the most preferred format given this learner's Q1-style ratings."""
        scored = {}
        for format_kind, rating in candidates.items():
            bonus = 0.0
            if format_kind == "visual-tree":
                bonus = self.profile.visual_affinity * 0.8
            if format_kind.startswith("nl"):
                bonus = 0.45
            scored[format_kind] = rating + bonus + self._rng.gauss(0.0, 0.35)
        return max(scored, key=scored.get)

    def choose_presentation(self) -> str:
        """US 6: document-style text vs NL-annotated visual tree."""
        # first-time learners overwhelmingly prefer the familiar textbook style;
        # integrating per-node annotations with the tree costs mental overhead.
        annotated_appeal = self.profile.visual_affinity * 0.55 + (0.0 if self.profile.first_course else 0.25)
        document_appeal = 0.6 + (0.15 if self.profile.first_course else 0.0)
        noise = self._rng.gauss(0.0, 0.1)
        return "annotated-tree" if annotated_appeal + noise > document_appeal else "document"

    # ------------------------------------------------------------------
    # boredom (US 3) and error impact (US 4)
    # ------------------------------------------------------------------

    def read_session(self, descriptions: list[str]) -> int:
        """Read a sequence of descriptions and report the boredom index (1–5).

        The rating reflects how much of the session felt repetitive (the
        normalized habituation measure), scaled by this learner's boredom
        proneness, with self-report noise.
        """
        self.habituation.reset()
        self.habituation.expose_all(descriptions)
        score = self.habituation.repetition_fraction * (0.45 + 0.65 * self.profile.boredom_proneness)
        thresholds = (0.16, 0.34, 0.52, 0.72)
        rating = 5
        for likert, threshold in enumerate(thresholds, start=1):
            if score < threshold:
                rating = likert
                break
        jitter = self._rng.choice([-1, 0, 0, 0, 1])
        return min(5, max(1, rating + jitter))

    def mark_boring_outputs(self, descriptions: list[str]) -> tuple[list[int], list[int]]:
        """Return (indices marked boring, indices that aroused interest)."""
        self.habituation.reset()
        boring: list[int] = []
        interesting: list[int] = []
        previous_state = 0.0
        for index, text in enumerate(descriptions):
            state = self.habituation.expose(text)
            if state - previous_state > 0.12 and state > 0.8:
                boring.append(index)
            elif state < previous_state - 0.02 and index > 0:
                interesting.append(index)
            previous_state = state
        return boring, interesting

    def finds_errors_problematic(self, wrong_token_count: int, description_length: int) -> bool:
        """US 4: does this learner feel wrong tokens hurt comprehension?"""
        if wrong_token_count == 0 or description_length == 0:
            return False
        severity = wrong_token_count / max(description_length, 1)
        return severity * (1.4 - self.profile.error_tolerance) > 0.06 + self._rng.gauss(0.0, 0.015)
