"""LANTERN-SCOPE: the dependency-free tracing + metrics core.

One small substrate shared by serving and training:

* :mod:`repro.obs.tracing` — nested :class:`Span` trees with per-request
  trace ids, a per-thread :class:`Tracer`, the ``GET /trace`` backing
  :class:`TraceStore`, and a process-wide :func:`default_tracer` the
  checkpoint and CLI phases report through;
* :mod:`repro.obs.histogram` — fixed-bucket :class:`Histogram` (stage and
  endpoint latencies) plus the exact :func:`percentile` helper;
* :mod:`repro.obs.prometheus` — text exposition rendering for scrapers;
* :mod:`repro.obs.events` — the structured JSONL sink behind
  ``--trace-log`` and ``--telemetry``.

Pure stdlib, importable anywhere the library is.
"""

from repro.obs.events import JsonEventLog, read_events
from repro.obs.histogram import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Histogram,
    percentile,
)
from repro.obs.prometheus import CONTENT_TYPE, PrometheusWriter, validate_exposition
from repro.obs.tracing import (
    NOOP_SPAN,
    Span,
    TraceStore,
    Tracer,
    default_tracer,
    format_span_tree,
)

__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Histogram",
    "JsonEventLog",
    "NOOP_SPAN",
    "PrometheusWriter",
    "Span",
    "TraceStore",
    "Tracer",
    "default_tracer",
    "format_span_tree",
    "percentile",
    "read_events",
    "validate_exposition",
]
