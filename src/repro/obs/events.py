"""Structured JSON event logs (one JSON object per line).

The shared sink behind ``--trace-log`` on the service and ``--telemetry``
on the training CLI: every event is a flat JSON object stamped with a
wall-clock ``ts``, appended under a lock so concurrent emitters (HTTP
handler threads, the batch worker, training hooks) never interleave bytes.
Lines are flushed eagerly — an operator tailing the file during a run sees
events as they happen, and a crashed process loses at most the line being
written.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Iterable, Union


class JsonEventLog:
    """Append-only JSONL sink; also usable as a context manager."""

    def __init__(self, path: Union[str, Path], append: bool = False) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a" if append else "w", encoding="utf-8")
        self.emitted = 0

    def emit(self, event: dict[str, Any]) -> None:
        """Write one event line (a ``ts`` wall-clock stamp is added)."""
        record = {"ts": round(time.time(), 6), **event}
        line = json.dumps(record, ensure_ascii=False, default=str) + "\n"
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line)
            self._handle.flush()
            self.emitted += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JsonEventLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> Iterable[dict[str, Any]]:
    """Parse a JSONL event file back into dicts (skips blank lines)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
