"""Prometheus text exposition (version 0.0.4) rendering.

A tiny writer for the three metric families LANTERN-SCOPE exports —
counters, gauges, and histograms — producing the line format every
Prometheus-compatible scraper parses::

    # HELP lantern_requests_total Finished HTTP requests.
    # TYPE lantern_requests_total counter
    lantern_requests_total{endpoint="/narrate",status="200"} 41

The same :class:`repro.obs.histogram.Histogram` objects that feed the JSON
``/metrics`` document render here as ``_bucket``/``_sum``/``_count``
series, so scrapers and the JSON dashboard can never disagree about what
was measured.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional, Union

from repro.obs.histogram import Histogram

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

Labels = Optional[dict[str, Any]]


def _escape_label_value(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: Labels, extra: Labels = None) -> str:
    merged: dict[str, Any] = {}
    if labels:
        merged.update(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in merged.items())
    return "{" + inner + "}"


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _format_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    text = f"{bound:.10f}".rstrip("0").rstrip(".")
    return text or "0"


class PrometheusWriter:
    """Accumulates exposition lines; ``render()`` returns the document."""

    def __init__(self, prefix: str = "lantern") -> None:
        self.prefix = prefix
        self._lines: list[str] = []

    def _header(self, name: str, kind: str, help_text: str) -> str:
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {kind}")
        return name

    def counter(
        self,
        name: str,
        help_text: str,
        samples: Iterable[tuple[Labels, Union[int, float]]],
    ) -> None:
        full = self._header(f"{self.prefix}_{name}", "counter", help_text)
        for labels, value in samples:
            self._lines.append(f"{full}{_labels_text(labels)} {_format_value(value)}")

    def gauge(
        self,
        name: str,
        help_text: str,
        samples: Iterable[tuple[Labels, Union[int, float]]],
    ) -> None:
        full = self._header(f"{self.prefix}_{name}", "gauge", help_text)
        for labels, value in samples:
            self._lines.append(f"{full}{_labels_text(labels)} {_format_value(value)}")

    def histogram(
        self,
        name: str,
        help_text: str,
        samples: Iterable[tuple[Labels, Histogram]],
    ) -> None:
        full = self._header(f"{self.prefix}_{name}", "histogram", help_text)
        for labels, histogram in samples:
            for bound, cumulative in histogram.cumulative_buckets():
                bucket_labels = _labels_text(labels, {"le": _format_bound(bound)})
                self._lines.append(f"{full}_bucket{bucket_labels} {cumulative}")
            suffix_labels = _labels_text(labels)
            self._lines.append(f"{full}_sum{suffix_labels} {_format_value(float(histogram.total))}")
            self._lines.append(f"{full}_count{suffix_labels} {histogram.count}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def validate_exposition(text: str) -> int:
    """Cheap line-format check used by tests and the CI smoke job.

    Verifies every non-comment line parses as ``name{labels} value`` with a
    finite-or-Inf float value and balanced label braces; returns the number
    of samples.  Raises ``ValueError`` on the first malformed line.
    """
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line or line.startswith("#"):
            if line.startswith("#") and not (
                line.startswith("# HELP ") or line.startswith("# TYPE ")
            ):
                raise ValueError(f"line {lineno}: unknown comment form: {line!r}")
            continue
        head, _, value_text = line.rpartition(" ")
        if not head:
            raise ValueError(f"line {lineno}: no metric name: {line!r}")
        if value_text not in ("+Inf", "-Inf", "NaN"):
            float(value_text)  # raises ValueError on garbage
        name = head.split("{", 1)[0]
        if not name or not all(c.isalnum() or c in "_:" for c in name):
            raise ValueError(f"line {lineno}: invalid metric name {name!r}")
        if head.count("{") != head.count("}"):
            raise ValueError(f"line {lineno}: unbalanced label braces: {line!r}")
        samples += 1
    if samples == 0:
        raise ValueError("exposition contains no samples")
    return samples
