"""Spans and tracing for LANTERN-SCOPE.

A :class:`Span` is one timed stage of work (admission, queue wait, decode,
...); spans nest into a tree under a root span that carries a trace id.  A
:class:`Tracer` hands out spans, tracks the current span per thread so
nested instrumentation composes without plumbing, collects finished root
spans into a :class:`TraceStore` (the ``GET /trace`` backing store), and can
mirror every Nth finished trace into a structured JSON event log
(``--trace-log``).

Two usage shapes:

* **Thread-local nesting** — ``with tracer.span("checkpoint.load"): ...``
  attaches to whatever span is active on the calling thread (or starts a
  fresh root).  The checkpoint save/load paths and the train/compile CLIs
  use this, so phase timings appear wherever the caller's trace is rooted.
* **Explicit hand-off** — a span object can be carried across threads and
  grown with :meth:`Span.child` / :meth:`Span.add_child_at`.  The serving
  path does this: the HTTP handler opens the request's root span and the
  micro-batch worker attaches queue-wait / batch-assembly / decode children
  to it, so one trace shows where a request spent its time across both
  threads.

Everything is stdlib-only and lock-light: a finished root span is converted
to a plain dict once and only that snapshot is shared, so ``GET /trace``
never races live mutation.  A disabled tracer hands out the shared
:data:`NOOP_SPAN` (falsy, accepts every operation, records nothing) so
instrumented code needs no conditionals.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from typing import Any, Callable, Optional


class _NoopSpan:
    """The do-nothing span a disabled tracer hands out (falsy, shared)."""

    __slots__ = ()

    trace_id = ""
    name = "noop"
    duration_s = 0.0

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def child(self, name: str, **tags: Any) -> "_NoopSpan":
        return self

    def add_child_at(self, name: str, start: float, end: float, **tags: Any) -> "_NoopSpan":
        return self

    def tag(self, **tags: Any) -> "_NoopSpan":
        return self

    def to_dict(self) -> dict[str, Any]:
        return {}


#: the shared falsy span — ``span = span or NOOP_SPAN`` makes optional
#: tracing unconditional downstream
NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, taggable stage; a context manager that closes itself."""

    __slots__ = ("name", "trace_id", "start", "end", "tags", "children", "_tracer", "_parent", "started_at")

    def __init__(
        self,
        name: str,
        tracer: Optional["Tracer"] = None,
        parent: Optional["Span"] = None,
        trace_id: str = "",
        tags: Optional[dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        # tags/children stay None until first use: most spans carry neither,
        # and untracked None beats two GC-tracked containers per span
        self.tags: Optional[dict[str, Any]] = tags or None
        self.children: Optional[list[Span]] = None
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self._tracer = tracer
        self._parent = parent
        #: wall-clock birth time (for log correlation; durations use
        #: perf_counter) — only roots report it, so only roots pay for it
        self.started_at = time.time() if parent is None else 0.0

    def __bool__(self) -> bool:
        return True

    # -- building the tree -------------------------------------------------

    def child(self, name: str, **tags: Any) -> "Span":
        """Open a child span starting now (close it via ``with`` or manually).

        Explicitly-parented children stay off the tracer's thread-local
        stack — the caller already holds the parent, and skipping the
        push/pop keeps the serving hot path cheap.  Code that wants
        stack-based nesting (the CLIs, checkpoint IO) goes through
        :meth:`Tracer.span` instead.
        """
        span = Span(name, tracer=None, parent=self, trace_id=self.trace_id, tags=tags or None)
        self._append_child(span)
        return span

    def add_child_at(self, name: str, start: float, end: float, **tags: Any) -> "Span":
        """Attach an already-finished child with explicit perf_counter times.

        This is how stages measured on another thread (queue wait between
        enqueue and dequeue, say) land in the submitting request's trace.
        Built without ``__init__`` — the caller supplies both clock readings,
        so the constructor's two clock calls would be thrown away.
        """
        span = Span.__new__(Span)
        span.name = name
        span.trace_id = self.trace_id
        span.tags = tags or None
        span.children = None
        span.start = start
        span.end = end
        span._tracer = self._tracer
        span._parent = self
        span.started_at = 0.0
        self._append_child(span)
        return span

    def _append_child(self, span: "Span") -> None:
        if self.children is None:
            self.children = []
        self.children.append(span)

    def tag(self, **tags: Any) -> "Span":
        if self.tags is None:
            self.tags = tags
        else:
            self.tags.update(tags)
        return self

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type: Any, exc: Any, traceback: Any) -> None:
        if exc_type is not None and not (self.tags and "error" in self.tags):
            self.tag(error=exc_type.__name__)
        self.finish()

    def finish(self) -> None:
        """Close the span (idempotent); a closing root is handed to the tracer."""
        if self.end is not None:
            return
        self.end = time.perf_counter()
        if self._tracer is not None:
            self._tracer._pop(self)
            if self._parent is None:
                self._tracer._finish_root(self)

    @property
    def duration_s(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return max(end - self.start, 0.0)

    # -- reporting ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The JSON span tree (root spans carry trace id + wall-clock start)."""
        document: dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_s * 1000.0, 4),
        }
        if self._parent is None:
            document["trace_id"] = self.trace_id
            document["started_at"] = round(self.started_at, 6)
        else:
            # child offsets let a renderer reconstruct the timeline
            document["offset_ms"] = round((self.start - self._root().start) * 1000.0, 4)
        if self.tags:
            document["tags"] = dict(self.tags)
        if self.children:
            document["children"] = [child.to_dict() for child in self.children]
        return document

    def _root(self) -> "Span":
        span = self
        while span._parent is not None:
            span = span._parent
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_s * 1000.0:.3f} ms, children={len(self.children or ())})"


class TraceStore:
    """The last ``window`` finished traces, queryable for the N slowest.

    Holds the finished root spans themselves and renders the dict snapshot
    only when a reader asks (``GET /trace`` is rare, requests are not) — a
    finished root is never mutated again, so read-time rendering races
    nothing, and the serving hot path pays one deque append instead of a
    recursive ``to_dict``.
    """

    def __init__(self, window: int = 256, keep: int = 16) -> None:
        self.window = max(int(window), 1)
        self.keep = max(int(keep), 1)
        self.completed = 0
        self._recent: deque[tuple[float, Span]] = deque(maxlen=self.window)
        self._lock = threading.Lock()

    def add(self, root: Span) -> None:
        with self._lock:
            self.completed += 1
            self._recent.append((root.duration_s, root))

    def slowest(self, n: Optional[int] = None) -> list[dict[str, Any]]:
        """The N slowest traces among the recent window, slowest first."""
        n = self.keep if n is None else max(int(n), 0)
        with self._lock:
            ranked = sorted(self._recent, key=lambda pair: pair[0], reverse=True)
        return [root.to_dict() for _, root in ranked[:n]]

    def latest(self) -> Optional[dict[str, Any]]:
        with self._lock:
            root = self._recent[-1][1] if self._recent else None
        return root.to_dict() if root is not None else None

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
            self.completed = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._recent)


class Tracer:
    """Hands out spans, tracks per-thread nesting, collects finished traces.

    ``log`` is an optional event sink (anything with an ``emit(dict)``
    method, e.g. :class:`repro.obs.events.JsonEventLog`); every
    ``log_every``-th finished trace is emitted as a ``{"event": "trace",
    ...}`` record — deterministic counter sampling, no RNG on the hot path.
    """

    def __init__(
        self,
        enabled: bool = True,
        store: Optional[TraceStore] = None,
        log: Optional[Any] = None,
        log_every: int = 1,
    ) -> None:
        self.enabled = enabled
        self.store = store if store is not None else TraceStore()
        self.log = log
        self.log_every = max(int(log_every), 1)
        self._local = threading.local()
        self._listeners: list[Callable[[Span], None]] = []
        self._ids = itertools.count(1)
        self._id_prefix = f"{os.getpid():x}-"

    # -- span creation -----------------------------------------------------

    def trace(self, name: str, trace_id: Optional[str] = None, **tags: Any):
        """Start a new root span (ignores any active span on this thread).

        ``trace_id`` adopts an id minted elsewhere instead of allocating one —
        the LANTERN-FLEET workers do this with the router-supplied
        ``X-Lantern-Trace-Id`` header, so a request keeps one id across the
        process boundary and the router can graft worker span trees onto its
        own when serving ``GET /trace``.
        """
        if not self.enabled:
            return NOOP_SPAN
        return Span(
            name, tracer=self, trace_id=trace_id or self._next_id(), tags=tags or None
        )

    def span(self, name: str, **tags: Any):
        """A child of this thread's active span, or a fresh root when idle."""
        if not self.enabled:
            return NOOP_SPAN
        parent = self.current()
        if parent is None:
            return self.trace(name, **tags)
        span = Span(name, tracer=self, parent=parent, trace_id=parent.trace_id, tags=tags or None)
        parent._append_child(span)
        return span

    def current(self) -> Optional[Span]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _next_id(self) -> str:
        return self._id_prefix + format(next(self._ids), "06x")

    # -- bookkeeping (called by Span) --------------------------------------

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:  # out-of-order close: drop through it
            stack.remove(span)

    def _finish_root(self, root: Span) -> None:
        self.store.add(root)
        if self.log is not None and (self.store.completed % self.log_every) == 0:
            self.log.emit({"event": "trace", **root.to_dict()})
        for listener in self._listeners:
            listener(root)

    # -- observation -------------------------------------------------------

    def add_finish_listener(self, listener: Callable[[Span], None]) -> None:
        """Call ``listener(root_span)`` whenever a root span finishes."""
        self._listeners.append(listener)

    def last_trace(self) -> Optional[dict[str, Any]]:
        """The most recently finished trace as a dict (None when quiet)."""
        return self.store.latest()


def format_span_tree(trace: dict[str, Any], indent: int = 0) -> str:
    """Render a :meth:`Span.to_dict` tree as indented one-line-per-span text.

    The CLIs print this so phase timings are readable without a UI::

        nlg.compile                      4123.1 ms
          checkpoint.load                   3.9 ms
          compile                        4100.2 ms
    """
    if not trace:
        return ""
    pad = "  " * indent
    tags = trace.get("tags") or {}
    suffix = (
        " [" + ", ".join(f"{key}={value}" for key, value in tags.items()) + "]" if tags else ""
    )
    lines = [f"{pad}{trace.get('name', '?'):<32} {trace.get('duration_ms', 0.0):>10.2f} ms{suffix}"]
    for child in trace.get("children", ()):  # pragma: no branch
        lines.append(format_span_tree(child, indent + 1))
    return "\n".join(lines)


#: process-wide default tracer: checkpoint save/load and the train/compile
#: CLIs report phase timings through it without any wiring
_DEFAULT_TRACER = Tracer()


def default_tracer() -> Tracer:
    return _DEFAULT_TRACER
