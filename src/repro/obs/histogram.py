"""Fixed-bucket histograms (and the exact small-window percentile helper).

The serving telemetry used bounded ring buffers and sorted them per
snapshot; that caps history at the window size and makes every percentile
O(n log n).  :class:`Histogram` replaces them with Prometheus-style
fixed-bucket counting: O(buckets) memory forever, O(log buckets) per
observation, and the same bucket layout feeds both the JSON ``/metrics``
document and the Prometheus text exposition, so internal dashboards and
external scrapers read identical numbers.

Percentiles are estimated by linear interpolation inside the bucket where
the requested rank falls, clamped to the observed min/max — exact for the
single-observation case and within one bucket width otherwise.  The
default bucket ladder spans 0.1 ms .. 10 s (geometric, 1-2.5-5 steps),
which brackets everything LANTERN serves, from a 0.2 ms warm-cache hit to
a cold multi-second training epoch.

:func:`percentile` (exact, for short explicit lists) also lives here so
``repro.service.telemetry`` can re-export it unchanged.

Instances are deliberately lock-free; owners that share one across threads
(e.g. :class:`repro.service.telemetry.ServiceTelemetry`) serialize access
under their own lock, keeping the per-observation cost to one bisect and
a few adds.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional, Sequence

#: seconds; geometric 1-2.5-5 ladder from 0.1 ms to 10 s
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: batch-size buckets (requests per fused decode)
DEFAULT_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` by linear interpolation.

    Exact (sorts the list); meant for short explicit samples.  Histograms
    answer the same question in O(buckets) from counts alone.
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * fraction
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    weight = rank - lower
    return float(ordered[lower] * (1.0 - weight) + ordered[upper] * weight)


class Histogram:
    """Fixed upper-bound buckets + count/sum/min/max, Prometheus-compatible.

    ``bounds`` are inclusive upper bounds in ascending order; observations
    above the last bound land in the implicit overflow (``+Inf``) bucket.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        ordered = tuple(float(bound) for bound in bounds)
        if not ordered or any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ValueError("histogram bounds must be non-empty and strictly increasing")
        self.bounds = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)  # +1: the +Inf bucket
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    # -- statistics --------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Estimated ``fraction``-quantile: linear interpolation inside the
        bucket containing the rank, clamped to the observed [min, max].

        Never returns NaN: an empty histogram answers 0.0, and the clamping
        keeps estimates inside the observed range even in the open-ended
        overflow bucket (where the upper edge is the observed max).
        """
        if not self.count:
            return 0.0
        fraction = min(max(float(fraction), 0.0), 1.0)
        rank = fraction * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[index - 1] if index > 0 else (self.min if self.min is not None else 0.0)
                upper = self.bounds[index] if index < len(self.bounds) else (self.max if self.max is not None else lower)
                within = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * within
                return float(min(max(estimate, self.min), self.max))
            cumulative += bucket_count
        return float(self.max)  # pragma: no cover - rank <= count always lands above

    def snapshot(self, scale: float = 1.0, digits: int = 4) -> dict:
        """Summary statistics dict (``scale`` converts units, e.g. s → ms)."""
        return {
            "count": self.count,
            "mean": round(self.mean * scale, digits),
            "p50": round(self.percentile(0.50) * scale, digits),
            "p90": round(self.percentile(0.90) * scale, digits),
            "p99": round(self.percentile(0.99) * scale, digits),
            "max": round((self.max or 0.0) * scale, digits),
        }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus exposition form: ``(le, cumulative_count)`` pairs, the
        final pair carrying ``le = +inf`` as ``float('inf')``."""
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            cumulative += bucket_count
            pairs.append((bound, cumulative))
        pairs.append((float("inf"), cumulative + self.bucket_counts[-1]))
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, mean={self.mean:.6f}, max={self.max})"
