"""repro — a reproduction of LANTERN (SIGMOD 2021).

LANTERN generates natural-language descriptions of query execution plans to
help database-course learners understand how SQL queries are executed.  This
package re-implements the complete system described in the paper, plus every
substrate it depends on:

* :mod:`repro.sqlengine` — a mini relational engine (parser, optimizer,
  executor, EXPLAIN in PostgreSQL-JSON and SQL Server-XML dialects) standing
  in for the commercial RDBMSs;
* :mod:`repro.plans` — engine-neutral operator trees parsed from those
  dialects;
* :mod:`repro.pool` — the POOL/POEM declarative operator-labelling framework;
* :mod:`repro.core` — RULE-LANTERN (the rule-based narrator), act
  decomposition, presentation modes, and the LANTERN facade;
* :mod:`repro.nlg` — NEURAL-LANTERN: paraphrasing tools, word embeddings,
  the QEP2Seq encoder/decoder with attention, training and metrics;
* :mod:`repro.baselines` — the NEURON baseline;
* :mod:`repro.workloads` — TPC-H / SDSS / IMDB / DBLP style schemas, data
  generators, and query workloads;
* :mod:`repro.study` — the simulated learner population used to regenerate
  the paper's user studies;
* :mod:`repro.service` — LANTERN-SERVE, the concurrent narration service
  (micro-batching HTTP API, plan-format auto-ingestion, live metrics); run
  it with ``python -m repro.service``.

Quickstart::

    from repro.workloads import build_dblp_database
    from repro.core import Lantern

    db = build_dblp_database()
    lantern = Lantern()
    narration = lantern.describe_sql(db, "SELECT count(*) FROM publication p WHERE p.year > 2010")
    print(lantern.render(narration))
"""

from repro.core import Lantern, LanternConfig, Narration, RuleLantern
from repro.plans import (
    OperatorTree,
    PlanRegistry,
    default_registry,
    parse_mysql_json,
    parse_postgres_json,
    parse_sqlserver_xml,
)
from repro.pool import PoolSession, build_default_store
from repro.sqlengine import Database, DataType

__version__ = "1.1.0"

__all__ = [
    "Database",
    "DataType",
    "Lantern",
    "LanternConfig",
    "Narration",
    "OperatorTree",
    "PlanRegistry",
    "PoolSession",
    "RuleLantern",
    "build_default_store",
    "default_registry",
    "parse_mysql_json",
    "parse_postgres_json",
    "parse_sqlserver_xml",
    "__version__",
]
