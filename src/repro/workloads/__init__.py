"""Workloads: schemas, synthetic data generators, and query sets.

The paper evaluates LANTERN on TPC-H, SDSS, IMDB, and DBLP.  None of those
datasets is available offline, so each module builds a deterministic
synthetic instance with the same schema shape and a query workload covering
the same operator mix.  :mod:`repro.workloads.generator` implements the
schema-driven random query generation used to create neural training data
(the role played by Kipf et al.'s generator in the paper).
"""

from repro.workloads.dblp import build_dblp_database
from repro.workloads.generator import GeneratedQuery, RandomQueryGenerator
from repro.workloads.imdb import build_imdb_database
from repro.workloads.sdss import build_sdss_database, sdss_queries
from repro.workloads.tpch import build_tpch_database, tpch_queries

__all__ = [
    "GeneratedQuery",
    "RandomQueryGenerator",
    "build_dblp_database",
    "build_imdb_database",
    "build_sdss_database",
    "build_tpch_database",
    "sdss_queries",
    "tpch_queries",
]
