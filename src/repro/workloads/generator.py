"""Schema-driven random query generation (paper §6.2, after Kipf et al.).

NEURAL-LANTERN needs thousands of plan-diverse queries per database to build
its training set.  The generator walks the schema's join graph, picks a
connected set of relations, and attaches filters built from *actual column
values sampled from the data* (so that selectivities — and therefore plan
shapes — are realistic), plus random aggregation, grouping, ordering,
DISTINCT, and LIMIT clauses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import WorkloadError
from repro.sqlengine import Database, DataType
from repro.sqlengine.types import render_literal


@dataclass(frozen=True)
class JoinEdge:
    """One joinable column pair of the schema's join graph."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str


@dataclass
class GeneratedQuery:
    """A generated SQL query plus the structural choices that produced it."""

    sql: str
    tables: list[str]
    join_count: int
    filter_count: int
    has_aggregation: bool
    has_group_by: bool
    has_order_by: bool
    has_limit: bool
    distinct: bool


class RandomQueryGenerator:
    """Generates random (but valid and selective) queries for one database."""

    def __init__(
        self,
        database: Database,
        join_graph: Sequence[tuple[str, str, str, str]],
        seed: int = 0,
        max_joins: int = 3,
        max_filters: int = 3,
    ) -> None:
        self._database = database
        self._edges = [JoinEdge(*edge) for edge in join_graph]
        if not self._edges:
            raise WorkloadError("the join graph must contain at least one edge")
        self._rng = random.Random(seed)
        self._max_joins = max_joins
        self._max_filters = max_filters
        self._aliases: dict[str, str] = {}
        self._tables = sorted(
            {edge.left_table for edge in self._edges} | {edge.right_table for edge in self._edges}
        )
        for table in self._tables:
            alias = table[0]
            suffix = 1
            while alias in self._aliases.values():
                suffix += 1
                alias = table[0] + str(suffix)
            self._aliases[table] = alias

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def generate(self, count: int) -> list[GeneratedQuery]:
        """Generate ``count`` random queries."""
        return [self.generate_one() for _ in range(count)]

    def generate_one(self) -> GeneratedQuery:
        tables, join_predicates = self._pick_relations()
        filters = self._pick_filters(tables)
        aggregates, group_columns = self._pick_aggregation(tables)
        distinct = not aggregates and self._rng.random() < 0.15
        order_by, limit = self._pick_order_and_limit(tables, aggregates, group_columns)
        select_list = self._build_select_list(tables, aggregates, group_columns, distinct)

        from_clause = ", ".join(f"{table} {self._aliases[table]}" for table in tables)
        where_parts = join_predicates + filters
        sql_parts = [f"SELECT {'DISTINCT ' if distinct else ''}{select_list}", f"FROM {from_clause}"]
        if where_parts:
            sql_parts.append("WHERE " + " AND ".join(where_parts))
        if group_columns:
            sql_parts.append("GROUP BY " + ", ".join(group_columns))
        if order_by:
            sql_parts.append("ORDER BY " + order_by)
        if limit is not None:
            sql_parts.append(f"LIMIT {limit}")
        sql = "\n".join(sql_parts)
        return GeneratedQuery(
            sql=sql,
            tables=list(tables),
            join_count=len(join_predicates),
            filter_count=len(filters),
            has_aggregation=bool(aggregates),
            has_group_by=bool(group_columns),
            has_order_by=bool(order_by),
            has_limit=limit is not None,
            distinct=distinct,
        )

    # ------------------------------------------------------------------
    # structural choices
    # ------------------------------------------------------------------

    def _pick_relations(self) -> tuple[list[str], list[str]]:
        join_count = self._rng.randint(0, self._max_joins)
        start = self._rng.choice(self._tables)
        tables = [start]
        predicates: list[str] = []
        for _ in range(join_count):
            candidates = [
                edge
                for edge in self._edges
                if (edge.left_table in tables) != (edge.right_table in tables)
            ]
            if not candidates:
                break
            edge = self._rng.choice(candidates)
            new_table = edge.right_table if edge.left_table in tables else edge.left_table
            tables.append(new_table)
            left = f"{self._aliases[edge.left_table]}.{edge.left_column}"
            right = f"{self._aliases[edge.right_table]}.{edge.right_column}"
            predicates.append(f"{left} = {right}")
        return tables, predicates

    def _pick_filters(self, tables: list[str]) -> list[str]:
        filters: list[str] = []
        filter_count = self._rng.randint(0, self._max_filters)
        for _ in range(filter_count):
            table = self._rng.choice(tables)
            schema = self._database.catalog.table(table)
            column = self._rng.choice(schema.columns)
            values = [
                value
                for value in self._database.storage.table(table).column_values(column.name)
                if value is not None
            ]
            if not values:
                continue
            value = self._rng.choice(values)
            reference = f"{self._aliases[table]}.{column.name}"
            if column.data_type in (DataType.INTEGER, DataType.FLOAT, DataType.DATE):
                operator = self._rng.choice(["=", "<", "<=", ">", ">="])
                filters.append(f"{reference} {operator} {render_literal(value)}")
            else:
                if self._rng.random() < 0.25 and isinstance(value, str) and len(value) > 3:
                    prefix = value[: max(3, len(value) // 2)].replace("'", "''")
                    filters.append(f"{reference} LIKE '{prefix}%'")
                else:
                    filters.append(f"{reference} = {render_literal(value)}")
        return filters

    def _pick_aggregation(self, tables: list[str]) -> tuple[list[str], list[str]]:
        if self._rng.random() > 0.5:
            return [], []
        aggregates = ["count(*) AS row_count"]
        numeric_columns = self._numeric_columns(tables)
        if numeric_columns and self._rng.random() < 0.7:
            function = self._rng.choice(["sum", "avg", "min", "max"])
            column = self._rng.choice(numeric_columns)
            aggregates.append(f"{function}({column}) AS agg_value")
        group_columns: list[str] = []
        if self._rng.random() < 0.7:
            categorical = self._categorical_columns(tables)
            if categorical:
                group_columns = [self._rng.choice(categorical)]
        return aggregates, group_columns

    def _pick_order_and_limit(
        self, tables: list[str], aggregates: list[str], group_columns: list[str]
    ) -> tuple[Optional[str], Optional[int]]:
        order_by: Optional[str] = None
        if self._rng.random() < 0.45:
            if aggregates:
                order_by = "row_count DESC"
            else:
                columns = self._numeric_columns(tables) or self._categorical_columns(tables)
                if columns:
                    direction = self._rng.choice(["ASC", "DESC"])
                    order_by = f"{self._rng.choice(columns)} {direction}"
        limit = self._rng.choice([None, None, 10, 50, 100]) if order_by else None
        return order_by, limit

    def _build_select_list(
        self,
        tables: list[str],
        aggregates: list[str],
        group_columns: list[str],
        distinct: bool,
    ) -> str:
        if aggregates:
            return ", ".join(group_columns + aggregates)
        columns: list[str] = []
        column_budget = 1 if distinct else self._rng.randint(1, 3)
        for _ in range(column_budget):
            table = self._rng.choice(tables)
            schema = self._database.catalog.table(table)
            column = self._rng.choice(schema.columns)
            reference = f"{self._aliases[table]}.{column.name}"
            if reference not in columns:
                columns.append(reference)
        return ", ".join(columns) if columns else "*"

    # ------------------------------------------------------------------
    # schema helpers
    # ------------------------------------------------------------------

    def _numeric_columns(self, tables: list[str]) -> list[str]:
        columns: list[str] = []
        for table in tables:
            schema = self._database.catalog.table(table)
            for column in schema.columns:
                if column.data_type in (DataType.INTEGER, DataType.FLOAT):
                    columns.append(f"{self._aliases[table]}.{column.name}")
        return columns

    def _categorical_columns(self, tables: list[str]) -> list[str]:
        columns: list[str] = []
        for table in tables:
            schema = self._database.catalog.table(table)
            statistics = self._database.statistics(table)
            for column in schema.columns:
                column_statistics = statistics.column(column.name)
                if column.data_type is DataType.TEXT and 0 < column_statistics.distinct_values <= 64:
                    columns.append(f"{self._aliases[table]}.{column.name}")
        return columns
