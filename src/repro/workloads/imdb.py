"""An IMDB-style schema and synthetic instance (the transfer/test domain).

The paper trains NEURAL-LANTERN on TPC-H + SDSS and tests on IMDB to show
portability across application domains; this module provides the IMDB-shaped
database those test queries run against.
"""

from __future__ import annotations

import random

from repro.sqlengine import Database, DataType

GENRES = ["Drama", "Comedy", "Action", "Thriller", "Documentary", "Horror", "Romance", "Sci-Fi"]
COMPANY_COUNTRIES = ["us", "gb", "fr", "de", "jp", "in", "ca", "it"]
ROLES = ["actor", "actress", "director", "producer", "writer", "composer"]
INFO_TYPES = ["rating", "votes", "budget", "runtime", "language"]


def build_imdb_database(title_count: int = 3000, seed: int = 23) -> Database:
    """Create and populate an IMDB-shaped database."""
    rng = random.Random(seed)
    db = Database("imdb", enable_parallel=False)

    db.create_table("title", [
        ("id", DataType.INTEGER), ("title", DataType.TEXT),
        ("production_year", DataType.INTEGER), ("kind", DataType.TEXT),
        ("genre", DataType.TEXT),
    ], primary_key=("id",))
    db.create_table("name", [
        ("id", DataType.INTEGER), ("name", DataType.TEXT), ("gender", DataType.TEXT),
        ("birth_year", DataType.INTEGER),
    ], primary_key=("id",))
    db.create_table("cast_info", [
        ("id", DataType.INTEGER), ("person_id", DataType.INTEGER),
        ("movie_id", DataType.INTEGER), ("role", DataType.TEXT),
    ])
    db.create_table("company_name", [
        ("id", DataType.INTEGER), ("name", DataType.TEXT), ("country_code", DataType.TEXT),
    ], primary_key=("id",))
    db.create_table("movie_companies", [
        ("id", DataType.INTEGER), ("movie_id", DataType.INTEGER),
        ("company_id", DataType.INTEGER), ("note", DataType.TEXT),
    ])
    db.create_table("movie_info", [
        ("id", DataType.INTEGER), ("movie_id", DataType.INTEGER),
        ("info_type", DataType.TEXT), ("info", DataType.FLOAT),
    ])

    person_count = title_count * 2
    company_count = max(title_count // 10, 20)

    db.insert("title", [
        (
            title_id,
            f"Movie {title_id:05d}",
            rng.randint(1950, 2020),
            rng.choice(["movie", "movie", "movie", "tv series", "video"]),
            rng.choice(GENRES),
        )
        for title_id in range(1, title_count + 1)
    ])
    db.insert("name", [
        (
            person_id,
            f"Person {person_id:06d}",
            rng.choice(["m", "f"]),
            rng.randint(1920, 2000),
        )
        for person_id in range(1, person_count + 1)
    ])
    db.insert("cast_info", [
        (
            cast_id,
            rng.randint(1, person_count),
            rng.randint(1, title_count),
            rng.choice(ROLES),
        )
        for cast_id in range(1, title_count * 4 + 1)
    ])
    db.insert("company_name", [
        (
            company_id,
            f"Studio {company_id:04d}",
            rng.choice(COMPANY_COUNTRIES),
        )
        for company_id in range(1, company_count + 1)
    ])
    db.insert("movie_companies", [
        (
            link_id,
            rng.randint(1, title_count),
            rng.randint(1, company_count),
            rng.choice(["production", "distribution", "co-production"]),
        )
        for link_id in range(1, title_count * 2 + 1)
    ])
    db.insert("movie_info", [
        (
            info_id,
            rng.randint(1, title_count),
            rng.choice(INFO_TYPES),
            round(rng.uniform(1.0, 10.0), 2),
        )
        for info_id in range(1, title_count * 3 + 1)
    ])

    db.create_index("idx_title_id", "title", ["id"])
    db.create_index("idx_cast_info_movie", "cast_info", ["movie_id"])
    db.create_index("idx_cast_info_person", "cast_info", ["person_id"])
    db.create_index("idx_movie_companies_movie", "movie_companies", ["movie_id"])
    db.create_index("idx_movie_info_movie", "movie_info", ["movie_id"])
    db.analyze()
    return db


#: join edges of the IMDB schema used by the random query generator.
IMDB_JOIN_GRAPH: list[tuple[str, str, str, str]] = [
    ("cast_info", "movie_id", "title", "id"),
    ("cast_info", "person_id", "name", "id"),
    ("movie_companies", "movie_id", "title", "id"),
    ("movie_companies", "company_id", "company_name", "id"),
    ("movie_info", "movie_id", "title", "id"),
]
