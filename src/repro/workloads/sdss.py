"""An SDSS (Sloan Digital Sky Survey) style workload.

The paper uses 71 predefined SkyServer queries on SQL Server.  We reproduce
the schema shape (photometric objects, spectroscopic objects, photo-z
estimates, neighbours) with synthetic sky data, and a workload whose plans
exercise the SQL Server operator vocabulary (table scans, index seeks, hash
match joins and aggregates, sorts, TOP).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sqlengine import Database, DataType

OBJECT_CLASSES = ["GALAXY", "STAR", "QSO", "UNKNOWN"]
SURVEYS = ["legacy", "boss", "eboss", "segue1", "segue2"]


@dataclass(frozen=True)
class SdssQuery:
    """One SkyServer-style workload query."""

    number: int
    title: str
    sql: str

    @property
    def name(self) -> str:
        return f"S{self.number}"


def build_sdss_database(object_count: int = 4000, seed: int = 11) -> Database:
    """Create and populate a synthetic SkyServer-like database."""
    rng = random.Random(seed)
    db = Database("sdss", enable_parallel=False)

    db.create_table("photoobj", [
        ("objid", DataType.INTEGER), ("ra", DataType.FLOAT), ("dec", DataType.FLOAT),
        ("u", DataType.FLOAT), ("g", DataType.FLOAT), ("r", DataType.FLOAT),
        ("i", DataType.FLOAT), ("z", DataType.FLOAT), ("type", DataType.TEXT),
        ("clean", DataType.INTEGER),
    ], primary_key=("objid",))
    db.create_table("specobj", [
        ("specobjid", DataType.INTEGER), ("bestobjid", DataType.INTEGER),
        ("class", DataType.TEXT), ("redshift", DataType.FLOAT),
        ("plate", DataType.INTEGER), ("mjd", DataType.INTEGER),
        ("survey", DataType.TEXT),
    ], primary_key=("specobjid",))
    db.create_table("photoz", [
        ("objid", DataType.INTEGER), ("photoz", DataType.FLOAT), ("photozerr", DataType.FLOAT),
    ])
    db.create_table("neighbors", [
        ("objid", DataType.INTEGER), ("neighborobjid", DataType.INTEGER),
        ("distance", DataType.FLOAT),
    ])

    photoobj_rows = []
    for objid in range(1, object_count + 1):
        magnitude = rng.uniform(14.0, 24.0)
        photoobj_rows.append((
            objid,
            rng.uniform(0.0, 360.0),
            rng.uniform(-90.0, 90.0),
            magnitude + rng.uniform(0.0, 2.5),
            magnitude + rng.uniform(-0.5, 1.5),
            magnitude,
            magnitude - rng.uniform(0.0, 0.8),
            magnitude - rng.uniform(0.0, 1.2),
            rng.choice(OBJECT_CLASSES),
            rng.choice([0, 1, 1, 1]),
        ))
    db.insert("photoobj", photoobj_rows)

    spec_count = object_count // 3
    db.insert("specobj", [
        (
            spec_id,
            rng.randint(1, object_count),
            rng.choice(OBJECT_CLASSES[:3]),
            round(rng.uniform(0.0, 3.5), 4),
            rng.randint(266, 12000),
            rng.randint(51600, 59000),
            rng.choice(SURVEYS),
        )
        for spec_id in range(1, spec_count + 1)
    ])
    db.insert("photoz", [
        (rng.randint(1, object_count), round(rng.uniform(0.0, 1.5), 4), round(rng.uniform(0.001, 0.3), 4))
        for _ in range(object_count // 2)
    ])
    db.insert("neighbors", [
        (rng.randint(1, object_count), rng.randint(1, object_count), round(rng.uniform(0.0, 0.5), 5))
        for _ in range(object_count)
    ])

    db.create_index("idx_photoobj_objid", "photoobj", ["objid"])
    db.create_index("idx_specobj_bestobjid", "specobj", ["bestobjid"])
    db.create_index("idx_photoz_objid", "photoz", ["objid"])
    db.analyze()
    return db


#: join edges of the SDSS schema used by the random query generator.
SDSS_JOIN_GRAPH: list[tuple[str, str, str, str]] = [
    ("specobj", "bestobjid", "photoobj", "objid"),
    ("photoz", "objid", "photoobj", "objid"),
    ("neighbors", "objid", "photoobj", "objid"),
]


def sdss_queries() -> list[SdssQuery]:
    """A representative slice of the SkyServer workload (SQL Server dialect plans)."""
    return [
        SdssQuery(1, "bright galaxies", """
            SELECT p.objid, p.ra, p.dec, p.r
            FROM photoobj p
            WHERE p.type = 'GALAXY' AND p.r < 17.5
            ORDER BY p.r
            LIMIT 100"""),
        SdssQuery(2, "spectra of quasars", """
            SELECT s.specobjid, s.redshift, p.ra, p.dec
            FROM specobj s, photoobj p
            WHERE s.bestobjid = p.objid AND s.class = 'QSO' AND s.redshift > 2.0
            ORDER BY s.redshift DESC
            LIMIT 50"""),
        SdssQuery(3, "objects per class", """
            SELECT p.type, count(*) AS n
            FROM photoobj p
            GROUP BY p.type
            ORDER BY n DESC"""),
        SdssQuery(4, "redshift histogram by class", """
            SELECT s.class, count(*) AS n, avg(s.redshift) AS mean_z
            FROM specobj s
            WHERE s.redshift > 0.0
            GROUP BY s.class
            ORDER BY s.class"""),
        SdssQuery(5, "photo-z calibration sample", """
            SELECT p.objid, z.photoz, s.redshift
            FROM photoobj p, photoz z, specobj s
            WHERE p.objid = z.objid AND s.bestobjid = p.objid AND p.clean = 1
            LIMIT 200"""),
        SdssQuery(6, "colour selection of stars", """
            SELECT p.objid, p.u, p.g, p.r
            FROM photoobj p
            WHERE p.type = 'STAR' AND p.u - p.g > 0.5 AND p.g - p.r < 1.2
            LIMIT 500"""),
        SdssQuery(7, "close neighbour pairs", """
            SELECT n.objid, n.neighborobjid, n.distance
            FROM neighbors n, photoobj p
            WHERE n.objid = p.objid AND n.distance < 0.05 AND p.type = 'GALAXY'
            ORDER BY n.distance
            LIMIT 100"""),
        SdssQuery(8, "survey coverage", """
            SELECT s.survey, count(*) AS spectra
            FROM specobj s
            GROUP BY s.survey
            ORDER BY spectra DESC"""),
        SdssQuery(9, "bright object spectra per plate", """
            SELECT s.plate, count(*) AS n
            FROM specobj s, photoobj p
            WHERE s.bestobjid = p.objid AND p.r < 18.0
            GROUP BY s.plate
            HAVING count(*) > 1
            ORDER BY n DESC
            LIMIT 30"""),
        SdssQuery(10, "distinct classes observed", """
            SELECT DISTINCT s.class
            FROM specobj s, photoobj p
            WHERE s.bestobjid = p.objid AND p.clean = 1"""),
        SdssQuery(11, "mean colours per type", """
            SELECT p.type, avg(p.u) AS mean_u, avg(p.g) AS mean_g, avg(p.r) AS mean_r
            FROM photoobj p
            WHERE p.clean = 1
            GROUP BY p.type"""),
        SdssQuery(12, "photo-z outliers", """
            SELECT p.objid, z.photoz, z.photozerr
            FROM photoobj p, photoz z
            WHERE p.objid = z.objid AND z.photozerr > 0.25
            ORDER BY z.photozerr DESC
            LIMIT 100"""),
        SdssQuery(13, "high redshift galaxies", """
            SELECT s.specobjid, s.redshift
            FROM specobj s
            WHERE s.class = 'GALAXY' AND s.redshift BETWEEN 0.5 AND 1.5
            ORDER BY s.redshift DESC
            LIMIT 200"""),
        SdssQuery(14, "neighbour counts", """
            SELECT n.objid, count(*) AS neighbours
            FROM neighbors n
            GROUP BY n.objid
            HAVING count(*) > 1
            ORDER BY neighbours DESC
            LIMIT 50"""),
        SdssQuery(15, "faint clean objects", """
            SELECT count(*) AS n
            FROM photoobj p
            WHERE p.clean = 1 AND p.r > 22.0"""),
        SdssQuery(16, "plate and survey summary", """
            SELECT s.survey, s.plate, count(*) AS n
            FROM specobj s
            WHERE s.mjd > 52000
            GROUP BY s.survey, s.plate
            ORDER BY n DESC
            LIMIT 100"""),
    ]
