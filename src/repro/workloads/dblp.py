"""A small DBLP-style bibliography database (the running example of the paper)."""

from __future__ import annotations

import random

from repro.sqlengine import Database, DataType

VENUES = ["SIGMOD", "VLDB", "ICDE", "EDBT", "CIKM", "KDD", "WWW", "SIGIR"]
MONTHS = [
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
]


def build_dblp_database(publication_count: int = 3000, seed: int = 5) -> Database:
    """Create and populate a DBLP-shaped database (inproceedings/publication/author)."""
    rng = random.Random(seed)
    db = Database("dblp", enable_parallel=False)

    db.create_table("publication", [
        ("pub_key", DataType.TEXT), ("title", DataType.TEXT), ("year", DataType.INTEGER),
        ("pages", DataType.INTEGER),
    ], primary_key=("pub_key",))
    db.create_table("inproceedings", [
        ("paper_key", DataType.TEXT), ("proceeding_key", DataType.TEXT),
        ("venue", DataType.TEXT), ("year", DataType.INTEGER),
    ], primary_key=("paper_key",))
    db.create_table("author", [
        ("author_id", DataType.INTEGER), ("name", DataType.TEXT), ("paper_key", DataType.TEXT),
    ])

    proceeding_count = max(publication_count // 200, 10)
    publications = []
    inproceedings = []
    authors = []
    author_id = 1
    for index in range(1, publication_count + 1):
        venue = rng.choice(VENUES)
        year = rng.randint(2000, 2020)
        proceeding = f"conf/{venue.lower()}/{year}-{rng.randint(1, proceeding_count)}"
        paper_key = f"conf/{venue.lower()}/paper{index}"
        month = rng.choice(MONTHS)
        publications.append((
            paper_key,
            f"A study of topic {index} ({month} edition)",
            year,
            rng.randint(4, 18),
        ))
        inproceedings.append((paper_key, proceeding, venue, year))
        for _ in range(rng.randint(1, 4)):
            authors.append((author_id, f"Author {rng.randint(1, publication_count // 2)}", paper_key))
            author_id += 1

    db.insert("publication", publications)
    db.insert("inproceedings", inproceedings)
    db.insert("author", authors)

    db.create_index("idx_publication_key", "publication", ["pub_key"])
    db.create_index("idx_inproceedings_key", "inproceedings", ["paper_key"])
    db.create_index("idx_author_paper", "author", ["paper_key"])
    db.analyze()
    return db


#: join edges of the DBLP schema used by the random query generator.
DBLP_JOIN_GRAPH: list[tuple[str, str, str, str]] = [
    ("inproceedings", "paper_key", "publication", "pub_key"),
    ("author", "paper_key", "publication", "pub_key"),
]

#: the running-example query of the paper (Example 3.1), adapted to this schema.
EXAMPLE_QUERY = """
    SELECT DISTINCT i.proceeding_key
    FROM inproceedings i, publication p
    WHERE i.paper_key = p.pub_key AND p.title LIKE '%July%'
    GROUP BY i.proceeding_key
    HAVING count(*) > 2
"""
