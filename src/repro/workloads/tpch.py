"""A TPC-H-style workload: schema, synthetic data, and 22 analytical queries.

The data generator is a scaled-down, deterministic stand-in for ``dbgen``:
row counts follow the TPC-H ratios (per scale factor), column domains match
the benchmark's value families (segments, ship modes, order priorities,
dates in 1992–1998), and foreign keys are consistent so every join in the
query set produces rows.

The 22 queries keep each original query's *plan-relevant* structure (joined
relations, filters, grouping, ordering, limits) while staying inside the SQL
subset of the mini engine — subqueries and views are flattened.  What matters
for LANTERN is the mix of physical operators they exercise, not the business
semantics.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass

from repro.sqlengine import Database, DataType

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
]
MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
PART_TYPES = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
PART_MATERIALS = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PKG"]
RETURN_FLAGS = ["R", "A", "N"]
LINE_STATUSES = ["O", "F"]


@dataclass(frozen=True)
class TpchQuery:
    """One workload query: its TPC-H number, a short title, and the SQL text."""

    number: int
    title: str
    sql: str

    @property
    def name(self) -> str:
        return f"Q{self.number}"


def _date(rng: random.Random, start_year: int = 1992, end_year: int = 1998) -> str:
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    day = rng.randint(1, 28)
    return datetime.date(year, month, day).isoformat()


def build_tpch_database(scale: float = 0.01, seed: int = 42) -> Database:
    """Create and populate a TPC-H-shaped database.

    ``scale`` is the fraction of the official SF1 row counts (0.01 keeps the
    benchmark laptop-friendly: 1 500 orders, ~6 000 lineitems).
    """
    rng = random.Random(seed)
    db = Database("tpch", enable_parallel=False)

    db.create_table("region", [
        ("r_regionkey", DataType.INTEGER), ("r_name", DataType.TEXT), ("r_comment", DataType.TEXT),
    ], primary_key=("r_regionkey",))
    db.create_table("nation", [
        ("n_nationkey", DataType.INTEGER), ("n_name", DataType.TEXT),
        ("n_regionkey", DataType.INTEGER), ("n_comment", DataType.TEXT),
    ], primary_key=("n_nationkey",))
    db.create_table("supplier", [
        ("s_suppkey", DataType.INTEGER), ("s_name", DataType.TEXT), ("s_address", DataType.TEXT),
        ("s_nationkey", DataType.INTEGER), ("s_phone", DataType.TEXT), ("s_acctbal", DataType.FLOAT),
    ], primary_key=("s_suppkey",))
    db.create_table("customer", [
        ("c_custkey", DataType.INTEGER), ("c_name", DataType.TEXT), ("c_address", DataType.TEXT),
        ("c_nationkey", DataType.INTEGER), ("c_phone", DataType.TEXT),
        ("c_acctbal", DataType.FLOAT), ("c_mktsegment", DataType.TEXT),
    ], primary_key=("c_custkey",))
    db.create_table("part", [
        ("p_partkey", DataType.INTEGER), ("p_name", DataType.TEXT), ("p_mfgr", DataType.TEXT),
        ("p_brand", DataType.TEXT), ("p_type", DataType.TEXT), ("p_size", DataType.INTEGER),
        ("p_container", DataType.TEXT), ("p_retailprice", DataType.FLOAT),
    ], primary_key=("p_partkey",))
    db.create_table("partsupp", [
        ("ps_partkey", DataType.INTEGER), ("ps_suppkey", DataType.INTEGER),
        ("ps_availqty", DataType.INTEGER), ("ps_supplycost", DataType.FLOAT),
    ])
    db.create_table("orders", [
        ("o_orderkey", DataType.INTEGER), ("o_custkey", DataType.INTEGER),
        ("o_orderstatus", DataType.TEXT), ("o_totalprice", DataType.FLOAT),
        ("o_orderdate", DataType.DATE), ("o_orderpriority", DataType.TEXT),
        ("o_clerk", DataType.TEXT), ("o_shippriority", DataType.INTEGER),
    ], primary_key=("o_orderkey",))
    db.create_table("lineitem", [
        ("l_orderkey", DataType.INTEGER), ("l_partkey", DataType.INTEGER),
        ("l_suppkey", DataType.INTEGER), ("l_linenumber", DataType.INTEGER),
        ("l_quantity", DataType.FLOAT), ("l_extendedprice", DataType.FLOAT),
        ("l_discount", DataType.FLOAT), ("l_tax", DataType.FLOAT),
        ("l_returnflag", DataType.TEXT), ("l_linestatus", DataType.TEXT),
        ("l_shipdate", DataType.DATE), ("l_commitdate", DataType.DATE),
        ("l_receiptdate", DataType.DATE), ("l_shipmode", DataType.TEXT),
        ("l_shipinstruct", DataType.TEXT),
    ])

    supplier_count = max(int(10_000 * scale), 10)
    customer_count = max(int(150_000 * scale), 50)
    part_count = max(int(200_000 * scale), 50)
    order_count = max(int(1_500_000 * scale), 150)

    db.insert("region", [(key, name, f"region {name.lower()}") for key, name in enumerate(REGIONS)])
    db.insert("nation", [
        (key, name, region, f"nation {name.lower()}") for key, (name, region) in enumerate(NATIONS)
    ])
    db.insert("supplier", [
        (
            key,
            f"Supplier#{key:09d}",
            f"{rng.randint(1, 999)} Commerce Way",
            rng.randrange(len(NATIONS)),
            f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
            round(rng.uniform(-999.99, 9999.99), 2),
        )
        for key in range(1, supplier_count + 1)
    ])
    db.insert("customer", [
        (
            key,
            f"Customer#{key:09d}",
            f"{rng.randint(1, 999)} Market Street",
            rng.randrange(len(NATIONS)),
            f"{rng.randint(10, 34)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
            round(rng.uniform(-999.99, 9999.99), 2),
            rng.choice(MARKET_SEGMENTS),
        )
        for key in range(1, customer_count + 1)
    ])
    db.insert("part", [
        (
            key,
            f"{rng.choice(PART_MATERIALS).lower()} {rng.choice(CONTAINERS).lower()} part {key}",
            f"Manufacturer#{rng.randint(1, 5)}",
            f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
            f"{rng.choice(PART_TYPES)} {rng.choice(['ANODIZED', 'BURNISHED', 'PLATED'])} {rng.choice(PART_MATERIALS)}",
            rng.randint(1, 50),
            rng.choice(CONTAINERS),
            round(rng.uniform(900.0, 2000.0), 2),
        )
        for key in range(1, part_count + 1)
    ])
    partsupp_rows = []
    for part_key in range(1, part_count + 1):
        for _ in range(2):
            partsupp_rows.append(
                (
                    part_key,
                    rng.randint(1, supplier_count),
                    rng.randint(1, 9999),
                    round(rng.uniform(1.0, 1000.0), 2),
                )
            )
    db.insert("partsupp", partsupp_rows)

    order_rows = []
    lineitem_rows = []
    for order_key in range(1, order_count + 1):
        order_date = _date(rng, 1992, 1998)
        line_count = rng.randint(1, 7)
        total_price = 0.0
        for line_number in range(1, line_count + 1):
            quantity = rng.randint(1, 50)
            extended_price = round(quantity * rng.uniform(900.0, 2000.0), 2)
            total_price += extended_price
            ship_date = _date(rng, 1992, 1998)
            lineitem_rows.append(
                (
                    order_key,
                    rng.randint(1, part_count),
                    rng.randint(1, supplier_count),
                    line_number,
                    float(quantity),
                    extended_price,
                    round(rng.choice([0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.1]), 2),
                    round(rng.uniform(0.0, 0.08), 2),
                    rng.choice(RETURN_FLAGS),
                    rng.choice(LINE_STATUSES),
                    ship_date,
                    _date(rng, 1992, 1998),
                    _date(rng, 1992, 1998),
                    rng.choice(SHIP_MODES),
                    rng.choice(SHIP_INSTRUCTIONS),
                )
            )
        order_rows.append(
            (
                order_key,
                rng.randint(1, customer_count),
                rng.choice(["O", "F", "P"]),
                round(total_price, 2),
                order_date,
                rng.choice(ORDER_PRIORITIES),
                f"Clerk#{rng.randint(1, 1000):09d}",
                0,
            )
        )
    db.insert("orders", order_rows)
    db.insert("lineitem", lineitem_rows)

    db.create_index("idx_customer_custkey", "customer", ["c_custkey"])
    db.create_index("idx_orders_orderkey", "orders", ["o_orderkey"])
    db.create_index("idx_orders_custkey", "orders", ["o_custkey"])
    db.create_index("idx_orders_orderdate", "orders", ["o_orderdate"])
    db.create_index("idx_lineitem_orderkey", "lineitem", ["l_orderkey"])
    db.create_index("idx_lineitem_partkey", "lineitem", ["l_partkey"])
    db.create_index("idx_part_partkey", "part", ["p_partkey"])
    db.create_index("idx_supplier_suppkey", "supplier", ["s_suppkey"])
    db.analyze()
    return db


#: join edges of the TPC-H schema used by the random query generator.
TPCH_JOIN_GRAPH: list[tuple[str, str, str, str]] = [
    ("nation", "n_regionkey", "region", "r_regionkey"),
    ("supplier", "s_nationkey", "nation", "n_nationkey"),
    ("customer", "c_nationkey", "nation", "n_nationkey"),
    ("orders", "o_custkey", "customer", "c_custkey"),
    ("lineitem", "l_orderkey", "orders", "o_orderkey"),
    ("lineitem", "l_partkey", "part", "p_partkey"),
    ("lineitem", "l_suppkey", "supplier", "s_suppkey"),
    ("partsupp", "ps_partkey", "part", "p_partkey"),
    ("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
]


def tpch_queries() -> list[TpchQuery]:
    """The 22 TPC-H-style workload queries (flattened to the engine's SQL subset)."""
    return [
        TpchQuery(1, "pricing summary report", """
            SELECT l.l_returnflag, l.l_linestatus, sum(l.l_quantity) AS sum_qty,
                   sum(l.l_extendedprice) AS sum_base_price, avg(l.l_discount) AS avg_disc,
                   count(*) AS count_order
            FROM lineitem l
            WHERE l.l_shipdate <= '1998-09-02'
            GROUP BY l.l_returnflag, l.l_linestatus
            ORDER BY l.l_returnflag, l.l_linestatus"""),
        TpchQuery(2, "minimum cost supplier", """
            SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey, p.p_mfgr
            FROM part p, supplier s, partsupp ps, nation n, region r
            WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey
              AND p.p_size = 15 AND s.s_nationkey = n.n_nationkey
              AND n.n_regionkey = r.r_regionkey AND r.r_name = 'EUROPE'
            ORDER BY s.s_acctbal DESC, n.n_name, s.s_name
            LIMIT 100"""),
        TpchQuery(3, "shipping priority", """
            SELECT l.l_orderkey, sum(l.l_extendedprice) AS revenue, o.o_orderdate, o.o_shippriority
            FROM customer c, orders o, lineitem l
            WHERE c.c_mktsegment = 'BUILDING' AND c.c_custkey = o.o_custkey
              AND l.l_orderkey = o.o_orderkey AND o.o_orderdate < '1995-03-15'
              AND l.l_shipdate > '1995-03-15'
            GROUP BY l.l_orderkey, o.o_orderdate, o.o_shippriority
            ORDER BY revenue DESC, o.o_orderdate
            LIMIT 10"""),
        TpchQuery(4, "order priority checking", """
            SELECT o.o_orderpriority, count(*) AS order_count
            FROM orders o, lineitem l
            WHERE o.o_orderdate >= '1993-07-01' AND o.o_orderdate < '1993-10-01'
              AND l.l_orderkey = o.o_orderkey AND l.l_commitdate < l.l_receiptdate
            GROUP BY o.o_orderpriority
            ORDER BY o.o_orderpriority"""),
        TpchQuery(5, "local supplier volume", """
            SELECT n.n_name, sum(l.l_extendedprice) AS revenue
            FROM customer c, orders o, lineitem l, supplier s, nation n, region r
            WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
              AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey
              AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
              AND r.r_name = 'ASIA' AND o.o_orderdate >= '1994-01-01'
              AND o.o_orderdate < '1995-01-01'
            GROUP BY n.n_name
            ORDER BY revenue DESC"""),
        TpchQuery(6, "forecasting revenue change", """
            SELECT sum(l.l_extendedprice * l.l_discount) AS revenue
            FROM lineitem l
            WHERE l.l_shipdate >= '1994-01-01' AND l.l_shipdate < '1995-01-01'
              AND l.l_discount BETWEEN 0.05 AND 0.07 AND l.l_quantity < 24"""),
        TpchQuery(7, "volume shipping", """
            SELECT n.n_name AS supp_nation, sum(l.l_extendedprice) AS revenue
            FROM supplier s, lineitem l, orders o, customer c, nation n
            WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey
              AND c.c_custkey = o.o_custkey AND s.s_nationkey = n.n_nationkey
              AND l.l_shipdate BETWEEN '1995-01-01' AND '1996-12-31'
            GROUP BY n.n_name
            ORDER BY revenue DESC"""),
        TpchQuery(8, "national market share", """
            SELECT o.o_orderdate, sum(l.l_extendedprice) AS volume
            FROM part p, supplier s, lineitem l, orders o, customer c, nation n, region r
            WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey
              AND l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey
              AND c.c_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
              AND r.r_name = 'AMERICA' AND o.o_orderdate BETWEEN '1995-01-01' AND '1996-12-31'
              AND p.p_type LIKE '%ECONOMY%'
            GROUP BY o.o_orderdate
            ORDER BY o.o_orderdate"""),
        TpchQuery(9, "product type profit measure", """
            SELECT n.n_name AS nation, sum(l.l_extendedprice * l.l_discount) AS sum_profit
            FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n
            WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey
              AND ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey
              AND o.o_orderkey = l.l_orderkey AND s.s_nationkey = n.n_nationkey
              AND p.p_name LIKE '%green%'
            GROUP BY n.n_name
            ORDER BY nation"""),
        TpchQuery(10, "returned item reporting", """
            SELECT c.c_custkey, c.c_name, sum(l.l_extendedprice) AS revenue, c.c_acctbal, n.n_name
            FROM customer c, orders o, lineitem l, nation n
            WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
              AND o.o_orderdate >= '1993-10-01' AND o.o_orderdate < '1994-01-01'
              AND l.l_returnflag = 'R' AND c.c_nationkey = n.n_nationkey
            GROUP BY c.c_custkey, c.c_name, c.c_acctbal, n.n_name
            ORDER BY revenue DESC
            LIMIT 20"""),
        TpchQuery(11, "important stock identification", """
            SELECT ps.ps_partkey, sum(ps.ps_supplycost * ps.ps_availqty) AS value
            FROM partsupp ps, supplier s, nation n
            WHERE ps.ps_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey
              AND n.n_name = 'GERMANY'
            GROUP BY ps.ps_partkey
            HAVING sum(ps.ps_supplycost * ps.ps_availqty) > 1000
            ORDER BY value DESC
            LIMIT 50"""),
        TpchQuery(12, "shipping modes and order priority", """
            SELECT l.l_shipmode, count(*) AS line_count
            FROM orders o, lineitem l
            WHERE o.o_orderkey = l.l_orderkey AND l.l_shipmode IN ('MAIL', 'SHIP')
              AND l.l_commitdate < l.l_receiptdate AND l.l_shipdate < l.l_commitdate
              AND l.l_receiptdate >= '1994-01-01' AND l.l_receiptdate < '1995-01-01'
            GROUP BY l.l_shipmode
            ORDER BY l.l_shipmode"""),
        TpchQuery(13, "customer distribution", """
            SELECT c.c_custkey, count(*) AS c_count
            FROM customer c, orders o
            WHERE c.c_custkey = o.o_custkey AND o.o_clerk NOT LIKE '%special%requests%'
            GROUP BY c.c_custkey
            ORDER BY c_count DESC
            LIMIT 100"""),
        TpchQuery(14, "promotion effect", """
            SELECT sum(l.l_extendedprice * l.l_discount) AS promo_revenue
            FROM lineitem l, part p
            WHERE l.l_partkey = p.p_partkey AND l.l_shipdate >= '1995-09-01'
              AND l.l_shipdate < '1995-10-01' AND p.p_type LIKE 'PROMO%'"""),
        TpchQuery(15, "top supplier", """
            SELECT l.l_suppkey, sum(l.l_extendedprice) AS total_revenue
            FROM lineitem l
            WHERE l.l_shipdate >= '1996-01-01' AND l.l_shipdate < '1996-04-01'
            GROUP BY l.l_suppkey
            ORDER BY total_revenue DESC
            LIMIT 1"""),
        TpchQuery(16, "parts/supplier relationship", """
            SELECT p.p_brand, p.p_type, p.p_size, count(DISTINCT ps.ps_suppkey) AS supplier_cnt
            FROM partsupp ps, part p
            WHERE p.p_partkey = ps.ps_partkey AND p.p_brand <> 'Brand#45'
              AND p.p_size IN (9, 14, 19, 23, 36, 45, 49, 3)
            GROUP BY p.p_brand, p.p_type, p.p_size
            ORDER BY supplier_cnt DESC, p.p_brand
            LIMIT 40"""),
        TpchQuery(17, "small-quantity-order revenue", """
            SELECT avg(l.l_extendedprice) AS avg_yearly
            FROM lineitem l, part p
            WHERE p.p_partkey = l.l_partkey AND p.p_brand = 'Brand#23'
              AND p.p_container = 'MED BOX' AND l.l_quantity < 10"""),
        TpchQuery(18, "large volume customer", """
            SELECT c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice,
                   sum(l.l_quantity) AS total_quantity
            FROM customer c, orders o, lineitem l
            WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey
              AND o.o_totalprice > 100000
            GROUP BY c.c_name, c.c_custkey, o.o_orderkey, o.o_orderdate, o.o_totalprice
            HAVING sum(l.l_quantity) > 100
            ORDER BY o.o_totalprice DESC, o.o_orderdate
            LIMIT 100"""),
        TpchQuery(19, "discounted revenue", """
            SELECT sum(l.l_extendedprice) AS revenue
            FROM lineitem l, part p
            WHERE p.p_partkey = l.l_partkey AND p.p_brand = 'Brand#12'
              AND l.l_quantity BETWEEN 1 AND 11 AND p.p_size BETWEEN 1 AND 5
              AND l.l_shipmode IN ('AIR', 'REG AIR')
              AND l.l_shipinstruct = 'DELIVER IN PERSON'"""),
        TpchQuery(20, "potential part promotion", """
            SELECT s.s_name, s.s_address
            FROM supplier s, nation n, partsupp ps, part p
            WHERE s.s_nationkey = n.n_nationkey AND n.n_name = 'CANADA'
              AND ps.ps_suppkey = s.s_suppkey AND p.p_partkey = ps.ps_partkey
              AND p.p_name LIKE 'forest%' AND ps.ps_availqty > 100
            ORDER BY s.s_name
            LIMIT 50"""),
        TpchQuery(21, "suppliers who kept orders waiting", """
            SELECT s.s_name, count(*) AS numwait
            FROM supplier s, lineitem l, orders o, nation n
            WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey
              AND o.o_orderstatus = 'F' AND l.l_receiptdate > l.l_commitdate
              AND s.s_nationkey = n.n_nationkey AND n.n_name = 'SAUDI ARABIA'
            GROUP BY s.s_name
            ORDER BY numwait DESC, s.s_name
            LIMIT 100"""),
        TpchQuery(22, "global sales opportunity", """
            SELECT c.c_mktsegment, count(*) AS numcust, sum(c.c_acctbal) AS totacctbal
            FROM customer c
            WHERE c.c_acctbal > 0.0
            GROUP BY c.c_mktsegment
            HAVING count(*) > 1
            ORDER BY c.c_mktsegment"""),
    ]
