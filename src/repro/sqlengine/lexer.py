"""Tokenizer for the SQL subset understood by the mini engine."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "order",
    "limit", "offset", "as", "and", "or", "not", "in", "like", "between",
    "is", "null", "join", "inner", "left", "right", "outer", "on", "asc",
    "desc", "case", "when", "then", "else", "end", "exists", "union", "all",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|!=|=|<|>|\|\|)
  | (?P<punct>[(),.*+\-/%;])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A lexical token: ``kind`` is one of keyword/name/number/string/op/punct/eof."""

    kind: str
    value: str
    position: int

    def matches(self, kind: str, value: str | None = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value == value


def tokenize(sql: str) -> list[Token]:
    """Split SQL text into tokens, lower-casing keywords and bare names."""
    tokens: list[Token] = []
    position = 0
    length = len(sql)
    while position < length:
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise SQLSyntaxError(f"unexpected character {sql[position]!r} at offset {position}")
        position = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind in ("ws", "comment"):
            continue
        if kind == "name":
            lowered = text.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, match.start()))
            else:
                tokens.append(Token("name", lowered, match.start()))
        elif kind == "string":
            tokens.append(Token("string", text[1:-1].replace("''", "'"), match.start()))
        elif kind == "number":
            tokens.append(Token("number", text, match.start()))
        else:
            tokens.append(Token(kind, text, match.start()))
    tokens.append(Token("eof", "", length))
    return tokens
