"""Expression evaluation, rendering, and predicate analysis.

Rows flowing through the executor are dictionaries keyed by
``binding.column`` (for base columns) plus bare output names for computed
columns.  Evaluation resolves a :class:`ColumnRef` against those keys.
"""

from __future__ import annotations

import datetime
import re
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.errors import ExecutionError
from repro.sqlengine.ast_nodes import (
    Between,
    BinaryOp,
    BooleanOp,
    CaseExpression,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    NotOp,
    Star,
)

Row = Mapping[str, Any]


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------


def resolve_column(row: Row, column: ColumnRef) -> Any:
    """Look up a column reference in a row mapping."""
    if column.table:
        key = f"{column.table}.{column.name}"
        if key in row:
            return row[key]
    if column.name in row:
        return row[column.name]
    # fall back to a suffix match (unqualified reference to a qualified key)
    suffix = f".{column.name}"
    matches = [key for key in row if key.endswith(suffix)]
    if len(matches) == 1:
        return row[matches[0]]
    if not matches:
        raise ExecutionError(f"column {column} not found in row {sorted(row)}")
    raise ExecutionError(f"column {column} is ambiguous in row {sorted(row)}")


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    """Translate a SQL LIKE pattern into an anchored regular expression."""
    parts: list[str] = []
    for character in pattern:
        if character == "%":
            parts.append(".*")
        elif character == "_":
            parts.append(".")
        else:
            parts.append(re.escape(character))
    return re.compile("^" + "".join(parts) + "$", re.IGNORECASE)


def _compare(operator: str, left: Any, right: Any) -> Optional[bool]:
    if left is None or right is None:
        return None
    if isinstance(left, datetime.date) and isinstance(right, str):
        right = datetime.date.fromisoformat(right)
    if isinstance(right, datetime.date) and isinstance(left, str):
        left = datetime.date.fromisoformat(left)
    if operator == "=":
        return left == right
    if operator in ("<>", "!="):
        return left != right
    if operator == "<":
        return left < right
    if operator == "<=":
        return left <= right
    if operator == ">":
        return left > right
    if operator == ">=":
        return left >= right
    raise ExecutionError(f"unsupported comparison operator {operator!r}")


def evaluate(expression: Expression, row: Row) -> Any:
    """Evaluate an expression against a row, with SQL three-valued logic."""
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        return resolve_column(row, expression)
    if isinstance(expression, Star):
        return 1  # COUNT(*) argument — any non-null marker
    if isinstance(expression, BinaryOp):
        return _evaluate_binary(expression, row)
    if isinstance(expression, BooleanOp):
        return _evaluate_boolean(expression, row)
    if isinstance(expression, NotOp):
        value = evaluate(expression.operand, row)
        return None if value is None else (not value)
    if isinstance(expression, IsNull):
        value = evaluate(expression.operand, row)
        return (value is not None) if expression.negated else (value is None)
    if isinstance(expression, InList):
        return _evaluate_in(expression, row)
    if isinstance(expression, Between):
        value = evaluate(expression.operand, row)
        low = evaluate(expression.low, row)
        high = evaluate(expression.high, row)
        lower = _compare(">=", value, low)
        upper = _compare("<=", value, high)
        if lower is None or upper is None:
            return None
        result = lower and upper
        return (not result) if expression.negated else result
    if isinstance(expression, CaseExpression):
        for condition, result in expression.branches:
            if evaluate(condition, row):
                return evaluate(result, row)
        if expression.default is not None:
            return evaluate(expression.default, row)
        return None
    if isinstance(expression, FunctionCall):
        return _evaluate_scalar_function(expression, row)
    raise ExecutionError(f"cannot evaluate expression of type {type(expression).__name__}")


def _evaluate_binary(expression: BinaryOp, row: Row) -> Any:
    operator = expression.operator
    left = evaluate(expression.left, row)
    right = evaluate(expression.right, row)
    if operator in ("=", "<>", "!=", "<", "<=", ">", ">="):
        return _compare(operator, left, right)
    if operator == "like":
        if left is None or right is None:
            return None
        return bool(_like_to_regex(str(right)).match(str(left)))
    if left is None or right is None:
        return None
    if operator == "+":
        return left + right
    if operator == "-":
        return left - right
    if operator == "*":
        return left * right
    if operator == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        return left / right
    if operator == "%":
        return left % right
    if operator == "||":
        return f"{left}{right}"
    raise ExecutionError(f"unsupported operator {operator!r}")


def _evaluate_boolean(expression: BooleanOp, row: Row) -> Optional[bool]:
    values = [evaluate(operand, row) for operand in expression.operands]
    if expression.operator == "and":
        if any(value is False or (value is not None and not value) for value in values):
            return False
        if any(value is None for value in values):
            return None
        return True
    if any(bool(value) for value in values if value is not None):
        return True
    if any(value is None for value in values):
        return None
    return False


def _evaluate_in(expression: InList, row: Row) -> Optional[bool]:
    value = evaluate(expression.operand, row)
    if value is None:
        return None
    found = False
    saw_null = False
    for item in expression.items:
        candidate = evaluate(item, row)
        if candidate is None:
            saw_null = True
        elif _compare("=", value, candidate):
            found = True
            break
    if not found and saw_null:
        return None
    return (not found) if expression.negated else found


_SCALAR_FUNCTIONS = {
    "upper": lambda value: None if value is None else str(value).upper(),
    "lower": lambda value: None if value is None else str(value).lower(),
    "length": lambda value: None if value is None else len(str(value)),
    "abs": lambda value: None if value is None else abs(value),
    "round": round,
    "substring": None,  # handled separately (variadic)
    "extract_year": lambda value: None if value is None else value.year,
}


def _evaluate_scalar_function(expression: FunctionCall, row: Row) -> Any:
    name = expression.name.lower()
    if expression.is_aggregate:
        # After an Aggregate operator has run, aggregate results live in the
        # row keyed by their textual form (e.g. ``COUNT(*)``); HAVING, ORDER
        # BY, and the final projection resolve them through this lookup.
        key = str(expression)
        if key in row:
            return row[key]
        raise ExecutionError(
            f"aggregate {name!r} evaluated outside of an Aggregate operator"
        )
    arguments = [evaluate(argument, row) for argument in expression.arguments]
    if name == "substring":
        if not arguments:
            return None
        text = arguments[0]
        if text is None:
            return None
        start = int(arguments[1]) if len(arguments) > 1 else 1
        length = int(arguments[2]) if len(arguments) > 2 else len(str(text))
        return str(text)[start - 1 : start - 1 + length]
    if name == "coalesce":
        for value in arguments:
            if value is not None:
                return value
        return None
    handler = _SCALAR_FUNCTIONS.get(name)
    if handler is None:
        raise ExecutionError(f"unknown function {expression.name!r}")
    if name == "round" and len(arguments) == 2:
        return round(arguments[0], int(arguments[1])) if arguments[0] is not None else None
    return handler(*arguments[:1]) if arguments else handler(None)


# ---------------------------------------------------------------------------
# analysis helpers used by the planner
# ---------------------------------------------------------------------------


def split_conjuncts(expression: Optional[Expression]) -> list[Expression]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, BooleanOp) and expression.operator == "and":
        conjuncts: list[Expression] = []
        for operand in expression.operands:
            conjuncts.extend(split_conjuncts(operand))
        return conjuncts
    return [expression]


def combine_conjuncts(conjuncts: Sequence[Expression]) -> Optional[Expression]:
    """Rebuild a single predicate from a list of conjuncts."""
    filtered = [conjunct for conjunct in conjuncts if conjunct is not None]
    if not filtered:
        return None
    if len(filtered) == 1:
        return filtered[0]
    return BooleanOp("and", list(filtered))


def referenced_columns(expression: Expression) -> list[ColumnRef]:
    """All column references appearing anywhere in the expression."""
    return [node for node in expression.walk() if isinstance(node, ColumnRef)]


def referenced_bindings(
    expression: Expression, binding_for_column: Mapping[str, str] | None = None
) -> set[str]:
    """The set of relation bindings the expression touches.

    Unqualified columns are resolved through ``binding_for_column`` when
    provided (mapping bare column name -> binding).
    """
    bindings: set[str] = set()
    for column in referenced_columns(expression):
        if column.table:
            bindings.add(column.table)
        elif binding_for_column and column.name in binding_for_column:
            bindings.add(binding_for_column[column.name])
    return bindings


def is_equijoin(expression: Expression) -> bool:
    """Whether the expression is a simple ``col = col`` predicate across two relations."""
    if not isinstance(expression, BinaryOp) or expression.operator != "=":
        return False
    return isinstance(expression.left, ColumnRef) and isinstance(expression.right, ColumnRef)


def render_condition(expression: Optional[Expression]) -> str:
    """Human-readable rendering of a predicate for EXPLAIN output."""
    if expression is None:
        return ""
    return str(expression)


def iter_expressions(expressions: Iterable[Expression]):
    """Yield every node of every expression in ``expressions``."""
    for expression in expressions:
        yield from expression.walk()
