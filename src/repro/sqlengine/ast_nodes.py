"""Abstract syntax tree nodes for the SQL subset and its expressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

AGGREGATE_FUNCTIONS = {"count", "sum", "avg", "min", "max"}


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class for all expression nodes."""

    def walk(self):
        """Yield this node and all descendant expressions, depth first."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> list["Expression"]:
        return []


@dataclass
class ColumnRef(Expression):
    """A (possibly qualified) column reference such as ``c.c_custkey``."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Literal(Expression):
    """A constant value (number, string, boolean, NULL)."""

    value: Any

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass
class Star(Expression):
    """The ``*`` projection item (optionally qualified: ``t.*``)."""

    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass
class BinaryOp(Expression):
    """A binary operator: arithmetic, comparison, LIKE, string concat."""

    operator: str
    left: Expression
    right: Expression

    def children(self) -> list[Expression]:
        return [self.left, self.right]

    def __str__(self) -> str:
        return f"({self.left} {self.operator} {self.right})"


@dataclass
class BooleanOp(Expression):
    """An n-ary AND / OR over predicate expressions."""

    operator: str  # "and" | "or"
    operands: list[Expression]

    def children(self) -> list[Expression]:
        return list(self.operands)

    def __str__(self) -> str:
        joiner = f" {self.operator.upper()} "
        return "(" + joiner.join(str(operand) for operand in self.operands) + ")"


@dataclass
class NotOp(Expression):
    """Logical negation."""

    operand: Expression

    def children(self) -> list[Expression]:
        return [self.operand]

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def children(self) -> list[Expression]:
        return [self.operand]

    def __str__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {suffix})"


@dataclass
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    items: list[Expression]
    negated: bool = False

    def children(self) -> list[Expression]:
        return [self.operand, *self.items]

    def __str__(self) -> str:
        values = ", ".join(str(item) for item in self.items)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand} {keyword} ({values}))"


@dataclass
class Between(Expression):
    """``expr BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def children(self) -> list[Expression]:
        return [self.operand, self.low, self.high]

    def __str__(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand} {keyword} {self.low} AND {self.high})"


@dataclass
class FunctionCall(Expression):
    """A scalar or aggregate function call."""

    name: str
    arguments: list[Expression]
    distinct: bool = False

    def children(self) -> list[Expression]:
        return list(self.arguments)

    @property
    def is_aggregate(self) -> bool:
        return self.name.lower() in AGGREGATE_FUNCTIONS

    def __str__(self) -> str:
        args = ", ".join(str(argument) for argument in self.arguments)
        if self.distinct:
            args = f"DISTINCT {args}"
        return f"{self.name.upper()}({args or '*'})"


@dataclass
class CaseExpression(Expression):
    """A searched CASE expression."""

    branches: list[tuple[Expression, Expression]]
    default: Optional[Expression] = None

    def children(self) -> list[Expression]:
        nodes: list[Expression] = []
        for condition, result in self.branches:
            nodes.extend((condition, result))
        if self.default is not None:
            nodes.append(self.default)
        return nodes

    def __str__(self) -> str:
        parts = ["CASE"]
        for condition, result in self.branches:
            parts.append(f"WHEN {condition} THEN {result}")
        if self.default is not None:
            parts.append(f"ELSE {self.default}")
        parts.append("END")
        return " ".join(parts)


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    """One projection item with an optional output alias."""

    expression: Expression
    alias: Optional[str] = None

    def output_name(self, position: int) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        return f"column_{position}"


@dataclass
class TableRef:
    """A base table reference in FROM, with optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this relation is referred to by in the rest of the query."""
        return self.alias or self.name


@dataclass
class JoinClause:
    """An explicit ``JOIN ... ON`` clause attached to a preceding relation."""

    table: TableRef
    condition: Optional[Expression]
    join_type: str = "inner"  # inner | left | right


@dataclass
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.expression} {'DESC' if self.descending else 'ASC'}"


@dataclass
class SelectStatement:
    """A parsed SELECT statement."""

    select_items: list[SelectItem]
    from_tables: list[TableRef]
    joins: list[JoinClause] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False

    @property
    def relations(self) -> list[TableRef]:
        """All base relations referenced in FROM and JOIN clauses."""
        return list(self.from_tables) + [join.table for join in self.joins]

    def aggregates(self) -> list[FunctionCall]:
        """All aggregate calls appearing in the projection or HAVING clause."""
        found: list[FunctionCall] = []
        roots: list[Expression] = [item.expression for item in self.select_items]
        if self.having is not None:
            roots.append(self.having)
        for item in self.order_by:
            roots.append(item.expression)
        for root in roots:
            for node in root.walk():
                if isinstance(node, FunctionCall) and node.is_aggregate:
                    found.append(node)
        return found

    @property
    def has_aggregation(self) -> bool:
        return bool(self.group_by) or bool(self.aggregates())
