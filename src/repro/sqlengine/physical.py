"""Physical plan nodes produced by the optimizer.

A :class:`PlanNode` is deliberately close to what PostgreSQL's
``EXPLAIN (FORMAT JSON)`` exposes: a node type string, costs, row estimates
and a bag of node-specific attributes (relation, index, conditions, keys).
The same structure serializes to the SQL Server showplan XML dialect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.sqlengine.ast_nodes import Expression, FunctionCall, SelectItem

#: Canonical node type names (PostgreSQL vocabulary).
SEQ_SCAN = "Seq Scan"
PARALLEL_SEQ_SCAN = "Parallel Seq Scan"
INDEX_SCAN = "Index Scan"
INDEX_ONLY_SCAN = "Index Only Scan"
BITMAP_HEAP_SCAN = "Bitmap Heap Scan"
BITMAP_INDEX_SCAN = "Bitmap Index Scan"
HASH_JOIN = "Hash Join"
MERGE_JOIN = "Merge Join"
NESTED_LOOP = "Nested Loop"
HASH = "Hash"
SORT = "Sort"
AGGREGATE = "Aggregate"
GROUP_AGGREGATE = "GroupAggregate"
HASH_AGGREGATE = "HashAggregate"
UNIQUE = "Unique"
LIMIT = "Limit"
MATERIALIZE = "Materialize"
GATHER = "Gather"
RESULT = "Result"

JOIN_NODE_TYPES = {HASH_JOIN, MERGE_JOIN, NESTED_LOOP}
SCAN_NODE_TYPES = {
    SEQ_SCAN,
    PARALLEL_SEQ_SCAN,
    INDEX_SCAN,
    INDEX_ONLY_SCAN,
    BITMAP_HEAP_SCAN,
}
AGGREGATE_NODE_TYPES = {AGGREGATE, GROUP_AGGREGATE, HASH_AGGREGATE}


@dataclass
class PlanNode:
    """One operator in a physical plan tree."""

    node_type: str
    children: list["PlanNode"] = field(default_factory=list)
    relation: Optional[str] = None
    alias: Optional[str] = None
    index_name: Optional[str] = None
    filter: Optional[Expression] = None
    index_condition: Optional[Expression] = None
    join_condition: Optional[Expression] = None
    join_type: str = "Inner"
    sort_keys: list[str] = field(default_factory=list)
    group_keys: list[str] = field(default_factory=list)
    group_expressions: list[Expression] = field(default_factory=list)
    aggregate_calls: list[FunctionCall] = field(default_factory=list)
    strategy: Optional[str] = None
    output: list[str] = field(default_factory=list)
    startup_cost: float = 0.0
    total_cost: float = 0.0
    plan_rows: float = 1.0
    plan_width: int = 32
    parallel_workers: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    # -- structure helpers ------------------------------------------------

    def walk(self):
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def is_join(self) -> bool:
        return self.node_type in JOIN_NODE_TYPES

    @property
    def is_scan(self) -> bool:
        return self.node_type in SCAN_NODE_TYPES

    @property
    def is_aggregate(self) -> bool:
        return self.node_type in AGGREGATE_NODE_TYPES

    def find(self, node_type: str) -> list["PlanNode"]:
        return [node for node in self.walk() if node.node_type == node_type]

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    def condition_text(self) -> str:
        """The most informative condition attached to this node, as text."""
        for candidate in (self.join_condition, self.index_condition, self.filter):
            if candidate is not None:
                return str(candidate)
        return ""

    def describe(self) -> str:
        """Short one-line description used in logs and debugging."""
        target = self.relation or self.index_name or ""
        condition = self.condition_text()
        parts = [self.node_type]
        if target:
            parts.append(f"on {target}")
        if condition:
            parts.append(f"[{condition}]")
        return " ".join(parts)


@dataclass
class PhysicalPlan:
    """A complete plan: the operator tree plus the query-level projection."""

    root: PlanNode
    select_items: list[SelectItem]
    distinct: bool = False
    statement_text: str = ""

    @property
    def total_cost(self) -> float:
        return self.root.total_cost

    @property
    def estimated_rows(self) -> float:
        return self.root.plan_rows

    def operators(self) -> list[str]:
        """All node type names appearing in the plan, pre-order."""
        return [node.node_type for node in self.root.walk()]
