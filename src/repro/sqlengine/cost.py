"""Cost model constants and elementary costing formulas.

The constants mirror PostgreSQL's defaults so that plan choices (seq scan vs
index scan, hash vs merge vs nested-loop join) shift in familiar ways as
cardinalities and selectivities change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostParameters:
    """Tunable unit costs, analogous to PostgreSQL GUCs."""

    seq_page_cost: float = 1.0
    random_page_cost: float = 4.0
    cpu_tuple_cost: float = 0.01
    cpu_index_tuple_cost: float = 0.005
    cpu_operator_cost: float = 0.0025
    hash_build_cost_per_tuple: float = 0.015
    sort_cost_per_comparison: float = 0.0052
    materialize_cost_per_tuple: float = 0.0025


DEFAULT_COST_PARAMETERS = CostParameters()


def seq_scan_cost(pages: float, rows: float, parameters: CostParameters) -> float:
    """Full scan: read every page, apply the filter to every row."""
    return pages * parameters.seq_page_cost + rows * parameters.cpu_tuple_cost


def index_scan_cost(
    matching_rows: float,
    table_pages: float,
    table_rows: float,
    parameters: CostParameters,
) -> float:
    """B-tree descent plus one random page fetch per matching row (capped)."""
    descent = math.log2(max(table_rows, 2.0)) * parameters.cpu_operator_cost * 50
    index_tuples = matching_rows * parameters.cpu_index_tuple_cost
    heap_pages = min(matching_rows, table_pages)
    heap_fetch = heap_pages * parameters.random_page_cost
    return descent + index_tuples + heap_fetch + matching_rows * parameters.cpu_tuple_cost


def sort_cost(rows: float, parameters: CostParameters) -> float:
    """N log N comparison cost."""
    rows = max(rows, 1.0)
    return rows * math.log2(max(rows, 2.0)) * parameters.sort_cost_per_comparison


def hash_join_cost(outer_rows: float, inner_rows: float, parameters: CostParameters) -> float:
    """Build a hash table over the inner input, probe with the outer."""
    build = inner_rows * parameters.hash_build_cost_per_tuple
    probe = outer_rows * (parameters.cpu_operator_cost + parameters.cpu_tuple_cost)
    return build + probe


def merge_join_cost(outer_rows: float, inner_rows: float, parameters: CostParameters) -> float:
    """Linear merge over two sorted inputs (sorting is costed separately)."""
    return (outer_rows + inner_rows) * parameters.cpu_operator_cost * 2


def nested_loop_cost(
    outer_rows: float, inner_cost_per_loop: float, inner_rows: float, parameters: CostParameters
) -> float:
    """Re-execute the inner plan once per outer row."""
    return outer_rows * inner_cost_per_loop + outer_rows * inner_rows * parameters.cpu_operator_cost


def aggregate_cost(input_rows: float, groups: float, parameters: CostParameters) -> float:
    """Hash or sorted aggregation: one operator evaluation per input row."""
    return input_rows * parameters.cpu_operator_cost * 2 + groups * parameters.cpu_tuple_cost
