"""Recursive-descent parser for the SQL subset.

The grammar covers what the TPC-H style workloads and the random query
generator need: SELECT [DISTINCT], explicit and implicit joins, WHERE with
AND/OR/NOT, LIKE, IN, BETWEEN, IS NULL, arithmetic, aggregates, GROUP BY,
HAVING, ORDER BY, LIMIT and OFFSET.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SQLSyntaxError
from repro.sqlengine.ast_nodes import (
    Between,
    BinaryOp,
    BooleanOp,
    CaseExpression,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    JoinClause,
    Literal,
    NotOp,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
)
from repro.sqlengine.lexer import Token, tokenize

_COMPARISON_OPERATORS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class Parser:
    """Parses one SELECT statement from a token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _accept(self, kind: str, value: str | None = None) -> Optional[Token]:
        if self._peek().matches(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._peek()
        if not token.matches(kind, value):
            expected = value or kind
            raise SQLSyntaxError(
                f"expected {expected!r} but found {token.value!r} at offset {token.position}"
            )
        return self._advance()

    # -- statements ------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self._expect("keyword", "select")
        distinct = bool(self._accept("keyword", "distinct"))
        select_items = self._parse_select_list()
        self._expect("keyword", "from")
        from_tables, joins = self._parse_from()
        where = None
        if self._accept("keyword", "where"):
            where = self._parse_expression()
        group_by: list[Expression] = []
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by = self._parse_expression_list()
        having = None
        if self._accept("keyword", "having"):
            having = self._parse_expression()
        order_by: list[OrderItem] = []
        if self._accept("keyword", "order"):
            self._expect("keyword", "by")
            order_by = self._parse_order_list()
        limit = offset = None
        if self._accept("keyword", "limit"):
            limit = int(self._expect("number").value)
        if self._accept("keyword", "offset"):
            offset = int(self._expect("number").value)
        self._accept("punct", ";")
        if not self._peek().matches("eof"):
            token = self._peek()
            raise SQLSyntaxError(
                f"unexpected trailing token {token.value!r} at offset {token.position}"
            )
        return SelectStatement(
            select_items=select_items,
            from_tables=from_tables,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    # -- clauses ---------------------------------------------------------

    def _parse_select_list(self) -> list[SelectItem]:
        items = [self._parse_select_item()]
        while self._accept("punct", ","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if self._peek().matches("punct", "*"):
            self._advance()
            return SelectItem(Star())
        expression = self._parse_expression()
        alias = None
        if self._accept("keyword", "as"):
            alias = self._expect("name").value
        elif self._peek().kind == "name" and not self._peek(1).matches("punct", "("):
            # bare alias (``expr alias``) — only when the next token cannot
            # start a new clause.
            alias = self._advance().value
        return SelectItem(expression, alias)

    def _parse_from(self) -> tuple[list[TableRef], list[JoinClause]]:
        tables = [self._parse_table_ref()]
        joins: list[JoinClause] = []
        while True:
            if self._accept("punct", ","):
                tables.append(self._parse_table_ref())
                continue
            join_type = self._maybe_join_type()
            if join_type is None:
                break
            table = self._parse_table_ref()
            condition = None
            if self._accept("keyword", "on"):
                condition = self._parse_expression()
            joins.append(JoinClause(table=table, condition=condition, join_type=join_type))
        return tables, joins

    def _maybe_join_type(self) -> Optional[str]:
        if self._accept("keyword", "join"):
            return "inner"
        if self._peek().matches("keyword", "inner") and self._peek(1).matches("keyword", "join"):
            self._advance()
            self._advance()
            return "inner"
        for direction in ("left", "right"):
            if self._peek().matches("keyword", direction):
                offset = 1
                if self._peek(1).matches("keyword", "outer"):
                    offset = 2
                if self._peek(offset).matches("keyword", "join"):
                    for _ in range(offset + 1):
                        self._advance()
                    return direction
        return None

    def _parse_table_ref(self) -> TableRef:
        name = self._expect("name").value
        alias = None
        if self._accept("keyword", "as"):
            alias = self._expect("name").value
        elif self._peek().kind == "name":
            alias = self._advance().value
        return TableRef(name=name, alias=alias)

    def _parse_order_list(self) -> list[OrderItem]:
        items = [self._parse_order_item()]
        while self._accept("punct", ","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        expression = self._parse_expression()
        descending = False
        if self._accept("keyword", "desc"):
            descending = True
        else:
            self._accept("keyword", "asc")
        return OrderItem(expression=expression, descending=descending)

    def _parse_expression_list(self) -> list[Expression]:
        items = [self._parse_expression()]
        while self._accept("punct", ","):
            items.append(self._parse_expression())
        return items

    # -- expressions (precedence climbing) --------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        operands = [self._parse_and()]
        while self._accept("keyword", "or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("or", operands)

    def _parse_and(self) -> Expression:
        operands = [self._parse_not()]
        while self._accept("keyword", "and"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("and", operands)

    def _parse_not(self) -> Expression:
        if self._accept("keyword", "not"):
            return NotOp(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.kind == "op" and token.value in _COMPARISON_OPERATORS:
            operator = self._advance().value
            right = self._parse_additive()
            return BinaryOp(operator, left, right)
        negated = False
        if self._peek().matches("keyword", "not") and self._peek(1).value in ("like", "in", "between"):
            self._advance()
            negated = True
        if self._accept("keyword", "like"):
            right = self._parse_additive()
            expr: Expression = BinaryOp("like", left, right)
            return NotOp(expr) if negated else expr
        if self._accept("keyword", "in"):
            self._expect("punct", "(")
            items = self._parse_expression_list()
            self._expect("punct", ")")
            return InList(left, items, negated=negated)
        if self._accept("keyword", "between"):
            low = self._parse_additive()
            self._expect("keyword", "and")
            high = self._parse_additive()
            return Between(left, low, high, negated=negated)
        if self._accept("keyword", "is"):
            is_negated = bool(self._accept("keyword", "not"))
            self._expect("keyword", "null")
            return IsNull(left, negated=is_negated)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.matches("punct", "+") or token.matches("punct", "-"):
                operator = self._advance().value
                left = BinaryOp(operator, left, self._parse_multiplicative())
            elif token.matches("op", "||"):
                self._advance()
                left = BinaryOp("||", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.matches("punct", "*") or token.matches("punct", "/") or token.matches("punct", "%"):
                operator = self._advance().value
                left = BinaryOp(operator, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        if self._accept("punct", "-"):
            operand = self._parse_unary()
            if isinstance(operand, Literal) and isinstance(operand.value, (int, float)):
                return Literal(-operand.value)
            return BinaryOp("-", Literal(0), operand)
        if self._accept("punct", "+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.kind == "number":
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.kind == "string":
            self._advance()
            return Literal(token.value)
        if token.matches("keyword", "null"):
            self._advance()
            return Literal(None)
        if token.matches("keyword", "case"):
            return self._parse_case()
        if token.matches("punct", "("):
            self._advance()
            expression = self._parse_expression()
            self._expect("punct", ")")
            return expression
        if token.kind == "name":
            return self._parse_name_or_call()
        raise SQLSyntaxError(
            f"unexpected token {token.value!r} at offset {token.position}"
        )

    def _parse_case(self) -> Expression:
        self._expect("keyword", "case")
        branches: list[tuple[Expression, Expression]] = []
        while self._accept("keyword", "when"):
            condition = self._parse_expression()
            self._expect("keyword", "then")
            result = self._parse_expression()
            branches.append((condition, result))
        default = None
        if self._accept("keyword", "else"):
            default = self._parse_expression()
        self._expect("keyword", "end")
        if not branches:
            raise SQLSyntaxError("CASE expression requires at least one WHEN branch")
        return CaseExpression(branches, default)

    def _parse_name_or_call(self) -> Expression:
        name = self._expect("name").value
        if self._peek().matches("punct", "("):
            self._advance()
            distinct = bool(self._accept("keyword", "distinct"))
            if self._accept("punct", "*"):
                self._expect("punct", ")")
                return FunctionCall(name, [Star()], distinct=distinct)
            if self._accept("punct", ")"):
                return FunctionCall(name, [], distinct=distinct)
            arguments = self._parse_expression_list()
            self._expect("punct", ")")
            return FunctionCall(name, arguments, distinct=distinct)
        if self._peek().matches("punct", "."):
            self._advance()
            if self._accept("punct", "*"):
                return Star(table=name)
            column = self._expect("name").value
            return ColumnRef(column, table=name)
        return ColumnRef(name)


def parse_sql(sql: str) -> SelectStatement:
    """Parse a SELECT statement and return its AST."""
    return Parser(tokenize(sql)).parse_select()
