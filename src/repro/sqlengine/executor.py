"""Executes physical plans against the in-memory storage manager.

Rows flowing between operators are dictionaries keyed ``binding.column`` for
base-table columns; aggregate operators additionally publish their results
under the textual form of the aggregate call (``COUNT(*)``) so that HAVING,
ORDER BY, and the final projection can reference them.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.errors import ExecutionError
from repro.sqlengine.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    SelectItem,
    Star,
)
from repro.sqlengine.expressions import evaluate, is_equijoin, split_conjuncts
from repro.sqlengine.physical import (
    AGGREGATE,
    BITMAP_HEAP_SCAN,
    GATHER,
    GROUP_AGGREGATE,
    HASH,
    HASH_AGGREGATE,
    HASH_JOIN,
    INDEX_ONLY_SCAN,
    INDEX_SCAN,
    LIMIT,
    MATERIALIZE,
    MERGE_JOIN,
    NESTED_LOOP,
    PARALLEL_SEQ_SCAN,
    PhysicalPlan,
    PlanNode,
    SEQ_SCAN,
    SORT,
    UNIQUE,
)
from repro.sqlengine.storage import BTreeIndexData, StorageManager
from repro.sqlengine.types import to_sortable

Row = dict[str, Any]


class Executor:
    """Pull-style executor: each node is evaluated to a list of rows."""

    def __init__(self, storage: StorageManager) -> None:
        self._storage = storage

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def execute(self, plan: PhysicalPlan) -> list[Row]:
        """Run the plan and return projected result rows."""
        rows = self._execute_node(plan.root)
        return self._project(rows, plan.select_items)

    # ------------------------------------------------------------------
    # node dispatch
    # ------------------------------------------------------------------

    def _execute_node(self, node: PlanNode) -> list[Row]:
        handler_name = self._HANDLERS.get(node.node_type)
        if handler_name is None:
            raise ExecutionError(f"no executor for node type {node.node_type!r}")
        return getattr(self, handler_name)(node)

    # -- scans -----------------------------------------------------------

    def _execute_seq_scan(self, node: PlanNode) -> list[Row]:
        table = self._storage.table(node.relation)
        rows = list(table.as_dicts(node.alias))
        return self._apply_filter(rows, node.filter)

    def _execute_index_scan(self, node: PlanNode) -> list[Row]:
        table = self._storage.table(node.relation)
        index_data = self._storage.index_data(node.index_name)
        row_ids = self._index_lookup(node, index_data)
        prefix = (node.alias or node.relation).lower()
        names = [f"{prefix}.{column.name}" for column in table.schema.columns]
        rows = [dict(zip(names, table.fetch(row_id))) for row_id in row_ids]
        rows = self._apply_filter(rows, node.index_condition)
        return self._apply_filter(rows, node.filter)

    def _index_lookup(self, node: PlanNode, index_data) -> list[int]:
        conjuncts = split_conjuncts(node.index_condition)
        equality_value = None
        low = high = None
        low_inclusive = high_inclusive = True
        for conjunct in conjuncts:
            if not isinstance(conjunct, BinaryOp):
                continue
            column, value, operator = _normalize_comparison(conjunct)
            if column is None:
                continue
            if operator == "=":
                equality_value = value
            elif operator in (">", ">="):
                low, low_inclusive = value, operator == ">="
            elif operator in ("<", "<="):
                high, high_inclusive = value, operator == "<="
        if equality_value is not None:
            return index_data.lookup(equality_value)
        if isinstance(index_data, BTreeIndexData):
            return index_data.range_lookup(low, high, low_inclusive, high_inclusive)
        raise ExecutionError("hash index cannot serve a range predicate")

    # -- joins -----------------------------------------------------------

    def _execute_hash_join(self, node: PlanNode) -> list[Row]:
        outer_rows = self._execute_node(node.children[0])
        inner_rows = self._execute_node(node.children[1])
        return self._equality_join(outer_rows, inner_rows, node.join_condition)

    def _execute_merge_join(self, node: PlanNode) -> list[Row]:
        outer_rows = self._execute_node(node.children[0])
        inner_rows = self._execute_node(node.children[1])
        return self._equality_join(outer_rows, inner_rows, node.join_condition)

    def _execute_nested_loop(self, node: PlanNode) -> list[Row]:
        outer_rows = self._execute_node(node.children[0])
        inner_rows = self._execute_node(node.children[1])
        results: list[Row] = []
        for outer in outer_rows:
            for inner in inner_rows:
                combined = {**outer, **inner}
                if node.join_condition is None or evaluate(node.join_condition, combined):
                    results.append(combined)
        return results

    def _equality_join(
        self, outer_rows: list[Row], inner_rows: list[Row], condition: Optional[Expression]
    ) -> list[Row]:
        if not outer_rows or not inner_rows:
            return []
        equijoins = [
            conjunct for conjunct in split_conjuncts(condition) if is_equijoin(conjunct)
        ]
        key_pairs = _resolve_key_sides(equijoins, outer_rows[0], inner_rows[0])
        if not key_pairs:
            # degenerate: no usable equality keys — fall back to nested loop
            results = []
            for outer in outer_rows:
                for inner in inner_rows:
                    combined = {**outer, **inner}
                    if condition is None or evaluate(condition, combined):
                        results.append(combined)
            return results
        buckets: dict[tuple, list[Row]] = {}
        for inner in inner_rows:
            key = tuple(evaluate(inner_expr, inner) for _, inner_expr in key_pairs)
            if any(value is None for value in key):
                continue
            buckets.setdefault(key, []).append(inner)
        results = []
        for outer in outer_rows:
            key = tuple(evaluate(outer_expr, outer) for outer_expr, _ in key_pairs)
            if any(value is None for value in key):
                continue
            for inner in buckets.get(key, ()):  # probe
                combined = {**outer, **inner}
                if condition is None or evaluate(condition, combined):
                    results.append(combined)
        return results

    # -- pass-through / ordering / limiting --------------------------------

    def _execute_passthrough(self, node: PlanNode) -> list[Row]:
        return self._execute_node(node.children[0])

    def _execute_sort(self, node: PlanNode) -> list[Row]:
        rows = self._execute_node(node.children[0])
        order_expressions = node.extra.get("order_expressions", [])
        if not order_expressions:
            return rows
        for expression, descending in reversed(order_expressions):
            rows.sort(
                key=lambda row, expr=expression: to_sortable(evaluate(expr, row)),
                reverse=descending,
            )
        return rows

    def _execute_limit(self, node: PlanNode) -> list[Row]:
        rows = self._execute_node(node.children[0])
        offset = int(node.extra.get("offset", 0) or 0)
        limit = node.extra.get("limit")
        if limit is None:
            return rows[offset:]
        return rows[offset : offset + int(limit)]

    def _execute_unique(self, node: PlanNode) -> list[Row]:
        rows = self._execute_node(node.children[0])
        expressions = node.extra.get("unique_expressions", [])
        seen: set[tuple] = set()
        results: list[Row] = []
        for row in rows:
            if expressions:
                key = tuple(_hashable(evaluate(expression, row)) for expression in expressions)
            else:
                key = tuple(sorted((name, _hashable(value)) for name, value in row.items()))
            if key in seen:
                continue
            seen.add(key)
            results.append(row)
        return results

    # -- aggregation -------------------------------------------------------

    def _execute_aggregate(self, node: PlanNode) -> list[Row]:
        rows = self._execute_node(node.children[0])
        group_expressions = node.group_expressions
        groups: dict[tuple, list[Row]] = {}
        order: list[tuple] = []
        if group_expressions:
            for row in rows:
                key = tuple(
                    _hashable(evaluate(expression, row)) for expression in group_expressions
                )
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(row)
        else:
            groups[()] = rows
            order.append(())

        results: list[Row] = []
        for key in order:
            members = groups[key]
            if not members and not group_expressions:
                representative: Row = {}
            else:
                representative = dict(members[0]) if members else {}
            output = dict(representative)
            for expression in group_expressions:
                output[str(expression)] = evaluate(expression, representative) if members else None
            for call in node.aggregate_calls:
                output[str(call)] = _compute_aggregate(call, members)
            if node.filter is not None and not evaluate(node.filter, output):
                continue
            results.append(output)
        return results

    # -- helpers -----------------------------------------------------------

    def _apply_filter(self, rows: list[Row], condition: Optional[Expression]) -> list[Row]:
        if condition is None:
            return rows
        return [row for row in rows if evaluate(condition, row)]

    def _project(self, rows: list[Row], select_items: list[SelectItem]) -> list[Row]:
        if len(select_items) == 1 and isinstance(select_items[0].expression, Star):
            return rows
        results: list[Row] = []
        for row in rows:
            projected: Row = {}
            for position, item in enumerate(select_items):
                if isinstance(item.expression, Star):
                    projected.update(row)
                    continue
                projected[item.output_name(position)] = evaluate(item.expression, row)
            results.append(projected)
        return results

    #: node-type dispatch table, built once at class creation instead of on
    #: every node visit; method *names* keep the lookup late-bound, so
    #: subclass overrides and monkeypatches still take effect
    _HANDLERS = {
        SEQ_SCAN: "_execute_seq_scan",
        PARALLEL_SEQ_SCAN: "_execute_seq_scan",
        INDEX_SCAN: "_execute_index_scan",
        INDEX_ONLY_SCAN: "_execute_index_scan",
        BITMAP_HEAP_SCAN: "_execute_seq_scan",
        HASH_JOIN: "_execute_hash_join",
        MERGE_JOIN: "_execute_merge_join",
        NESTED_LOOP: "_execute_nested_loop",
        HASH: "_execute_passthrough",
        MATERIALIZE: "_execute_passthrough",
        GATHER: "_execute_passthrough",
        SORT: "_execute_sort",
        AGGREGATE: "_execute_aggregate",
        GROUP_AGGREGATE: "_execute_aggregate",
        HASH_AGGREGATE: "_execute_aggregate",
        UNIQUE: "_execute_unique",
        LIMIT: "_execute_limit",
    }


def _normalize_comparison(conjunct: BinaryOp):
    """Return (column, literal value, operator) with the column on the left."""
    from repro.sqlengine.ast_nodes import Literal

    if isinstance(conjunct.left, ColumnRef) and isinstance(conjunct.right, Literal):
        return conjunct.left, conjunct.right.value, conjunct.operator
    if isinstance(conjunct.right, ColumnRef) and isinstance(conjunct.left, Literal):
        flips = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        return conjunct.right, conjunct.left.value, flips.get(conjunct.operator, conjunct.operator)
    return None, None, None


def _resolve_key_sides(
    equijoins: Iterable[BinaryOp], outer_sample: Row, inner_sample: Row
) -> list[tuple[Expression, Expression]]:
    """Assign each side of every equi-join predicate to outer/inner inputs."""
    pairs: list[tuple[Expression, Expression]] = []
    for predicate in equijoins:
        left, right = predicate.left, predicate.right
        if _resolvable(left, outer_sample) and _resolvable(right, inner_sample):
            pairs.append((left, right))
        elif _resolvable(right, outer_sample) and _resolvable(left, inner_sample):
            pairs.append((right, left))
    return pairs


def _resolvable(expression: Expression, row: Row) -> bool:
    try:
        evaluate(expression, row)
        return True
    except ExecutionError:
        return False


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, dict, set)):
        return str(value)
    return value


def _compute_aggregate(call: FunctionCall, rows: list[Row]) -> Any:
    name = call.name.lower()
    argument = call.arguments[0] if call.arguments else Star()
    if isinstance(argument, Star):
        values: list[Any] = [1] * len(rows)
    else:
        values = [evaluate(argument, row) for row in rows]
        values = [value for value in values if value is not None]
    if call.distinct:
        unique: list[Any] = []
        seen: set[Any] = set()
        for value in values:
            marker = _hashable(value)
            if marker not in seen:
                seen.add(marker)
                unique.append(value)
        values = unique
    if name == "count":
        return len(values)
    if not values:
        return None
    if name == "sum":
        return sum(values)
    if name == "avg":
        return sum(values) / len(values)
    if name == "min":
        return min(values, key=to_sortable)
    if name == "max":
        return max(values, key=to_sortable)
    raise ExecutionError(f"unsupported aggregate {call.name!r}")
