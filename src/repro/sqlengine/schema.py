"""Catalog objects: tables, columns, and indexes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import CatalogError
from repro.sqlengine.types import DataType


@dataclass(frozen=True)
class Column:
    """A column definition inside a table schema."""

    name: str
    data_type: DataType
    nullable: bool = True

    def qualified(self, table: str) -> str:
        """Return the ``table.column`` form used in plan conditions."""
        return f"{table}.{self.name}"


@dataclass
class TableSchema:
    """A table definition: ordered columns plus an optional primary key."""

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in table {self.name!r}")
        missing = [key for key in self.primary_key if key not in names]
        if missing:
            raise CatalogError(
                f"primary key columns {missing} not present in table {self.name!r}"
            )

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    def position(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise CatalogError(f"table {self.name!r} has no column {name!r}")


@dataclass(frozen=True)
class Index:
    """A secondary index over one or more columns of a table.

    ``kind`` is ``"btree"`` (ordered; supports range predicates) or ``"hash"``
    (equality only), mirroring the access methods the optimizer distinguishes.
    """

    name: str
    table: str
    columns: tuple[str, ...]
    kind: str = "btree"
    unique: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("btree", "hash"):
            raise CatalogError(f"unsupported index kind {self.kind!r}")
        if not self.columns:
            raise CatalogError(f"index {self.name!r} must cover at least one column")

    @property
    def leading_column(self) -> str:
        return self.columns[0]


class Catalog:
    """The set of table schemas and indexes known to a database."""

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}
        self._indexes: dict[str, Index] = {}

    # -- tables ---------------------------------------------------------

    def add_table(self, schema: TableSchema) -> None:
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        self._tables[key] = schema

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        for index_name in [i.name for i in self.indexes_for(name)]:
            del self._indexes[index_name.lower()]

    def table(self, name: str) -> TableSchema:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> Iterator[TableSchema]:
        return iter(self._tables.values())

    @property
    def table_names(self) -> list[str]:
        return [schema.name for schema in self._tables.values()]

    # -- indexes --------------------------------------------------------

    def add_index(self, index: Index) -> None:
        key = index.name.lower()
        if key in self._indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        schema = self.table(index.table)
        for column in index.columns:
            if not schema.has_column(column):
                raise CatalogError(
                    f"index {index.name!r} references unknown column {column!r}"
                )
        self._indexes[key] = index

    def index(self, name: str) -> Index:
        try:
            return self._indexes[name.lower()]
        except KeyError:
            raise CatalogError(f"index {name!r} does not exist") from None

    def has_index(self, name: str) -> bool:
        return name.lower() in self._indexes

    def indexes(self) -> Iterator[Index]:
        return iter(self._indexes.values())

    def indexes_for(self, table: str) -> list[Index]:
        return [index for index in self._indexes.values() if index.table.lower() == table.lower()]

    # -- convenience ----------------------------------------------------

    def resolve_column(self, name: str, tables: Iterable[str]) -> tuple[str, Column]:
        """Resolve an unqualified column name against a set of candidate tables.

        Returns the owning table name and the column.  Raises
        :class:`CatalogError` when the column is ambiguous or unknown.
        """
        matches: list[tuple[str, Column]] = []
        for table_name in tables:
            schema = self.table(table_name)
            if schema.has_column(name):
                matches.append((schema.name, schema.column(name)))
        if not matches:
            raise CatalogError(f"column {name!r} not found in {list(tables)!r}")
        if len(matches) > 1:
            raise CatalogError(f"column {name!r} is ambiguous across {list(tables)!r}")
        return matches[0]
