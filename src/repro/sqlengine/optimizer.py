"""Cost-based query planner.

The planner performs the classic pipeline:

1. *Binding*: resolve FROM/JOIN relations against the catalog, classify WHERE
   conjuncts into single-relation filters and join predicates.
2. *Access path selection*: per relation, compare sequential scan against
   index scans matching its filters (plus an optional parallel scan for very
   large tables).
3. *Join ordering*: dynamic programming over connected sub-sets (greedy
   fall-back above a size threshold), selecting hash join, merge join, or
   (index) nested loop per edge by cost.
4. *Post-join planning*: aggregation (hashed vs sorted strategy), HAVING,
   DISTINCT, ORDER BY, LIMIT.

The output is a :class:`repro.sqlengine.physical.PhysicalPlan` whose node
vocabulary matches PostgreSQL's EXPLAIN.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.errors import PlanningError
from repro.sqlengine import cost as costmodel
from repro.sqlengine.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    SelectItem,
    SelectStatement,
    Star,
)
from repro.sqlengine.cost import CostParameters, DEFAULT_COST_PARAMETERS
from repro.sqlengine.expressions import (
    combine_conjuncts,
    is_equijoin,
    referenced_bindings,
    split_conjuncts,
)
from repro.sqlengine.physical import (
    AGGREGATE,
    GATHER,
    GROUP_AGGREGATE,
    HASH,
    HASH_AGGREGATE,
    HASH_JOIN,
    INDEX_SCAN,
    LIMIT,
    MATERIALIZE,
    MERGE_JOIN,
    NESTED_LOOP,
    PARALLEL_SEQ_SCAN,
    PhysicalPlan,
    PlanNode,
    SEQ_SCAN,
    SORT,
    UNIQUE,
)
from repro.sqlengine.schema import Catalog, Index
from repro.sqlengine.statistics import SelectivityEstimator, TableStatistics

_DP_RELATION_LIMIT = 8
_PARALLEL_SCAN_THRESHOLD = 200_000


@dataclass
class BoundRelation:
    """A FROM-clause relation resolved against the catalog."""

    binding: str
    table_name: str
    filters: list[Expression] = field(default_factory=list)


@dataclass
class QueryContext:
    """Everything the planner needs about one statement."""

    statement: SelectStatement
    relations: dict[str, BoundRelation]
    join_predicates: list[Expression]
    column_binding: dict[str, str]
    estimator: SelectivityEstimator
    statistics: Mapping[str, TableStatistics]


class Planner:
    """Builds physical plans for SELECT statements."""

    def __init__(
        self,
        catalog: Catalog,
        statistics: Mapping[str, TableStatistics],
        parameters: CostParameters = DEFAULT_COST_PARAMETERS,
        enable_parallel: bool = True,
    ) -> None:
        self._catalog = catalog
        self._statistics = {key.lower(): value for key, value in statistics.items()}
        self._parameters = parameters
        self._enable_parallel = enable_parallel

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def plan(self, statement: SelectStatement, sql_text: str = "") -> PhysicalPlan:
        context = self._bind(statement)
        root = self._plan_joins(context)
        root = self._plan_aggregation(context, root)
        root = self._plan_distinct(context, root)
        root = self._plan_order_and_limit(context, root)
        root.output = [
            item.output_name(position) for position, item in enumerate(statement.select_items)
        ]
        return PhysicalPlan(
            root=root,
            select_items=statement.select_items,
            distinct=statement.distinct,
            statement_text=sql_text,
        )

    # ------------------------------------------------------------------
    # binding
    # ------------------------------------------------------------------

    def _bind(self, statement: SelectStatement) -> QueryContext:
        relations: dict[str, BoundRelation] = {}
        for reference in statement.relations:
            if not self._catalog.has_table(reference.name):
                raise PlanningError(f"unknown table {reference.name!r}")
            binding = reference.binding.lower()
            if binding in relations:
                raise PlanningError(f"duplicate relation binding {binding!r}")
            relations[binding] = BoundRelation(binding=binding, table_name=reference.name.lower())

        column_binding: dict[str, str] = {}
        ambiguous: set[str] = set()
        for relation in relations.values():
            schema = self._catalog.table(relation.table_name)
            for column in schema.columns:
                if column.name in column_binding:
                    ambiguous.add(column.name)
                else:
                    column_binding[column.name] = relation.binding
        for name in ambiguous:
            column_binding.pop(name, None)

        statistics_by_binding = {
            relation.binding: self._statistics.get(
                relation.table_name, TableStatistics(row_count=1000, page_count=10)
            )
            for relation in relations.values()
        }
        estimator = SelectivityEstimator(statistics_by_binding, column_binding)

        conjuncts = split_conjuncts(statement.where)
        for join in statement.joins:
            conjuncts.extend(split_conjuncts(join.condition))
        join_predicates: list[Expression] = []
        for conjunct in conjuncts:
            bindings = referenced_bindings(conjunct, column_binding)
            if len(bindings) == 1:
                relations[next(iter(bindings)).lower()].filters.append(conjunct)
            elif len(bindings) >= 2:
                join_predicates.append(conjunct)
            else:
                # constant predicate: attach to the first relation
                first = next(iter(relations.values()))
                first.filters.append(conjunct)

        return QueryContext(
            statement=statement,
            relations=relations,
            join_predicates=join_predicates,
            column_binding=column_binding,
            estimator=estimator,
            statistics=statistics_by_binding,
        )

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------

    def _relation_statistics(self, context: QueryContext, binding: str) -> TableStatistics:
        return context.statistics[binding]

    def _scan_plan(self, context: QueryContext, relation: BoundRelation) -> PlanNode:
        statistics = self._relation_statistics(context, relation.binding)
        filter_expression = combine_conjuncts(relation.filters)
        selectivity = context.estimator.selectivity(filter_expression)
        output_rows = max(statistics.row_count * selectivity, 1.0)

        best = self._sequential_scan(relation, statistics, filter_expression, output_rows)
        for index in self._catalog.indexes_for(relation.table_name):
            candidate = self._index_scan(
                context, relation, statistics, index, filter_expression, output_rows
            )
            if candidate is not None and candidate.total_cost < best.total_cost:
                best = candidate
        return best

    def _sequential_scan(
        self,
        relation: BoundRelation,
        statistics: TableStatistics,
        filter_expression: Optional[Expression],
        output_rows: float,
    ) -> PlanNode:
        run_cost = costmodel.seq_scan_cost(
            statistics.page_count, statistics.row_count, self._parameters
        )
        node_type = SEQ_SCAN
        workers = 0
        if self._enable_parallel and statistics.row_count >= _PARALLEL_SCAN_THRESHOLD:
            node_type = PARALLEL_SEQ_SCAN
            workers = 2
            run_cost = run_cost / (workers + 1)
        scan = PlanNode(
            node_type=node_type,
            relation=relation.table_name,
            alias=relation.binding,
            filter=filter_expression,
            total_cost=run_cost,
            plan_rows=output_rows,
            parallel_workers=workers,
        )
        if node_type == PARALLEL_SEQ_SCAN:
            gather = PlanNode(
                node_type=GATHER,
                children=[scan],
                total_cost=run_cost + output_rows * self._parameters.cpu_tuple_cost,
                plan_rows=output_rows,
                parallel_workers=workers,
            )
            return gather
        return scan

    def _index_scan(
        self,
        context: QueryContext,
        relation: BoundRelation,
        statistics: TableStatistics,
        index: Index,
        filter_expression: Optional[Expression],
        output_rows: float,
    ) -> Optional[PlanNode]:
        index_conjuncts: list[Expression] = []
        residual: list[Expression] = []
        for conjunct in relation.filters:
            if self._matches_index(conjunct, index, relation.binding, context):
                index_conjuncts.append(conjunct)
            else:
                residual.append(conjunct)
        if not index_conjuncts:
            return None
        index_condition = combine_conjuncts(index_conjuncts)
        index_selectivity = context.estimator.selectivity(index_condition)
        matching = max(statistics.row_count * index_selectivity, 1.0)
        run_cost = costmodel.index_scan_cost(
            matching, statistics.page_count, statistics.row_count, self._parameters
        )
        return PlanNode(
            node_type=INDEX_SCAN,
            relation=relation.table_name,
            alias=relation.binding,
            index_name=index.name,
            index_condition=index_condition,
            filter=combine_conjuncts(residual),
            total_cost=run_cost,
            plan_rows=output_rows,
        )

    def _matches_index(
        self,
        conjunct: Expression,
        index: Index,
        binding: str,
        context: QueryContext,
    ) -> bool:
        """Whether a conjunct is a sargable predicate on the index's leading column."""
        if not isinstance(conjunct, BinaryOp):
            return False
        comparison = conjunct.operator in ("=", "<", "<=", ">", ">=")
        if not comparison:
            return False
        if index.kind == "hash" and conjunct.operator != "=":
            return False
        column: Optional[ColumnRef] = None
        if isinstance(conjunct.left, ColumnRef):
            column = conjunct.left
        elif isinstance(conjunct.right, ColumnRef):
            column = conjunct.right
        if column is None:
            return False
        column_binding = column.table.lower() if column.table else context.column_binding.get(column.name)
        if column_binding != binding:
            return False
        return column.name == index.leading_column

    # ------------------------------------------------------------------
    # join planning
    # ------------------------------------------------------------------

    def _plan_joins(self, context: QueryContext) -> PlanNode:
        bindings = list(context.relations)
        base_plans = {
            frozenset([binding]): self._scan_plan(context, context.relations[binding])
            for binding in bindings
        }
        if len(bindings) == 1:
            return base_plans[frozenset(bindings)]
        if len(bindings) <= _DP_RELATION_LIMIT:
            return self._dynamic_programming(context, bindings, base_plans)
        return self._greedy_join(context, bindings, base_plans)

    def _applicable_predicates(
        self, context: QueryContext, left: frozenset[str], right: frozenset[str]
    ) -> list[Expression]:
        combined = left | right
        predicates = []
        for predicate in context.join_predicates:
            touched = {
                binding.lower()
                for binding in referenced_bindings(predicate, context.column_binding)
            }
            if touched <= combined and touched & left and touched & right:
                predicates.append(predicate)
        return predicates

    def _dynamic_programming(
        self,
        context: QueryContext,
        bindings: list[str],
        base_plans: dict[frozenset[str], PlanNode],
    ) -> PlanNode:
        best: dict[frozenset[str], PlanNode] = dict(base_plans)
        for size in range(2, len(bindings) + 1):
            for subset in itertools.combinations(bindings, size):
                subset_key = frozenset(subset)
                candidates: list[PlanNode] = []
                for split in range(1, size):
                    for left_combination in itertools.combinations(subset, split):
                        left_key = frozenset(left_combination)
                        right_key = subset_key - left_key
                        if left_key not in best or right_key not in best:
                            continue
                        predicates = self._applicable_predicates(context, left_key, right_key)
                        if not predicates and size < len(bindings):
                            # postpone cross products until forced
                            continue
                        candidates.append(
                            self._best_join(
                                context, best[left_key], best[right_key], predicates
                            )
                        )
                if not candidates:
                    # forced cross product among whatever sub-plans exist
                    for split in range(1, size):
                        for left_combination in itertools.combinations(subset, split):
                            left_key = frozenset(left_combination)
                            right_key = subset_key - left_key
                            if left_key in best and right_key in best:
                                candidates.append(
                                    self._best_join(context, best[left_key], best[right_key], [])
                                )
                if candidates:
                    best[subset_key] = min(candidates, key=lambda plan: plan.total_cost)
        final_key = frozenset(bindings)
        if final_key not in best:
            raise PlanningError("join ordering failed to cover all relations")
        return best[final_key]

    def _greedy_join(
        self,
        context: QueryContext,
        bindings: list[str],
        base_plans: dict[frozenset[str], PlanNode],
    ) -> PlanNode:
        remaining = {frozenset([binding]): plan for binding, plan in
                     ((next(iter(key)), value) for key, value in base_plans.items())}
        while len(remaining) > 1:
            best_pair = None
            best_plan = None
            for left_key, right_key in itertools.combinations(list(remaining), 2):
                predicates = self._applicable_predicates(context, left_key, right_key)
                candidate = self._best_join(
                    context, remaining[left_key], remaining[right_key], predicates
                )
                if best_plan is None or candidate.total_cost < best_plan.total_cost:
                    best_plan = candidate
                    best_pair = (left_key, right_key)
            assert best_pair is not None and best_plan is not None
            left_key, right_key = best_pair
            remaining.pop(left_key)
            remaining.pop(right_key)
            remaining[left_key | right_key] = best_plan
        return next(iter(remaining.values()))

    def _best_join(
        self,
        context: QueryContext,
        left: PlanNode,
        right: PlanNode,
        predicates: list[Expression],
    ) -> PlanNode:
        condition = combine_conjuncts(predicates)
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= context.estimator.selectivity(predicate)
        output_rows = max(left.plan_rows * right.plan_rows * selectivity, 1.0)
        equijoins = [predicate for predicate in predicates if is_equijoin(predicate)]

        candidates: list[PlanNode] = []
        if equijoins:
            candidates.append(self._hash_join(left, right, condition, output_rows))
            candidates.append(self._merge_join(left, right, condition, equijoins, output_rows))
        candidates.append(self._nested_loop(left, right, condition, output_rows))
        return min(candidates, key=lambda plan: plan.total_cost)

    def _hash_join(
        self,
        outer: PlanNode,
        inner: PlanNode,
        condition: Optional[Expression],
        output_rows: float,
    ) -> PlanNode:
        # build over the smaller input, as PostgreSQL does
        if inner.plan_rows > outer.plan_rows:
            outer, inner = inner, outer
        hash_node = PlanNode(
            node_type=HASH,
            children=[inner],
            total_cost=inner.total_cost
            + inner.plan_rows * self._parameters.hash_build_cost_per_tuple,
            plan_rows=inner.plan_rows,
        )
        join_cost = costmodel.hash_join_cost(outer.plan_rows, inner.plan_rows, self._parameters)
        return PlanNode(
            node_type=HASH_JOIN,
            children=[outer, hash_node],
            join_condition=condition,
            total_cost=outer.total_cost + hash_node.total_cost + join_cost,
            plan_rows=output_rows,
        )

    def _merge_join(
        self,
        outer: PlanNode,
        inner: PlanNode,
        condition: Optional[Expression],
        equijoins: list[Expression],
        output_rows: float,
    ) -> PlanNode:
        first = equijoins[0]
        assert isinstance(first, BinaryOp)
        outer_key = str(first.left)
        inner_key = str(first.right)
        outer_sort = PlanNode(
            node_type=SORT,
            children=[outer],
            sort_keys=[outer_key],
            total_cost=outer.total_cost + costmodel.sort_cost(outer.plan_rows, self._parameters),
            plan_rows=outer.plan_rows,
            extra={"order_expressions": [(first.left, False)]},
        )
        inner_sort = PlanNode(
            node_type=SORT,
            children=[inner],
            sort_keys=[inner_key],
            total_cost=inner.total_cost + costmodel.sort_cost(inner.plan_rows, self._parameters),
            plan_rows=inner.plan_rows,
            extra={"order_expressions": [(first.right, False)]},
        )
        join_cost = costmodel.merge_join_cost(outer.plan_rows, inner.plan_rows, self._parameters)
        return PlanNode(
            node_type=MERGE_JOIN,
            children=[outer_sort, inner_sort],
            join_condition=condition,
            total_cost=outer_sort.total_cost + inner_sort.total_cost + join_cost,
            plan_rows=output_rows,
            extra={"merge_keys": [(predicate.left, predicate.right) for predicate in
                                  equijoins if isinstance(predicate, BinaryOp)]},
        )

    def _nested_loop(
        self,
        outer: PlanNode,
        inner: PlanNode,
        condition: Optional[Expression],
        output_rows: float,
    ) -> PlanNode:
        # prefer the smaller input as the outer loop
        if outer.plan_rows > inner.plan_rows:
            outer, inner = inner, outer
        inner_child = inner
        if inner.node_type not in (INDEX_SCAN,):
            inner_child = PlanNode(
                node_type=MATERIALIZE,
                children=[inner],
                total_cost=inner.total_cost
                + inner.plan_rows * self._parameters.materialize_cost_per_tuple,
                plan_rows=inner.plan_rows,
            )
        loop_cost = costmodel.nested_loop_cost(
            outer.plan_rows,
            inner_child.plan_rows * self._parameters.cpu_tuple_cost,
            inner_child.plan_rows,
            self._parameters,
        )
        return PlanNode(
            node_type=NESTED_LOOP,
            children=[outer, inner_child],
            join_condition=condition,
            total_cost=outer.total_cost + inner_child.total_cost + loop_cost,
            plan_rows=output_rows,
        )

    # ------------------------------------------------------------------
    # aggregation / distinct / order / limit
    # ------------------------------------------------------------------

    def _plan_aggregation(self, context: QueryContext, child: PlanNode) -> PlanNode:
        statement = context.statement
        if not statement.has_aggregation:
            return child
        aggregate_calls = _deduplicate_aggregates(statement.aggregates())
        group_expressions = list(statement.group_by)
        group_keys = [str(expression) for expression in group_expressions]
        if group_expressions:
            groups = 1.0
            for expression in group_expressions:
                if isinstance(expression, ColumnRef):
                    groups *= context.estimator.distinct_values(expression, child.plan_rows)
                else:
                    groups *= 10.0
            groups = max(min(groups, child.plan_rows), 1.0)
        else:
            groups = 1.0

        hashed_cost = child.total_cost + costmodel.aggregate_cost(
            child.plan_rows, groups, self._parameters
        )
        sorted_cost = (
            child.total_cost
            + costmodel.sort_cost(child.plan_rows, self._parameters)
            + costmodel.aggregate_cost(child.plan_rows, groups, self._parameters)
        )
        if not group_expressions:
            strategy = "Plain"
            node_type = AGGREGATE
            aggregate_child = child
            total_cost = hashed_cost
        elif hashed_cost <= sorted_cost:
            strategy = "Hashed"
            node_type = HASH_AGGREGATE
            aggregate_child = child
            total_cost = hashed_cost
        else:
            strategy = "Sorted"
            node_type = GROUP_AGGREGATE
            aggregate_child = PlanNode(
                node_type=SORT,
                children=[child],
                sort_keys=group_keys,
                total_cost=child.total_cost + costmodel.sort_cost(child.plan_rows, self._parameters),
                plan_rows=child.plan_rows,
                extra={
                    "order_expressions": [
                        (expression, False) for expression in group_expressions
                    ]
                },
            )
            total_cost = sorted_cost
        return PlanNode(
            node_type=node_type,
            children=[aggregate_child],
            strategy=strategy,
            group_keys=group_keys,
            group_expressions=group_expressions,
            aggregate_calls=aggregate_calls,
            filter=statement.having,
            total_cost=total_cost,
            plan_rows=groups,
        )

    def _plan_distinct(self, context: QueryContext, child: PlanNode) -> PlanNode:
        statement = context.statement
        if not statement.distinct:
            return child
        keys = [str(item.expression) for item in statement.select_items]
        key_expressions = [item.expression for item in statement.select_items]
        if statement.has_aggregation or statement.order_by:
            sort_node = PlanNode(
                node_type=SORT,
                children=[child],
                sort_keys=keys,
                total_cost=child.total_cost + costmodel.sort_cost(child.plan_rows, self._parameters),
                plan_rows=child.plan_rows,
                extra={
                    "order_expressions": [
                        (expression, False) for expression in key_expressions
                    ]
                },
            )
            return PlanNode(
                node_type=UNIQUE,
                children=[sort_node],
                group_keys=keys,
                total_cost=sort_node.total_cost + child.plan_rows * self._parameters.cpu_operator_cost,
                plan_rows=max(child.plan_rows * 0.9, 1.0),
                extra={"unique_expressions": key_expressions},
            )
        return PlanNode(
            node_type=HASH_AGGREGATE,
            children=[child],
            strategy="Hashed",
            group_keys=keys,
            group_expressions=[item.expression for item in statement.select_items],
            total_cost=child.total_cost
            + costmodel.aggregate_cost(child.plan_rows, child.plan_rows * 0.9, self._parameters),
            plan_rows=max(child.plan_rows * 0.9, 1.0),
        )

    def _plan_order_and_limit(self, context: QueryContext, child: PlanNode) -> PlanNode:
        statement = context.statement
        node = child
        if statement.order_by:
            keys = [str(item) for item in statement.order_by]
            resolved = [
                (_resolve_output_alias(item.expression, statement), item.descending)
                for item in statement.order_by
            ]
            node = PlanNode(
                node_type=SORT,
                children=[node],
                sort_keys=keys,
                total_cost=node.total_cost + costmodel.sort_cost(node.plan_rows, self._parameters),
                plan_rows=node.plan_rows,
                extra={"order_expressions": resolved},
            )
        if statement.limit is not None:
            limited = min(float(statement.limit), node.plan_rows)
            node = PlanNode(
                node_type=LIMIT,
                children=[node],
                total_cost=node.total_cost,
                plan_rows=max(limited, 1.0),
                extra={"limit": statement.limit, "offset": statement.offset or 0},
            )
        return node


def _resolve_output_alias(expression: Expression, statement: SelectStatement) -> Expression:
    """Resolve an ORDER BY reference to a SELECT output alias to its expression."""
    if isinstance(expression, ColumnRef) and expression.table is None:
        for item in statement.select_items:
            if item.alias and item.alias == expression.name:
                return item.expression
    return expression


def _deduplicate_aggregates(calls: list[FunctionCall]) -> list[FunctionCall]:
    seen: dict[str, FunctionCall] = {}
    for call in calls:
        seen.setdefault(str(call), call)
    return list(seen.values())
