"""In-memory storage: heap tables and secondary indexes."""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import CatalogError, ExecutionError
from repro.sqlengine.schema import Index, TableSchema
from repro.sqlengine.types import coerce, to_sortable


class HeapTable:
    """Row storage for one table: a list of tuples in insertion order."""

    #: approximate bytes per value used to derive a page count for the cost model
    _BYTES_PER_VALUE = 16
    _PAGE_SIZE = 8192

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[tuple[Any, ...]] = []

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def page_count(self) -> int:
        """Number of 8 KB pages the table would occupy on disk."""
        bytes_per_row = max(1, len(self.schema.columns)) * self._BYTES_PER_VALUE
        total = bytes_per_row * max(1, len(self._rows))
        return max(1, total // self._PAGE_SIZE)

    def insert(self, values: Sequence[Any] | dict[str, Any]) -> None:
        """Insert one row given positionally or as a column->value mapping."""
        if isinstance(values, dict):
            ordered = [values.get(column.name) for column in self.schema.columns]
        else:
            if len(values) != len(self.schema.columns):
                raise ExecutionError(
                    f"table {self.schema.name!r} expects {len(self.schema.columns)} values, "
                    f"got {len(values)}"
                )
            ordered = list(values)
        row = tuple(
            coerce(value, column.data_type)
            for value, column in zip(ordered, self.schema.columns)
        )
        self._rows.append(row)

    def insert_many(self, rows: Iterable[Sequence[Any] | dict[str, Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def scan(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._rows)

    def fetch(self, row_id: int) -> tuple[Any, ...]:
        return self._rows[row_id]

    def column_values(self, column: str) -> list[Any]:
        position = self.schema.position(column)
        return [row[position] for row in self._rows]

    def as_dicts(self, binding: str | None = None) -> Iterator[dict[str, Any]]:
        """Yield rows as ``binding.column`` keyed dictionaries."""
        prefix = (binding or self.schema.name).lower()
        names = [f"{prefix}.{column.name}" for column in self.schema.columns]
        for row in self._rows:
            yield dict(zip(names, row))


class HashIndexData:
    """Equality-lookup index: value -> list of row ids."""

    def __init__(self, index: Index, table: HeapTable) -> None:
        self.index = index
        self._buckets: dict[Any, list[int]] = {}
        positions = [table.schema.position(column) for column in index.columns]
        for row_id, row in enumerate(table.scan()):
            key = tuple(row[position] for position in positions)
            key = key[0] if len(key) == 1 else key
            self._buckets.setdefault(key, []).append(row_id)

    def lookup(self, key: Any) -> list[int]:
        return list(self._buckets.get(key, []))

    @property
    def distinct_keys(self) -> int:
        return len(self._buckets)


class BTreeIndexData:
    """Ordered index: sorted (key, row id) pairs supporting range scans."""

    def __init__(self, index: Index, table: HeapTable) -> None:
        self.index = index
        position = table.schema.position(index.leading_column)
        pairs = [
            (to_sortable(row[position]), row[position], row_id)
            for row_id, row in enumerate(table.scan())
        ]
        pairs.sort(key=lambda pair: pair[0])
        self._sort_keys = [pair[0] for pair in pairs]
        self._entries = [(pair[1], pair[2]) for pair in pairs]

    def range_lookup(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> list[int]:
        """Row ids whose leading key falls within [low, high]."""
        start = 0
        end = len(self._entries)
        if low is not None:
            key = to_sortable(low)
            start = (
                bisect.bisect_left(self._sort_keys, key)
                if low_inclusive
                else bisect.bisect_right(self._sort_keys, key)
            )
        if high is not None:
            key = to_sortable(high)
            end = (
                bisect.bisect_right(self._sort_keys, key)
                if high_inclusive
                else bisect.bisect_left(self._sort_keys, key)
            )
        return [row_id for _, row_id in self._entries[start:end]]

    def lookup(self, key: Any) -> list[int]:
        return self.range_lookup(low=key, high=key)

    @property
    def distinct_keys(self) -> int:
        seen = set(self._sort_keys)
        return len(seen)


class StorageManager:
    """Owns heap tables and (lazily rebuilt) index data structures."""

    def __init__(self) -> None:
        self._tables: dict[str, HeapTable] = {}
        self._index_data: dict[str, HashIndexData | BTreeIndexData] = {}
        self._index_defs: dict[str, Index] = {}
        self._dirty: set[str] = set()

    def create_table(self, schema: TableSchema) -> HeapTable:
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"storage for table {schema.name!r} already exists")
        table = HeapTable(schema)
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        self._tables.pop(name.lower(), None)
        for index_name, index in list(self._index_defs.items()):
            if index.table.lower() == name.lower():
                self._index_defs.pop(index_name, None)
                self._index_data.pop(index_name, None)

    def table(self, name: str) -> HeapTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no storage for table {name!r}") from None

    def register_index(self, index: Index) -> None:
        self._index_defs[index.name.lower()] = index
        self._dirty.add(index.name.lower())

    def mark_dirty(self, table: str) -> None:
        for name, index in self._index_defs.items():
            if index.table.lower() == table.lower():
                self._dirty.add(name)

    def index_data(self, name: str) -> HashIndexData | BTreeIndexData:
        key = name.lower()
        if key not in self._index_defs:
            raise CatalogError(f"index {name!r} is not registered")
        if key in self._dirty or key not in self._index_data:
            index = self._index_defs[key]
            table = self.table(index.table)
            if index.kind == "hash":
                self._index_data[key] = HashIndexData(index, table)
            else:
                self._index_data[key] = BTreeIndexData(index, table)
            self._dirty.discard(key)
        return self._index_data[key]
