"""Table statistics and predicate selectivity estimation.

The statistics collector (``ANALYZE`` equivalent) records per column: null
fraction, number of distinct values, min/max, most common values, and an
equi-depth histogram.  The estimator mirrors the classic System R /
PostgreSQL rules of thumb: 1/NDV for equality, interpolated fraction for
ranges, fixed defaults for LIKE and fall-back cases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.sqlengine.ast_nodes import (
    Between,
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Expression,
    InList,
    IsNull,
    Literal,
    NotOp,
)
from repro.sqlengine.storage import HeapTable
from repro.sqlengine.types import as_number, to_sortable

DEFAULT_EQUALITY_SELECTIVITY = 0.005
DEFAULT_RANGE_SELECTIVITY = 0.3333
DEFAULT_LIKE_SELECTIVITY = 0.1
DEFAULT_SELECTIVITY = 0.25
_HISTOGRAM_BUCKETS = 32
_MCV_COUNT = 8


@dataclass
class ColumnStatistics:
    """Statistics for one column of one table."""

    null_fraction: float = 0.0
    distinct_values: int = 1
    minimum: Any = None
    maximum: Any = None
    most_common_values: list[tuple[Any, float]] = field(default_factory=list)
    histogram_bounds: list[Any] = field(default_factory=list)

    def equality_selectivity(self, value: Any) -> float:
        for candidate, frequency in self.most_common_values:
            if candidate == value:
                return frequency
        if self.distinct_values <= 0:
            return DEFAULT_EQUALITY_SELECTIVITY
        mcv_fraction = sum(frequency for _, frequency in self.most_common_values)
        remaining = max(self.distinct_values - len(self.most_common_values), 1)
        return max((1.0 - mcv_fraction - self.null_fraction) / remaining, 1e-6)

    def range_selectivity(self, operator: str, value: Any) -> float:
        """Selectivity of ``column <op> value`` using min/max interpolation."""
        low = as_number(self.minimum)
        high = as_number(self.maximum)
        point = as_number(value)
        if low is None or high is None or point is None or high <= low:
            return DEFAULT_RANGE_SELECTIVITY
        fraction_below = min(max((point - low) / (high - low), 0.0), 1.0)
        if operator in ("<", "<="):
            selectivity = fraction_below
        elif operator in (">", ">="):
            selectivity = 1.0 - fraction_below
        else:
            return DEFAULT_RANGE_SELECTIVITY
        return min(max(selectivity * (1.0 - self.null_fraction), 1e-6), 1.0)


@dataclass
class TableStatistics:
    """Statistics for a table: cardinality, pages, and per-column details."""

    row_count: int = 0
    page_count: int = 1
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        return self.columns.get(name, ColumnStatistics())


def analyze_table(table: HeapTable) -> TableStatistics:
    """Collect statistics over every column of ``table``."""
    statistics = TableStatistics(row_count=table.row_count, page_count=table.page_count)
    total = table.row_count
    for column in table.schema.columns:
        values = table.column_values(column.name)
        statistics.columns[column.name] = _analyze_column(values, total)
    return statistics


def _analyze_column(values: list[Any], total: int) -> ColumnStatistics:
    if total == 0:
        return ColumnStatistics()
    non_null = [value for value in values if value is not None]
    null_fraction = 1.0 - (len(non_null) / total)
    if not non_null:
        return ColumnStatistics(null_fraction=1.0, distinct_values=0)
    counts: dict[Any, int] = {}
    for value in non_null:
        counts[value] = counts.get(value, 0) + 1
    distinct = len(counts)
    ordered = sorted(non_null, key=to_sortable)
    most_common = sorted(counts.items(), key=lambda item: item[1], reverse=True)[:_MCV_COUNT]
    mcv = [
        (value, count / total)
        for value, count in most_common
        if count > 1 or distinct <= _MCV_COUNT
    ]
    bucket_count = min(_HISTOGRAM_BUCKETS, distinct)
    bounds: list[Any] = []
    if bucket_count >= 2:
        step = (len(ordered) - 1) / bucket_count
        bounds = [ordered[int(round(index * step))] for index in range(bucket_count + 1)]
    return ColumnStatistics(
        null_fraction=null_fraction,
        distinct_values=distinct,
        minimum=ordered[0],
        maximum=ordered[-1],
        most_common_values=mcv,
        histogram_bounds=bounds,
    )


class SelectivityEstimator:
    """Estimates predicate selectivity against a set of table statistics.

    ``statistics`` maps relation *bindings* (aliases) to their
    :class:`TableStatistics`; ``column_binding`` maps bare column names to
    their binding so unqualified references resolve.
    """

    def __init__(
        self,
        statistics: Mapping[str, TableStatistics],
        column_binding: Mapping[str, str] | None = None,
    ) -> None:
        self._statistics = {key.lower(): value for key, value in statistics.items()}
        self._column_binding = {
            key.lower(): value.lower() for key, value in (column_binding or {}).items()
        }

    def _column_statistics(self, column: ColumnRef) -> Optional[ColumnStatistics]:
        binding = column.table.lower() if column.table else self._column_binding.get(column.name)
        if binding is None:
            return None
        table_statistics = self._statistics.get(binding)
        if table_statistics is None:
            return None
        return table_statistics.column(column.name)

    def selectivity(self, expression: Optional[Expression]) -> float:
        """Estimated fraction of rows satisfying ``expression``."""
        if expression is None:
            return 1.0
        if isinstance(expression, BooleanOp):
            parts = [self.selectivity(operand) for operand in expression.operands]
            if expression.operator == "and":
                return max(math.prod(parts), 1e-9)
            combined = 1.0
            for part in parts:
                combined *= 1.0 - part
            return min(max(1.0 - combined, 1e-9), 1.0)
        if isinstance(expression, NotOp):
            return min(max(1.0 - self.selectivity(expression.operand), 1e-9), 1.0)
        if isinstance(expression, BinaryOp):
            return self._binary_selectivity(expression)
        if isinstance(expression, Between):
            low = BinaryOp(">=", expression.operand, expression.low)
            high = BinaryOp("<=", expression.operand, expression.high)
            selectivity = self.selectivity(low) * self.selectivity(high)
            selectivity = min(max(selectivity, 1e-9), 1.0)
            return 1.0 - selectivity if expression.negated else selectivity
        if isinstance(expression, InList):
            base = 0.0
            for item in expression.items:
                base += self.selectivity(BinaryOp("=", expression.operand, item))
            base = min(max(base, 1e-9), 1.0)
            return 1.0 - base if expression.negated else base
        if isinstance(expression, IsNull):
            if isinstance(expression.operand, ColumnRef):
                statistics = self._column_statistics(expression.operand)
                if statistics is not None:
                    fraction = statistics.null_fraction
                    return (1.0 - fraction) if expression.negated else max(fraction, 1e-9)
            return DEFAULT_EQUALITY_SELECTIVITY
        return DEFAULT_SELECTIVITY

    def _binary_selectivity(self, expression: BinaryOp) -> float:
        operator = expression.operator
        left, right = expression.left, expression.right
        if operator == "like":
            return DEFAULT_LIKE_SELECTIVITY
        column, literal = None, None
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            column, literal = left, right.value
        elif isinstance(right, ColumnRef) and isinstance(left, Literal):
            column, literal = right, left.value
            operator = _flip_operator(operator)
        if column is not None:
            statistics = self._column_statistics(column)
            if statistics is None:
                return (
                    DEFAULT_EQUALITY_SELECTIVITY
                    if operator == "="
                    else DEFAULT_RANGE_SELECTIVITY
                )
            if operator == "=":
                return statistics.equality_selectivity(literal)
            if operator in ("<>", "!="):
                return min(max(1.0 - statistics.equality_selectivity(literal), 1e-9), 1.0)
            return statistics.range_selectivity(operator, literal)
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            return self.join_selectivity(left, right)
        return DEFAULT_SELECTIVITY

    def join_selectivity(self, left: ColumnRef, right: ColumnRef) -> float:
        """Equi-join selectivity: 1 / max(NDV(left), NDV(right))."""
        left_statistics = self._column_statistics(left)
        right_statistics = self._column_statistics(right)
        left_ndv = left_statistics.distinct_values if left_statistics else 0
        right_ndv = right_statistics.distinct_values if right_statistics else 0
        ndv = max(left_ndv, right_ndv, 1)
        return 1.0 / ndv

    def distinct_values(self, column: ColumnRef, row_count: float) -> float:
        """Estimated number of distinct values of a column within ``row_count`` rows."""
        statistics = self._column_statistics(column)
        if statistics is None or statistics.distinct_values <= 0:
            return max(min(row_count, 200.0), 1.0)
        return max(min(float(statistics.distinct_values), row_count), 1.0)


def _flip_operator(operator: str) -> str:
    flips = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
    return flips.get(operator, operator)
