"""A small, self-contained relational engine used as the QEP-producing substrate.

The LANTERN paper consumes query execution plans produced by PostgreSQL and
SQL Server.  Neither is available offline, so this package implements the
closest synthetic equivalent: a catalog, a SQL parser, table statistics, a
cost-based optimizer that picks access paths, join orders and join algorithms,
an iterator-style executor, and EXPLAIN serializers that mimic PostgreSQL's
``EXPLAIN (FORMAT JSON)`` and SQL Server's showplan XML.

The public entry point is :class:`repro.sqlengine.engine.Database`.
"""

from repro.sqlengine.engine import Database
from repro.sqlengine.schema import Catalog, Column, Index, TableSchema
from repro.sqlengine.types import DataType

__all__ = [
    "Catalog",
    "Column",
    "Database",
    "DataType",
    "Index",
    "TableSchema",
]
