"""The :class:`Database` facade tying catalog, storage, planner, and executor together."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.errors import CatalogError
from repro.sqlengine import explain as explain_module
from repro.sqlengine.ast_nodes import SelectStatement
from repro.sqlengine.cost import CostParameters, DEFAULT_COST_PARAMETERS
from repro.sqlengine.executor import Executor
from repro.sqlengine.optimizer import Planner
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.physical import PhysicalPlan
from repro.sqlengine.schema import Catalog, Column, Index, TableSchema
from repro.sqlengine.statistics import TableStatistics, analyze_table
from repro.sqlengine.storage import StorageManager
from repro.sqlengine.types import DataType


class Database:
    """An in-memory database instance.

    Typical usage::

        db = Database("teaching")
        db.create_table("users", [("id", DataType.INTEGER), ("age", DataType.INTEGER)])
        db.insert("users", [(1, 31), (2, 64)])
        db.analyze()
        plan = db.plan("SELECT id FROM users WHERE age > 40")
        rows = db.execute("SELECT id FROM users WHERE age > 40")
        explain_json = db.explain("SELECT ...", output_format="json")
    """

    def __init__(
        self,
        name: str = "db",
        cost_parameters: CostParameters = DEFAULT_COST_PARAMETERS,
        enable_parallel: bool = True,
    ) -> None:
        self.name = name
        self.catalog = Catalog()
        self.storage = StorageManager()
        self._statistics: dict[str, TableStatistics] = {}
        self._cost_parameters = cost_parameters
        self._enable_parallel = enable_parallel
        self._executor = Executor(self.storage)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, DataType]] | Sequence[Column],
        primary_key: Sequence[str] = (),
    ) -> TableSchema:
        """Create a table from ``(name, type)`` pairs or :class:`Column` objects."""
        materialized: list[Column] = []
        for column in columns:
            if isinstance(column, Column):
                materialized.append(column)
            else:
                column_name, data_type = column
                materialized.append(Column(column_name, data_type))
        schema = TableSchema(name=name.lower(), columns=materialized, primary_key=tuple(primary_key))
        self.catalog.add_table(schema)
        self.storage.create_table(schema)
        self._statistics[schema.name] = TableStatistics()
        return schema

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self.storage.drop_table(name)
        self._statistics.pop(name.lower(), None)

    def create_index(
        self,
        name: str,
        table: str,
        columns: Sequence[str],
        kind: str = "btree",
        unique: bool = False,
    ) -> Index:
        index = Index(name=name.lower(), table=table.lower(), columns=tuple(columns), kind=kind, unique=unique)
        self.catalog.add_index(index)
        self.storage.register_index(index)
        return index

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def insert(self, table: str, rows: Iterable[Sequence[Any] | Mapping[str, Any]]) -> int:
        """Bulk insert rows (tuples in schema order, or dicts keyed by column)."""
        if not self.catalog.has_table(table):
            raise CatalogError(f"table {table!r} does not exist")
        heap = self.storage.table(table)
        count = heap.insert_many(rows)
        self.storage.mark_dirty(table)
        return count

    def analyze(self, table: str | None = None) -> None:
        """Collect statistics for one table or for every table."""
        names = [table.lower()] if table else [schema.name for schema in self.catalog.tables()]
        for name in names:
            self._statistics[name] = analyze_table(self.storage.table(name))

    def statistics(self, table: str) -> TableStatistics:
        return self._statistics.get(table.lower(), TableStatistics())

    def row_count(self, table: str) -> int:
        return self.storage.table(table).row_count

    # ------------------------------------------------------------------
    # planning / execution
    # ------------------------------------------------------------------

    def parse(self, sql: str) -> SelectStatement:
        return parse_sql(sql)

    def plan(self, sql: str) -> PhysicalPlan:
        """Parse and optimize ``sql`` into a physical plan."""
        statement = parse_sql(sql)
        planner = Planner(
            self.catalog,
            self._statistics,
            parameters=self._cost_parameters,
            enable_parallel=self._enable_parallel,
        )
        return planner.plan(statement, sql_text=sql)

    def execute(self, sql: str) -> list[dict[str, Any]]:
        """Plan and run ``sql``, returning projected rows."""
        return self._executor.execute(self.plan(sql))

    def execute_plan(self, plan: PhysicalPlan) -> list[dict[str, Any]]:
        return self._executor.execute(plan)

    def explain(self, sql: str, output_format: str = "text") -> str:
        """EXPLAIN ``sql`` in ``text``, ``json`` (PostgreSQL), ``xml`` (SQL
        Server), or ``mysql`` (MySQL ``EXPLAIN FORMAT=JSON``) form."""
        plan = self.plan(sql)
        if output_format == "text":
            return explain_module.to_text(plan)
        if output_format == "json":
            return explain_module.to_postgres_json(plan)
        if output_format == "xml":
            return explain_module.to_sqlserver_xml(plan)
        if output_format == "mysql":
            return explain_module.to_mysql_json(plan)
        raise ValueError(f"unknown explain format {output_format!r}")
