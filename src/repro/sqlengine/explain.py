"""EXPLAIN serializers: text, PostgreSQL JSON, SQL Server XML, MySQL JSON.

The JSON layout follows ``EXPLAIN (FORMAT JSON)`` closely enough that the
plan parser in :mod:`repro.plans.postgres` treats it exactly like real
PostgreSQL output.  The XML layout mirrors the structure (not the full
schema) of SQL Server showplan XML: nested ``RelOp`` elements with
``PhysicalOp``/``LogicalOp`` attributes and SQL Server operator names.  The
MySQL layout mirrors ``EXPLAIN FORMAT=JSON``: a ``query_block`` with
``ordering_operation``/``grouping_operation``/``duplicates_removal`` wrappers
around a ``table`` access or a ``nested_loop`` array (MySQL joins exclusively
with nested loops, so join subtrees are flattened into the array and the join
predicate travels as the inner table's ``attached_condition``).
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ElementTree
from typing import Any

from repro.sqlengine.physical import (
    AGGREGATE,
    GATHER,
    GROUP_AGGREGATE,
    HASH,
    HASH_AGGREGATE,
    HASH_JOIN,
    INDEX_ONLY_SCAN,
    INDEX_SCAN,
    LIMIT,
    MATERIALIZE,
    MERGE_JOIN,
    NESTED_LOOP,
    PARALLEL_SEQ_SCAN,
    PhysicalPlan,
    PlanNode,
    SEQ_SCAN,
    SORT,
    UNIQUE,
)

# ---------------------------------------------------------------------------
# PostgreSQL-style JSON
# ---------------------------------------------------------------------------


def _node_to_pg_dict(node: PlanNode) -> dict[str, Any]:
    entry: dict[str, Any] = {
        "Node Type": node.node_type,
        "Startup Cost": round(node.startup_cost, 2),
        "Total Cost": round(node.total_cost, 2),
        "Plan Rows": int(round(node.plan_rows)),
        "Plan Width": node.plan_width,
    }
    if node.relation:
        entry["Relation Name"] = node.relation
        entry["Alias"] = node.alias or node.relation
    if node.index_name:
        entry["Index Name"] = node.index_name
    if node.index_condition is not None:
        entry["Index Cond"] = str(node.index_condition)
    if node.filter is not None:
        entry["Filter"] = str(node.filter)
    if node.join_condition is not None:
        if node.node_type == HASH_JOIN:
            entry["Hash Cond"] = str(node.join_condition)
        elif node.node_type == MERGE_JOIN:
            entry["Merge Cond"] = str(node.join_condition)
        else:
            entry["Join Filter"] = str(node.join_condition)
    if node.is_join:
        entry["Join Type"] = node.join_type
    if node.sort_keys:
        entry["Sort Key"] = list(node.sort_keys)
    if node.group_keys:
        entry["Group Key"] = list(node.group_keys)
    if node.strategy:
        entry["Strategy"] = node.strategy
    if node.node_type in (AGGREGATE, GROUP_AGGREGATE, HASH_AGGREGATE) and node.aggregate_calls:
        entry["Aggregates"] = [str(call) for call in node.aggregate_calls]
    if node.parallel_workers:
        entry["Workers Planned"] = node.parallel_workers
    if node.output:
        entry["Output"] = list(node.output)
    if node.node_type == LIMIT and "limit" in node.extra:
        entry["Rows Limit"] = node.extra["limit"]
    if node.children:
        entry["Plans"] = [_node_to_pg_dict(child) for child in node.children]
    return entry


def to_postgres_json(plan: PhysicalPlan, pretty: bool = True) -> str:
    """Serialize the plan like ``EXPLAIN (FORMAT JSON)``."""
    document = [{"Plan": _node_to_pg_dict(plan.root), "Query Text": plan.statement_text}]
    return json.dumps(document, indent=2 if pretty else None, default=str)


def to_postgres_dict(plan: PhysicalPlan) -> list[dict[str, Any]]:
    """The same structure as :func:`to_postgres_json` but as Python objects."""
    return [{"Plan": _node_to_pg_dict(plan.root), "Query Text": plan.statement_text}]


# ---------------------------------------------------------------------------
# indented text (EXPLAIN default format)
# ---------------------------------------------------------------------------


def to_text(plan: PhysicalPlan) -> str:
    """Serialize the plan in the familiar arrow-indented text form."""
    lines: list[str] = []

    def render(node: PlanNode, depth: int) -> None:
        head = node.node_type
        if node.relation:
            head += f" on {node.relation}"
            if node.alias and node.alias != node.relation:
                head += f" {node.alias}"
        if node.index_name:
            head += f" using {node.index_name}"
        costs = (
            f"  (cost={node.startup_cost:.2f}..{node.total_cost:.2f} "
            f"rows={int(round(node.plan_rows))} width={node.plan_width})"
        )
        prefix = "" if depth == 0 else "  " * depth + "->  "
        lines.append(prefix + head + costs)
        detail_prefix = "  " * (depth + 1) + "  "
        if node.index_condition is not None:
            lines.append(f"{detail_prefix}Index Cond: {node.index_condition}")
        if node.join_condition is not None:
            label = {
                HASH_JOIN: "Hash Cond",
                MERGE_JOIN: "Merge Cond",
                NESTED_LOOP: "Join Filter",
            }.get(node.node_type, "Join Cond")
            lines.append(f"{detail_prefix}{label}: {node.join_condition}")
        if node.filter is not None:
            lines.append(f"{detail_prefix}Filter: {node.filter}")
        if node.sort_keys:
            lines.append(f"{detail_prefix}Sort Key: {', '.join(node.sort_keys)}")
        if node.group_keys:
            lines.append(f"{detail_prefix}Group Key: {', '.join(node.group_keys)}")
        for child in node.children:
            render(child, depth + 1)

    render(plan.root, 0)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# SQL Server-style showplan XML
# ---------------------------------------------------------------------------

#: mapping from our (PostgreSQL-flavoured) node names to SQL Server physical
#: operator names; used by the XML serializer and the SQL Server POOL catalog.
SQLSERVER_PHYSICAL_OPS: dict[str, tuple[str, str]] = {
    SEQ_SCAN: ("Table Scan", "Table Scan"),
    PARALLEL_SEQ_SCAN: ("Table Scan", "Table Scan"),
    INDEX_SCAN: ("Index Seek", "Index Seek"),
    INDEX_ONLY_SCAN: ("Index Seek", "Index Seek"),
    HASH_JOIN: ("Hash Match", "Inner Join"),
    MERGE_JOIN: ("Merge Join", "Inner Join"),
    NESTED_LOOP: ("Nested Loops", "Inner Join"),
    SORT: ("Sort", "Sort"),
    AGGREGATE: ("Stream Aggregate", "Aggregate"),
    GROUP_AGGREGATE: ("Stream Aggregate", "Aggregate"),
    HASH_AGGREGATE: ("Hash Match", "Aggregate"),
    UNIQUE: ("Stream Aggregate", "Distinct"),
    LIMIT: ("Top", "Top"),
    MATERIALIZE: ("Table Spool", "Lazy Spool"),
    GATHER: ("Parallelism", "Gather Streams"),
}

_SHOWPLAN_NAMESPACE = "http://schemas.microsoft.com/sqlserver/2004/07/showplan"


def _node_to_relop(node: PlanNode, parent: ElementTree.Element) -> None:
    if node.node_type == HASH:
        # SQL Server plans have no separate Hash build node; splice children in.
        for child in node.children:
            _node_to_relop(child, parent)
        return
    physical, logical = SQLSERVER_PHYSICAL_OPS.get(node.node_type, (node.node_type, node.node_type))
    relop = ElementTree.SubElement(
        parent,
        "RelOp",
        {
            "PhysicalOp": physical,
            "LogicalOp": logical,
            "EstimateRows": f"{node.plan_rows:.0f}",
            "EstimatedTotalSubtreeCost": f"{node.total_cost:.4f}",
        },
    )
    if node.relation:
        ElementTree.SubElement(
            relop,
            "Object",
            {"Table": node.relation, "Alias": node.alias or node.relation},
        )
    if node.index_name:
        relop.set("Index", node.index_name)
    if node.index_condition is not None:
        ElementTree.SubElement(relop, "SeekPredicate").text = str(node.index_condition)
    if node.filter is not None:
        ElementTree.SubElement(relop, "Predicate").text = str(node.filter)
    if node.join_condition is not None:
        ElementTree.SubElement(relop, "JoinPredicate").text = str(node.join_condition)
    if node.sort_keys:
        ElementTree.SubElement(relop, "OrderBy").text = ", ".join(node.sort_keys)
    if node.group_keys:
        ElementTree.SubElement(relop, "GroupBy").text = ", ".join(node.group_keys)
    if node.aggregate_calls:
        ElementTree.SubElement(relop, "Aggregates").text = ", ".join(
            str(call) for call in node.aggregate_calls
        )
    if node.node_type == LIMIT and "limit" in node.extra:
        relop.set("TopExpression", str(node.extra["limit"]))
    for child in node.children:
        _node_to_relop(child, relop)


# ---------------------------------------------------------------------------
# MySQL-style EXPLAIN FORMAT=JSON
# ---------------------------------------------------------------------------

#: node types that are executor machinery with no MySQL EXPLAIN analogue —
#: spliced through to their input (MySQL shows neither hash build sides,
#: spools, parallelism, nor a Limit operator)
_MYSQL_SPLICED = (HASH, MATERIALIZE, GATHER, LIMIT, SORT)

#: access types per scan node (MySQL's ``index`` = full index scan)
_MYSQL_ACCESS_TYPES = {
    SEQ_SCAN: "ALL",
    PARALLEL_SEQ_SCAN: "ALL",
    INDEX_SCAN: "ref",
    INDEX_ONLY_SCAN: "index",
}


def _mysql_table_entry(node: PlanNode, join_condition: str | None = None) -> dict[str, Any]:
    table: dict[str, Any] = {
        "table_name": node.relation or "<derived>",
        "access_type": _MYSQL_ACCESS_TYPES.get(node.node_type, "ALL"),
        "rows_examined_per_scan": int(round(node.plan_rows)),
        "cost_info": {
            "read_cost": f"{node.startup_cost:.2f}",
            "eval_cost": f"{max(node.total_cost - node.startup_cost, 0.0):.2f}",
        },
    }
    if node.alias and node.alias != node.relation:
        table["alias"] = node.alias
    if node.index_name:
        table["key"] = node.index_name
    if node.index_condition is not None:
        table["index_condition"] = str(node.index_condition)
    conditions = [str(c) for c in (node.filter, join_condition) if c is not None]
    if conditions:
        table["attached_condition"] = " and ".join(f"({c})" for c in conditions) if len(
            conditions
        ) > 1 else conditions[0]
    return {"table": table}


def _mysql_collect_tables(node: PlanNode, join_condition: str | None = None) -> list[dict[str, Any]]:
    """Flatten a join subtree into MySQL's left-to-right table-access list.

    ``join_condition`` is the predicate of the enclosing join; MySQL records
    it on the inner (right-hand) table as its ``attached_condition``.
    """
    while node.node_type in _MYSQL_SPLICED and node.children:
        node = node.children[0]
    if node.is_join:
        entries = _mysql_collect_tables(node.children[0], join_condition)
        condition = str(node.join_condition) if node.join_condition is not None else None
        entries.extend(_mysql_collect_tables(node.children[1], condition))
        return entries
    if node.relation and not node.children:
        return [_mysql_table_entry(node, join_condition)]
    # an access MySQL cannot express (e.g. an aggregate feeding a join):
    # surface it as a derived table so the plan stays well-formed
    return [{"table": {"table_name": node.relation or "<derived>", "access_type": "ALL"}}]


def _node_to_mysql_block(node: PlanNode) -> dict[str, Any]:
    """The key set this node contributes to the enclosing query block."""
    if node.node_type == SORT:
        inner = _node_to_mysql_block(node.children[0])
        return {"ordering_operation": {"using_filesort": True, **inner}}
    if node.node_type == UNIQUE:
        inner = _node_to_mysql_block(node.children[0])
        return {"duplicates_removal": {"using_temporary_table": False, **inner}}
    if node.node_type in (AGGREGATE, GROUP_AGGREGATE, HASH_AGGREGATE):
        inner = _node_to_mysql_block(node.children[0])
        wrapper: dict[str, Any] = dict(inner)
        if node.node_type == HASH_AGGREGATE:
            wrapper["using_temporary_table"] = True
        elif node.node_type == GROUP_AGGREGATE:
            wrapper["using_filesort"] = True
        return {"grouping_operation": wrapper}
    if node.node_type in _MYSQL_SPLICED and node.children:
        return _node_to_mysql_block(node.children[0])
    if node.is_join:
        return {"nested_loop": _mysql_collect_tables(node)}
    return _mysql_table_entry(node)


def to_mysql_json(plan: PhysicalPlan, pretty: bool = True) -> str:
    """Serialize the plan like MySQL ``EXPLAIN FORMAT=JSON``."""
    block: dict[str, Any] = {
        "select_id": 1,
        "cost_info": {"query_cost": f"{plan.root.total_cost:.2f}"},
        **_node_to_mysql_block(plan.root),
    }
    document = {"query_block": block, "query": plan.statement_text}
    return json.dumps(document, indent=2 if pretty else None, default=str)


def to_sqlserver_xml(plan: PhysicalPlan) -> str:
    """Serialize the plan in a SQL Server showplan-like XML dialect."""
    root = ElementTree.Element("ShowPlanXML", {"xmlns": _SHOWPLAN_NAMESPACE, "Version": "1.539"})
    batch_sequence = ElementTree.SubElement(root, "BatchSequence")
    batch = ElementTree.SubElement(batch_sequence, "Batch")
    statements = ElementTree.SubElement(batch, "Statements")
    statement = ElementTree.SubElement(
        statements,
        "StmtSimple",
        {"StatementText": plan.statement_text, "StatementType": "SELECT"},
    )
    query_plan = ElementTree.SubElement(statement, "QueryPlan")
    _node_to_relop(plan.root, query_plan)
    return ElementTree.tostring(root, encoding="unicode")
