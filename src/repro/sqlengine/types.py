"""Column data types and value coercion for the mini SQL engine."""

from __future__ import annotations

import datetime
import enum
from typing import Any


class DataType(enum.Enum):
    """Supported column types.

    The set mirrors what the TPC-H / SDSS / IMDB style schemas need rather
    than a full SQL type system.
    """

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    DATE = "date"
    BOOLEAN = "boolean"

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type order/compare numerically."""
        return self in (DataType.INTEGER, DataType.FLOAT)


_EPOCH = datetime.date(1970, 1, 1)


def coerce(value: Any, data_type: DataType) -> Any:
    """Coerce ``value`` into the Python representation of ``data_type``.

    ``None`` is passed through for every type (SQL NULL).  Dates are stored
    as :class:`datetime.date`; ISO strings are accepted.
    """
    if value is None:
        return None
    if data_type is DataType.INTEGER:
        return int(value)
    if data_type is DataType.FLOAT:
        return float(value)
    if data_type is DataType.TEXT:
        return str(value)
    if data_type is DataType.BOOLEAN:
        if isinstance(value, str):
            return value.strip().lower() in ("t", "true", "1", "yes")
        return bool(value)
    if data_type is DataType.DATE:
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, (int, float)):
            return _EPOCH + datetime.timedelta(days=int(value))
        return datetime.date.fromisoformat(str(value))
    raise TypeError(f"unsupported data type: {data_type!r}")


def to_sortable(value: Any) -> Any:
    """Map a value to something orderable against other values of its column.

    ``None`` sorts first; dates are converted to ordinals so mixed
    comparisons in histograms stay numeric.
    """
    if value is None:
        return (0, 0)
    if isinstance(value, datetime.date):
        return (1, value.toordinal())
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (1, str(value))


def as_number(value: Any) -> float | None:
    """Best-effort numeric view of a value for histogram interpolation."""
    if value is None:
        return None
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    if isinstance(value, bool):
        return float(int(value))
    if isinstance(value, (int, float)):
        return float(value)
    return None


def render_literal(value: Any) -> str:
    """Render a Python value as a SQL literal for display in plan conditions."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value) if isinstance(value, float) else str(value)
    if isinstance(value, datetime.date):
        return f"'{value.isoformat()}'"
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
