"""Tokenization of narration text.

Narration sentences mix ordinary words with special tags (``<T>``, ``<F>``)
and punctuation; the tokenizer keeps tags atomic so the closed output
vocabulary of QEP2Seq stays small.
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"<[A-Z]+>|[a-zA-Z_][a-zA-Z_0-9']*|\d+(?:\.\d+)?|[.,()]")


def tokenize(text: str, lowercase: bool = True) -> list[str]:
    """Split narration text into tokens, keeping ``<TAG>`` tokens intact."""
    tokens = _TOKEN_RE.findall(text)
    if lowercase:
        tokens = [token if token.startswith("<") else token.lower() for token in tokens]
    return tokens


def detokenize(tokens: list[str]) -> str:
    """Rebuild readable text from tokens (spacing around punctuation)."""
    pieces: list[str] = []
    for token in tokens:
        if token in (".", ",", ")"):
            if pieces:
                pieces[-1] += token
            else:
                pieces.append(token)
        elif pieces and pieces[-1].endswith("("):
            pieces[-1] += token
        elif token == "(":
            pieces.append(token)
        else:
            pieces.append(token)
    return " ".join(pieces)
