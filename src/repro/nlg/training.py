"""Training loops for QEP2Seq: teacher forcing, minibatches of 4, early stopping."""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.nlg.dataset import TrainingSample
from repro.nlg.seq2seq import QEP2Seq


@dataclass
class EpochRecord:
    """Metrics collected for one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    validation_loss: float
    validation_accuracy: float
    seconds: float


@dataclass
class TrainingHistory:
    """The per-epoch metric curves (Figures 6 and 7 plot these)."""

    records: list[EpochRecord] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def epochs(self) -> int:
        return len(self.records)

    def series(self, metric: str) -> list[float]:
        return [getattr(record, metric) for record in self.records]

    @property
    def final(self) -> Optional[EpochRecord]:
        return self.records[-1] if self.records else None

    @property
    def best_validation_loss(self) -> float:
        if not self.records:
            return float("inf")
        return min(record.validation_loss for record in self.records)

    @property
    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.records)

    @property
    def average_epoch_seconds(self) -> float:
        if not self.records:
            return 0.0
        return self.total_seconds / len(self.records)


class Trainer:
    """Runs teacher-forced SGD epochs with optional early stopping.

    Early stopping follows the paper's description: training terminates when
    the training-loss fluctuation over a window drops below a threshold
    (default 0.001).
    """

    def __init__(
        self,
        model: QEP2Seq,
        train_samples: Sequence[TrainingSample],
        validation_samples: Sequence[TrainingSample],
        seed: int = 11,
    ) -> None:
        self.model = model
        self.train_samples = list(train_samples)
        self.validation_samples = list(validation_samples)
        self._rng = random.Random(seed)

    def _run_batches(self, samples: Sequence[TrainingSample], batch_size: int, train: bool):
        # per-batch means are combined weighted by chunk size: an unweighted
        # average would overweight a partial final batch (e.g. 1 sample out
        # of 33 contributing 1/9th of the epoch metric instead of 1/33rd),
        # skewing the reported curves and the early-stopping window
        loss_sum = 0.0
        accuracy_sum = 0.0
        sample_count = 0
        for start in range(0, len(samples), batch_size):
            chunk = samples[start : start + batch_size]
            batch = self.model.make_batch(
                [sample.source_tokens for sample in chunk],
                [sample.target_tokens for sample in chunk],
            )
            if train:
                loss, accuracy = self.model.train_batch(batch)
            else:
                loss, accuracy = self.model.evaluate_batch(batch)
            loss_sum += loss * len(chunk)
            accuracy_sum += accuracy * len(chunk)
            sample_count += len(chunk)
        if not sample_count:
            return 0.0, 0.0
        return loss_sum / sample_count, accuracy_sum / sample_count

    def train(
        self,
        epochs: int = 50,
        batch_size: Optional[int] = None,
        early_stopping_threshold: Optional[float] = 0.001,
        early_stopping_window: int = 5,
    ) -> TrainingHistory:
        """Train for up to ``epochs`` epochs, recording the metric curves."""
        batch_size = batch_size or self.model.config.batch_size
        history = TrainingHistory()
        for epoch in range(1, epochs + 1):
            started = time.perf_counter()
            shuffled = list(self.train_samples)
            self._rng.shuffle(shuffled)
            train_loss, train_accuracy = self._run_batches(shuffled, batch_size, train=True)
            validation_loss, validation_accuracy = self._run_batches(
                self.validation_samples, batch_size, train=False
            )
            history.records.append(
                EpochRecord(
                    epoch=epoch,
                    train_loss=train_loss,
                    train_accuracy=train_accuracy,
                    validation_loss=validation_loss,
                    validation_accuracy=validation_accuracy,
                    seconds=time.perf_counter() - started,
                )
            )
            if early_stopping_threshold is not None and len(history.records) >= early_stopping_window:
                window = history.series("train_loss")[-early_stopping_window:]
                if max(window) - min(window) < early_stopping_threshold:
                    history.stopped_early = True
                    break
        return history
