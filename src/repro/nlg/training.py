"""Training loops for QEP2Seq: teacher forcing, minibatches of 4, early stopping.

The per-batch forward/backward runs the model's fused TRAIN-TURBO path by
default (``Seq2SeqConfig(turbo=False)`` selects the kept step-wise reference
path; the two are parity-tested to allclose(rtol=1e-9) per batch and
token-identical narration after identical-seed runs).  On top of that the
Trainer offers **length-bucketed batching** (``bucket_by_length=True``):
each epoch's seeded shuffle is stable-sorted by source+target length before
chunking, so batches stop paying padded-width matmul cost for their longest
member.  The schedule stays deterministic given the Trainer seed, and epoch
metrics remain chunk-size-weighted (the PR 3 fix) under uneven buckets.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.nlg.dataset import TrainingSample, length_bucketed_chunks
from repro.nlg.seq2seq import QEP2Seq


@dataclass
class EpochRecord:
    """Metrics collected for one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    validation_loss: float
    validation_accuracy: float
    seconds: float
    #: non-padded target tokens consumed by the epoch's training pass
    tokens: int = 0
    #: training throughput (``tokens`` / training-pass wall time)
    tokens_per_second: float = 0.0
    #: pre-clip global gradient L2 norm of the epoch's final optimizer step
    grad_norm: Optional[float] = None


class TrainerHooks:
    """Callback API for observing a :meth:`Trainer.train` run.

    Subclass and override what you need — every hook is a no-op by default,
    and the Trainer behaves identically with or without hooks attached
    (they observe, they never steer).  :class:`TelemetryHooks` is the
    standard JSONL-emitting implementation behind
    ``python -m repro.nlg.train --telemetry out.jsonl``.
    """

    def on_train_begin(self, trainer: "Trainer", epochs: int, batch_size: int) -> None:
        """Called once before the first epoch."""

    def on_epoch_begin(self, epoch: int) -> None:
        """Called at the top of every epoch, before the shuffle."""

    def on_batch_end(
        self,
        epoch: int,
        batch_index: int,
        loss: float,
        accuracy: float,
        tokens: int,
        seconds: float,
        grad_norm: Optional[float],
    ) -> None:
        """Called after every *training* batch (not validation batches)."""

    def on_epoch_end(self, record: EpochRecord, early_stopping: dict) -> None:
        """Called with the finished epoch's record and the early-stopping
        state (``window``, ``threshold``, ``fluctuation``, ``triggered``)."""

    def on_train_end(self, history: "TrainingHistory") -> None:
        """Called once after the last epoch (stopped early or not)."""


class TelemetryHooks(TrainerHooks):
    """Persist a training run as structured JSONL events.

    ``log`` is anything with an ``emit(dict)`` method — normally a
    :class:`repro.obs.events.JsonEventLog`.  Set ``per_batch=False`` to
    keep only the epoch/run-level events (long runs, small files).
    """

    def __init__(self, log, per_batch: bool = True) -> None:
        self.log = log
        self.per_batch = per_batch

    def on_train_begin(self, trainer: "Trainer", epochs: int, batch_size: int) -> None:
        self.log.emit(
            {
                "event": "train_begin",
                "epochs": epochs,
                "batch_size": batch_size,
                "train_samples": len(trainer.train_samples),
                "validation_samples": len(trainer.validation_samples),
                "precision": trainer.model.precision,
            }
        )

    def on_batch_end(
        self,
        epoch: int,
        batch_index: int,
        loss: float,
        accuracy: float,
        tokens: int,
        seconds: float,
        grad_norm: Optional[float],
    ) -> None:
        if not self.per_batch:
            return
        self.log.emit(
            {
                "event": "batch",
                "epoch": epoch,
                "batch": batch_index,
                "loss": round(float(loss), 6),
                "accuracy": round(float(accuracy), 6),
                "tokens": tokens,
                "seconds": round(seconds, 6),
                "tokens_per_second": round(tokens / seconds, 3) if seconds > 0 else 0.0,
                "grad_norm": round(grad_norm, 6) if grad_norm is not None else None,
            }
        )

    def on_epoch_end(self, record: EpochRecord, early_stopping: dict) -> None:
        self.log.emit(
            {
                "event": "epoch",
                "epoch": record.epoch,
                "train_loss": round(record.train_loss, 6),
                "train_accuracy": round(record.train_accuracy, 6),
                "validation_loss": round(record.validation_loss, 6),
                "validation_accuracy": round(record.validation_accuracy, 6),
                "seconds": round(record.seconds, 6),
                "tokens": record.tokens,
                "tokens_per_second": round(record.tokens_per_second, 3),
                "grad_norm": (
                    round(record.grad_norm, 6) if record.grad_norm is not None else None
                ),
                "early_stopping": early_stopping,
            }
        )

    def on_train_end(self, history: "TrainingHistory") -> None:
        self.log.emit(
            {
                "event": "train_end",
                "epochs": history.epochs,
                "stopped_early": history.stopped_early,
                "total_seconds": round(history.total_seconds, 6),
                "best_validation_loss": round(history.best_validation_loss, 6),
            }
        )


@dataclass
class TrainingHistory:
    """The per-epoch metric curves (Figures 6 and 7 plot these)."""

    records: list[EpochRecord] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def epochs(self) -> int:
        return len(self.records)

    def series(self, metric: str) -> list[float]:
        return [getattr(record, metric) for record in self.records]

    @property
    def final(self) -> Optional[EpochRecord]:
        return self.records[-1] if self.records else None

    @property
    def best_validation_loss(self) -> float:
        if not self.records:
            return float("inf")
        return min(record.validation_loss for record in self.records)

    @property
    def total_seconds(self) -> float:
        return sum(record.seconds for record in self.records)

    @property
    def average_epoch_seconds(self) -> float:
        if not self.records:
            return 0.0
        return self.total_seconds / len(self.records)


class Trainer:
    """Runs teacher-forced SGD epochs with optional early stopping.

    Early stopping follows the paper's description: training terminates when
    the training-loss fluctuation over a window drops below a threshold
    (default 0.001).

    ``bucket_by_length=True`` enables the length-bucketed batch scheduler
    (see :func:`repro.nlg.dataset.length_bucketed_chunks`): each epoch's
    seeded shuffle is preserved as the tie-break of a stable length sort, so
    the schedule is deterministic given the Trainer seed and identical to
    the unbucketed one whenever all samples have the same length.
    """

    def __init__(
        self,
        model: QEP2Seq,
        train_samples: Sequence[TrainingSample],
        validation_samples: Sequence[TrainingSample],
        seed: int = 11,
        bucket_by_length: bool = False,
    ) -> None:
        self.model = model
        self.train_samples = list(train_samples)
        self.validation_samples = list(validation_samples)
        self.bucket_by_length = bucket_by_length
        self._rng = random.Random(seed)
        # vocabulary-encode every sample once: the id rows never change, so
        # re-encoding them for every chunk of every epoch is pure overhead
        self._encoded = {
            id(sample): model.encode_pair(sample.source_tokens, sample.target_tokens)
            for sample in self.train_samples + self.validation_samples
        }
        # validation chunks are identical every epoch (no shuffle), so their
        # padded batches are built once per batch size and reused
        self._validation_batches: dict[int, list[tuple[object, int]]] = {}

    def _chunks(self, samples: Sequence[TrainingSample], batch_size: int):
        """The epoch's batch schedule: sequential chunks, or length buckets.

        Bucketing stable-sorts by source+target length, so it is
        deterministic given the (already seed-shuffled) sample order and
        degenerates to the sequential schedule on uniform-length data.
        """
        if self.bucket_by_length:
            return length_bucketed_chunks(samples, batch_size)
        return [samples[start : start + batch_size] for start in range(0, len(samples), batch_size)]

    def _batches(self, samples: Sequence[TrainingSample], batch_size: int, train: bool):
        """(padded batch, chunk size) pairs for one epoch pass.

        Training chunks change with every epoch's shuffle, so their batches
        are rebuilt from the pre-encoded id rows; validation chunks are
        deterministic and their padded batches are cached across epochs.
        """
        if not train and samples is self.validation_samples:
            if batch_size not in self._validation_batches:
                self._validation_batches[batch_size] = [
                    (self.model.make_batch_encoded([self._encoded[id(s)] for s in chunk]), len(chunk))
                    for chunk in self._chunks(samples, batch_size)
                ]
            return self._validation_batches[batch_size]
        encoded = self._encoded
        return (
            (
                self.model.make_batch_encoded(
                    [
                        encoded.get(id(sample))
                        or self.model.encode_pair(sample.source_tokens, sample.target_tokens)
                        for sample in chunk
                    ]
                ),
                len(chunk),
            )
            # a generator: padded batches are built one at a time as the
            # epoch consumes them, never all resident at once
            for chunk in self._chunks(samples, batch_size)
        )

    def _run_batches(
        self,
        samples: Sequence[TrainingSample],
        batch_size: int,
        train: bool,
        hooks: Optional[TrainerHooks] = None,
        epoch: int = 0,
        stats: Optional[dict] = None,
    ):
        # per-batch means are combined weighted by chunk size: an unweighted
        # average would overweight a partial final batch (e.g. 1 sample out
        # of 33 contributing 1/9th of the epoch metric instead of 1/33rd),
        # skewing the reported curves and the early-stopping window — this
        # weighting is what keeps the metric correct under uneven buckets too
        loss_sum = 0.0
        accuracy_sum = 0.0
        sample_count = 0
        tokens_total = 0
        observing = train and (hooks is not None or stats is not None)
        for batch_index, (batch, chunk_size) in enumerate(
            self._batches(samples, batch_size, train)
        ):
            batch_started = time.perf_counter() if observing else 0.0
            if train:
                loss, accuracy = self.model.train_batch(batch)
            else:
                loss, accuracy = self.model.evaluate_batch(batch)
            if observing:
                tokens = int(batch.decoder_mask.sum())
                tokens_total += tokens
                grad_norm = getattr(self.model.optimizer, "last_grad_norm", None)
                if hooks is not None:
                    hooks.on_batch_end(
                        epoch,
                        batch_index,
                        loss,
                        accuracy,
                        tokens,
                        time.perf_counter() - batch_started,
                        grad_norm,
                    )
                if stats is not None:
                    stats["grad_norm"] = grad_norm
            loss_sum += loss * chunk_size
            accuracy_sum += accuracy * chunk_size
            sample_count += chunk_size
        if stats is not None:
            stats["tokens"] = tokens_total
        if not sample_count:
            return 0.0, 0.0
        return loss_sum / sample_count, accuracy_sum / sample_count

    def train(
        self,
        epochs: int = 50,
        batch_size: Optional[int] = None,
        early_stopping_threshold: Optional[float] = 0.001,
        early_stopping_window: int = 5,
        hooks: Optional[TrainerHooks] = None,
    ) -> TrainingHistory:
        """Train for up to ``epochs`` epochs, recording the metric curves.

        ``hooks`` (a :class:`TrainerHooks`) observes the run — per-batch and
        per-epoch wall time, token throughput, gradient norms, and the
        early-stopping state — without altering any training behaviour.
        """
        batch_size = batch_size or self.model.config.batch_size
        history = TrainingHistory()
        if hooks is not None:
            hooks.on_train_begin(self, epochs, batch_size)
        for epoch in range(1, epochs + 1):
            if hooks is not None:
                hooks.on_epoch_begin(epoch)
            started = time.perf_counter()
            shuffled = list(self.train_samples)
            self._rng.shuffle(shuffled)
            stats: dict = {}
            train_loss, train_accuracy = self._run_batches(
                shuffled, batch_size, train=True, hooks=hooks, epoch=epoch, stats=stats
            )
            train_seconds = time.perf_counter() - started
            validation_loss, validation_accuracy = self._run_batches(
                self.validation_samples, batch_size, train=False
            )
            tokens = stats.get("tokens", 0)
            record = EpochRecord(
                epoch=epoch,
                train_loss=train_loss,
                train_accuracy=train_accuracy,
                validation_loss=validation_loss,
                validation_accuracy=validation_accuracy,
                seconds=time.perf_counter() - started,
                tokens=tokens,
                tokens_per_second=(
                    round(tokens / train_seconds, 3) if train_seconds > 0 else 0.0
                ),
                grad_norm=stats.get("grad_norm"),
            )
            history.records.append(record)
            early_stopping = {
                "threshold": early_stopping_threshold,
                "window": early_stopping_window,
                "fluctuation": None,
                "triggered": False,
            }
            if early_stopping_threshold is not None and len(history.records) >= early_stopping_window:
                window = history.series("train_loss")[-early_stopping_window:]
                fluctuation = max(window) - min(window)
                early_stopping["fluctuation"] = round(fluctuation, 6)
                if fluctuation < early_stopping_threshold:
                    early_stopping["triggered"] = True
                    history.stopped_early = True
            if hooks is not None:
                hooks.on_epoch_end(record, early_stopping)
            if history.stopped_early:
                break
        if hooks is not None:
            hooks.on_train_end(history)
        return history
