"""NEURAL-LANTERN: the deep-learning generation stack (paper §6).

Sub-packages:

* :mod:`repro.nlg.nn` — a NumPy neural-network substrate (LSTM, additive
  attention, dense/embedding layers, losses, optimizers);
* :mod:`repro.nlg.embeddings` — from-scratch Word2Vec, GloVe, and contextual
  (ELMo-style, BERT-style) word embeddings plus the corpora they are
  pre-trained on;
* :mod:`repro.nlg.paraphrase` — the three paraphrasing tools used to
  diversify training targets;
* :mod:`repro.nlg.dataset` — training-sample generation from acts;
* :mod:`repro.nlg.seq2seq` — the QEP2Seq encoder/decoder with attention and
  beam search;
* :mod:`repro.nlg.training` — training loops with teacher forcing and early
  stopping;
* :mod:`repro.nlg.metrics` — BLEU, Self-BLEU, and sparse categorical accuracy;
* :mod:`repro.nlg.cache` — the LRU act-signature decode cache backing
  NEURAL-LANTERN's interactive response times;
* :mod:`repro.nlg.neural_lantern` — the NEURAL-LANTERN facade that plugs into
  :class:`repro.core.Lantern`;
* :mod:`repro.nlg.persistence` — LANTERN-PERSIST versioned checkpoints, so
  trained narrators survive restarts (``python -m repro.nlg.train`` emits
  one; ``python -m repro.service --checkpoint`` boots from one).
"""

from repro.nlg.cache import DecodeCache
from repro.nlg.metrics import bleu_score, self_bleu, sparse_categorical_accuracy
from repro.nlg.neural_lantern import NeuralLantern
from repro.nlg.persistence import (
    load_lantern,
    load_neural_lantern,
    load_qep2seq,
    save_lantern,
    save_neural_lantern,
    save_qep2seq,
)
from repro.nlg.seq2seq import QEP2Seq, Seq2SeqConfig
from repro.nlg.vocab import Vocabulary

__all__ = [
    "DecodeCache",
    "NeuralLantern",
    "QEP2Seq",
    "Seq2SeqConfig",
    "Vocabulary",
    "bleu_score",
    "load_lantern",
    "load_neural_lantern",
    "load_qep2seq",
    "save_lantern",
    "save_neural_lantern",
    "save_qep2seq",
    "self_bleu",
    "sparse_categorical_accuracy",
]
