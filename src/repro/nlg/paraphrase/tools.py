"""The three paraphrasing tools."""

from __future__ import annotations

import hashlib
import random
from typing import Protocol


class Paraphraser(Protocol):
    """Interface shared by all paraphrasing tools."""

    name: str

    def paraphrase(self, text: str) -> str:  # pragma: no cover - protocol
        ...


def _stable_rng(text: str, salt: str) -> random.Random:
    """A per-sentence deterministic RNG so tools behave like stateless services."""
    digest = hashlib.sha256(f"{salt}::{text}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class LexicalParaphraser:
    """Word-level synonym substitution.

    A fraction of the substitutions are deliberately imperfect (the paper
    observed words like "separating" instead of "selecting" in the output of
    the online tools and reports that learners were not harmed by them).
    """

    name = "lexical"

    _SYNONYMS: dict[str, list[str]] = {
        "perform": ["execute", "carry out", "run"],
        "scan": ["read", "sweep"],
        "sequential": ["sequential", "serial"],
        "filtering": ["selecting", "separating", "keeping rows"],
        "get": ["obtain", "acquire", "produce"],
        "final": ["conclusive", "ultimate"],
        "results": ["outcome", "output", "answer"],
        "intermediate": ["temporary", "interim"],
        "relation": ["table", "relation"],
        "rows": ["tuples", "records"],
        "sort": ["order", "arrange"],
        "join": ["join", "combine"],
        "removal": ["elimination"],
        "duplicate": ["repeated", "duplicate"],
        "condition": ["predicate", "criterion"],
        "grouping": ["bucketing", "grouping"],
        "compute": ["calculate", "evaluate"],
        "hash": ["hash", "bucketize"],
        "attribute": ["column", "attribute"],
    }

    def __init__(self, substitution_rate: float = 0.6) -> None:
        self.substitution_rate = substitution_rate

    def paraphrase(self, text: str) -> str:
        rng = _stable_rng(text, self.name)
        words = text.split(" ")
        rewritten: list[str] = []
        for word in words:
            bare = word.strip(".,()").lower()
            if bare in self._SYNONYMS and rng.random() < self.substitution_rate:
                replacement = rng.choice(self._SYNONYMS[bare])
                rewritten.append(word.replace(bare, replacement) if bare in word else replacement)
            else:
                rewritten.append(word)
        return " ".join(rewritten)


class StructuralParaphraser:
    """Phrase-level rewrites of the recurring narration templates."""

    name = "structural"

    _PHRASES: list[tuple[str, list[str]]] = [
        ("perform sequential scan on", [
            "execute a sequential scan over",
            "read all rows of",
        ]),
        ("perform table scan on", ["execute a full table scan over"]),
        ("perform index scan using the index on", [
            "use the index to look up matching rows of",
        ]),
        ("perform hash join on", [
            "join with a hash join",
            "combine using a hash join",
        ]),
        ("perform merge join on", ["combine using a merge join"]),
        ("perform nested loop join on", ["join with a nested loop over"]),
        ("perform aggregate on", ["compute the aggregates over"]),
        ("perform hash aggregate on", ["aggregate with a hash table over"]),
        ("perform duplicate removal on", ["remove the duplicate rows of"]),
        ("and filtering on", ["and keep only rows satisfying", "while selecting on"]),
        ("with grouping on attribute", ["grouped by the attribute", "with groups formed on"]),
        ("to get the intermediate relation", [
            "to produce the intermediate relation",
            "which yields the temporary table",
        ]),
        ("to get the final results.", [
            "to get the conclusive outcome.",
            "to produce the final answer.",
        ]),
        ("on condition", ["under the condition", "matching on"]),
    ]

    def __init__(self, rewrite_rate: float = 0.8) -> None:
        self.rewrite_rate = rewrite_rate

    def paraphrase(self, text: str) -> str:
        rng = _stable_rng(text, self.name)
        rewritten = text
        for phrase, alternatives in self._PHRASES:
            if phrase in rewritten and rng.random() < self.rewrite_rate:
                rewritten = rewritten.replace(phrase, rng.choice(alternatives))
        return rewritten


class CompressionParaphraser:
    """Shortens or expands clauses while keeping the content words."""

    name = "compression"

    _COMPRESSIONS: list[tuple[str, str]] = [
        ("perform sequential scan on", "sequentially scan"),
        ("perform table scan on", "scan"),
        ("perform hash join on", "hash join"),
        ("perform merge join on", "merge join"),
        ("perform nested loop join on", "nested loop join"),
        ("perform aggregate on", "aggregate"),
        ("perform hash aggregate on", "hash aggregate"),
        ("perform duplicate removal on", "deduplicate"),
        ("and filtering on", "filtering"),
        ("to get the intermediate relation", "producing"),
        ("to get the final results.", "as the final result."),
    ]
    _EXPANSIONS: list[tuple[str, str]] = [
        ("sort", "sort the rows of"),
        ("hash", "build a hash table over"),
        ("to get the final results.", "and return this output as the final result of the query."),
    ]

    def __init__(self, compression_probability: float = 0.6) -> None:
        self.compression_probability = compression_probability

    def paraphrase(self, text: str) -> str:
        rng = _stable_rng(text, self.name)
        rewritten = text
        if rng.random() < self.compression_probability:
            for phrase, replacement in self._COMPRESSIONS:
                if phrase in rewritten and rng.random() < 0.7:
                    rewritten = rewritten.replace(phrase, replacement)
        else:
            for phrase, replacement in self._EXPANSIONS:
                if rewritten.startswith(phrase) and rng.random() < 0.7:
                    rewritten = replacement + rewritten[len(phrase):]
                elif f" {phrase} " in rewritten and rng.random() < 0.3:
                    rewritten = rewritten.replace(f" {phrase} ", f" {replacement} ", 1)
        return rewritten
