"""The paraphrase engine: run all tools, deduplicate, drop invalid outputs."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Sequence

from repro.nlg.paraphrase.tools import (
    CompressionParaphraser,
    LexicalParaphraser,
    Paraphraser,
    StructuralParaphraser,
)

_TAG_RE = re.compile(r"<[A-Z]+>")


@dataclass
class ParaphraseGroup:
    """The original sentence plus its accepted paraphrases (one *group* in Table 4)."""

    original: str
    paraphrases: list[str] = field(default_factory=list)

    @property
    def samples(self) -> list[str]:
        return [self.original] + self.paraphrases

    @property
    def size(self) -> int:
        return len(self.samples)


class ParaphraseEngine:
    """Applies a configurable set of paraphrasing tools to narration sentences."""

    def __init__(self, tools: Sequence[Paraphraser] | None = None) -> None:
        if tools is None:
            tools = (LexicalParaphraser(), StructuralParaphraser(), CompressionParaphraser())
        self.tools = list(tools)

    def expand(self, sentence: str) -> ParaphraseGroup:
        """Paraphrase one sentence with every tool, keeping only valid, novel outputs."""
        group = ParaphraseGroup(original=sentence)
        seen = {sentence}
        original_tags = sorted(_TAG_RE.findall(sentence))
        for tool in self.tools:
            candidate = tool.paraphrase(sentence)
            if candidate in seen:
                continue
            if sorted(_TAG_RE.findall(candidate)) != original_tags:
                # the tool damaged a special tag — the paper removes such
                # outputs during its manual clean-up pass
                continue
            seen.add(candidate)
            group.paraphrases.append(candidate)
        return group

    def expand_all(self, sentences: Sequence[str]) -> list[ParaphraseGroup]:
        return [self.expand(sentence) for sentence in sentences]

    def expansion_factor(self, sentences: Sequence[str]) -> float:
        """Average number of samples per original sentence (≈3–4 in the paper)."""
        groups = self.expand_all(sentences)
        if not groups:
            return 1.0
        return sum(group.size for group in groups) / len(groups)
