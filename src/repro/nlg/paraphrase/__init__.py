"""Paraphrasing tools used to diversify training targets (paper §6.3).

The paper feeds every RULE-LANTERN sentence through three third-party online
paraphrasers.  Offline, we implement three independent tools with different
rewriting strategies and error profiles:

* :class:`LexicalParaphraser` — word-level synonym substitution (including
  the occasional imperfect choice such as "separating" for "selecting" that
  Table 2 of the paper shows);
* :class:`StructuralParaphraser` — phrase-level rewrites of the recurring
  narration templates;
* :class:`CompressionParaphraser` — shortens or expands clauses.

:class:`ParaphraseEngine` runs all three, removes duplicates, and discards
invalid outputs (sentences that lost a special tag), mirroring the manual
clean-up step described in the paper.
"""

from repro.nlg.paraphrase.engine import ParaphraseEngine
from repro.nlg.paraphrase.tools import (
    CompressionParaphraser,
    LexicalParaphraser,
    Paraphraser,
    StructuralParaphraser,
)

__all__ = [
    "CompressionParaphraser",
    "LexicalParaphraser",
    "ParaphraseEngine",
    "Paraphraser",
    "StructuralParaphraser",
]
