"""``python -m repro.nlg.train`` — train a narrator and emit a checkpoint.

The missing half of the paper's pipeline lifecycle: QEP2Seq is trained
*once*, then narrates interactively forever — so training belongs in an
offline CLI whose output is a LANTERN-PERSIST checkpoint, not in the serving
process.  This command builds the requested workload, generates the training
dataset, trains QEP2Seq, wraps it in a :class:`~repro.core.lantern.Lantern`
facade, and saves the whole thing::

    python -m repro.nlg.train --workload dblp --queries 25 --epochs 10 --out ckpt/dblp
    python -m repro.service --checkpoint ckpt/dblp     # boots warm, no retraining

``--warm-cache`` additionally narrates every training plan once in neural
mode before saving, so the checkpoint ships with a hot act-signature decode
cache.  ``--parity-sample FILE`` records a handful of plans and the exact
narrations the saved facade will produce for them next — a separate process
can load the checkpoint and verify token-identical output (the CI warm-boot
smoke does exactly that).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core import Lantern, LanternConfig
from repro.errors import WorkloadError
from repro.nlg.dataset import build_dataset
from repro.nlg.neural_lantern import NeuralLantern
from repro.nlg.persistence import save_lantern, save_neural_lantern
from repro.nlg.seq2seq import QEP2Seq, Seq2SeqConfig
from repro.nlg.training import TelemetryHooks, Trainer, TrainerHooks
from repro.obs.events import JsonEventLog
from repro.obs.tracing import default_tracer, format_span_tree

WORKLOADS = ("dblp", "imdb", "tpch", "sdss")


def _build_workload(name: str, seed: int, query_count: int):
    """(database, queries, engine) for one named workload.

    DBLP and IMDB use the schema-driven random query generator; TPC-H and
    SDSS use their canned paper query sets (capped at ``query_count``).
    """
    if name == "dblp":
        from repro.workloads import build_dblp_database
        from repro.workloads.dblp import DBLP_JOIN_GRAPH
        from repro.workloads.generator import RandomQueryGenerator

        database = build_dblp_database(publication_count=300, seed=seed)
        generator = RandomQueryGenerator(database, DBLP_JOIN_GRAPH, seed=seed)
        return database, [g.sql for g in generator.generate(query_count)], "postgresql"
    if name == "imdb":
        from repro.workloads import build_imdb_database
        from repro.workloads.generator import RandomQueryGenerator
        from repro.workloads.imdb import IMDB_JOIN_GRAPH

        database = build_imdb_database(title_count=600, seed=seed)
        generator = RandomQueryGenerator(database, IMDB_JOIN_GRAPH, seed=seed)
        return database, [g.sql for g in generator.generate(query_count)], "postgresql"
    if name == "tpch":
        from repro.workloads import build_tpch_database, tpch_queries

        database = build_tpch_database(scale=0.001, seed=seed)
        return database, [q.sql for q in tpch_queries()][:query_count], "postgresql"
    if name == "sdss":
        from repro.workloads import build_sdss_database, sdss_queries

        database = build_sdss_database(object_count=800, seed=seed)
        return database, [q.sql for q in sdss_queries()][:query_count], "sqlserver"
    raise WorkloadError(f"unknown workload {name!r}; expected one of {WORKLOADS}")


def train_workload_lantern(
    workload: str = "dblp",
    queries: int = 25,
    epochs: int = 10,
    hidden_dim: int = 48,
    attention_dim: int = 24,
    batch_size: int = 8,
    learning_rate: float = 0.005,
    beam_size: int = 2,
    seed: int = 9,
    train_cap: int = 220,
    validation_cap: int = 40,
    paraphrase: bool = True,
    early_stop_threshold: float | None = None,
    bucket_by_length: bool = False,
    dtype: str = "float64",
    turbo: bool = True,
    verbose: bool = False,
    hooks: TrainerHooks | None = None,
):
    """The one canonical "train a servable narrator" recipe.

    Builds the workload, generates the dataset, trains QEP2Seq, and wraps it
    in a ``Lantern`` with the deterministic serving config (``seed=None`` —
    rule wording independent of arrival order, which is also what makes
    checkpoint continuation token-identical).  Shared by the CLI below, the
    ``--neural`` flag of ``python -m repro.service``, and the checkpoint
    benchmark, so the serving conventions cannot drift apart.

    Returns ``(lantern, database, queries, engine, history)``.
    """
    tracer = default_tracer()
    with tracer.span("build_workload", workload=workload, queries=queries):
        database, query_texts, engine = _build_workload(workload, seed, queries)
    with tracer.span("build_dataset"):
        dataset = build_dataset(
            [(database, query_texts, engine, workload)], paraphrase=paraphrase, seed=seed
        )
    train_samples = dataset.train_samples[:train_cap]
    validation_samples = dataset.validation_samples[:validation_cap]
    if verbose:
        print(
            f"dataset: {dataset.size} samples "
            f"({len(train_samples)} train / {len(validation_samples)} validation), "
            f"vocabularies {len(dataset.input_vocabulary)}/{len(dataset.output_vocabulary)}"
        )
    config = Seq2SeqConfig(
        hidden_dim=hidden_dim,
        attention_dim=attention_dim,
        learning_rate=learning_rate,
        batch_size=batch_size,
        seed=seed,
        dtype=dtype,
        turbo=turbo,
    )
    model = QEP2Seq(dataset.input_vocabulary, dataset.output_vocabulary, config)
    with tracer.span("train", epochs=epochs, train_samples=len(train_samples)):
        history = Trainer(
            model,
            train_samples,
            validation_samples,
            seed=seed,
            bucket_by_length=bucket_by_length,
        ).train(epochs=epochs, early_stopping_threshold=early_stop_threshold, hooks=hooks)
    neural = NeuralLantern(model, dataset=dataset, beam_size=beam_size)
    lantern = Lantern(neural=neural, config=LanternConfig(seed=None))
    return lantern, database, query_texts, engine, history


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.nlg.train",
        description="Train QEP2Seq on a workload and emit a LANTERN-PERSIST checkpoint.",
    )
    parser.add_argument("--workload", choices=WORKLOADS, default="dblp")
    parser.add_argument(
        "--queries", type=int, default=25, help="workload queries to train on"
    )
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--hidden-dim", type=int, default=48)
    parser.add_argument("--attention-dim", type=int, default=24)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--learning-rate", type=float, default=0.005)
    parser.add_argument("--beam-size", type=int, default=2)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument(
        "--train-cap", type=int, default=220, help="max training samples"
    )
    parser.add_argument(
        "--validation-cap", type=int, default=40, help="max validation samples"
    )
    parser.add_argument(
        "--no-paraphrase",
        action="store_true",
        help="skip paraphrase expansion of the training targets",
    )
    parser.add_argument(
        "--early-stop-threshold",
        type=float,
        default=None,
        help="train-loss fluctuation below which training stops (default: run all epochs)",
    )
    parser.add_argument(
        "--bucket",
        action="store_true",
        help="length-bucketed batching: group similar-length samples per batch "
        "(less padding waste; deterministic given --seed)",
    )
    parser.add_argument(
        "--dtype",
        choices=("float64", "float32"),
        default="float64",
        help="model dtype: float64 (exact reference parity) or float32 (~2x memory/bandwidth)",
    )
    parser.add_argument(
        "--reference-path",
        action="store_true",
        help="train with the step-wise reference forward/backward instead of the fused turbo path",
    )
    parser.add_argument(
        "--kind",
        choices=("lantern", "neural"),
        default="lantern",
        help="checkpoint the full Lantern facade (servable) or the bare NeuralLantern",
    )
    parser.add_argument(
        "--warm-cache",
        action="store_true",
        help="narrate every training plan once before saving, shipping a hot decode cache",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="exclude decode-cache entries from the checkpoint",
    )
    parser.add_argument(
        "--parity-sample",
        metavar="FILE",
        help="write plans + the narrations the saved state will produce next, "
        "for cross-process warm-boot verification",
    )
    parser.add_argument(
        "--weights-layout",
        choices=("npz", "mmap"),
        default="npz",
        help="weight storage: compressed npz archive, or raw aligned bytes the "
        "loader maps copy-free (LANTERN-ZERO warm boot)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="FILE",
        help="persist the run as JSONL events (per-batch/per-epoch wall time, "
        "tokens/s, gradient norms, early-stopping state, phase trace)",
    )
    parser.add_argument(
        "--no-batch-telemetry",
        action="store_true",
        help="with --telemetry, keep only epoch/run-level events (smaller files)",
    )
    parser.add_argument("--out", required=True, help="checkpoint directory to write")
    return parser


def main(argv: list[str] | None = None) -> Path:
    parser = _parser()
    args = parser.parse_args(argv)
    if args.parity_sample and args.kind != "lantern":
        # the sample records narrations of the full facade (rule wording,
        # habituation, exposure state); a bare NeuralLantern checkpoint
        # cannot reproduce them in a fresh process
        parser.error("--parity-sample requires --kind lantern")

    telemetry_log = JsonEventLog(args.telemetry) if args.telemetry else None
    hooks = (
        TelemetryHooks(telemetry_log, per_batch=not args.no_batch_telemetry)
        if telemetry_log is not None
        else None
    )

    print(f"building the {args.workload} workload ({args.queries} queries) ...")
    started = time.perf_counter()
    root = default_tracer().trace("nlg.train", workload=args.workload)
    with root:
        lantern, database, queries, engine, history = train_workload_lantern(
            workload=args.workload,
            queries=args.queries,
            epochs=args.epochs,
            hidden_dim=args.hidden_dim,
            attention_dim=args.attention_dim,
            batch_size=args.batch_size,
            learning_rate=args.learning_rate,
            beam_size=args.beam_size,
            seed=args.seed,
            train_cap=args.train_cap,
            validation_cap=args.validation_cap,
            paraphrase=not args.no_paraphrase,
            early_stop_threshold=args.early_stop_threshold,
            bucket_by_length=args.bucket,
            dtype=args.dtype,
            turbo=not args.reference_path,
            verbose=True,
            hooks=hooks,
        )
        train_seconds = time.perf_counter() - started
        final = history.final
        print(
            f"trained {history.epochs} epochs in {train_seconds:.1f}s — "
            f"loss {final.train_loss:.3f}, accuracy {final.train_accuracy:.3f}, "
            f"validation loss {final.validation_loss:.3f}"
        )

        neural = lantern.neural
        if args.warm_cache:
            with default_tracer().span("warm_cache"):
                trees = [lantern.plan_for_sql(database, sql, engine) for sql in queries]
                lantern.describe_plans(trees, mode="neural")
            print(f"warmed the decode cache: {len(neural.decode_cache)} act signatures")

        out = Path(args.out)
        with default_tracer().span("save", kind=args.kind, layout=args.weights_layout):
            if args.kind == "neural":
                save_neural_lantern(
                    neural, out, include_cache=not args.no_cache, weights_layout=args.weights_layout
                )
            else:
                save_lantern(
                    lantern, out, include_cache=not args.no_cache, weights_layout=args.weights_layout
                )
        size = sum(f.stat().st_size for f in out.iterdir() if f.is_file())
        print(f"checkpoint written to {out} ({size / 1024:.0f} KiB, kind={args.kind})")

        if args.parity_sample:
            # narrated AFTER the save: the saved state is the starting point
            # for these exact narrations, so a fresh process that loads the
            # checkpoint must reproduce them token for token
            sample_sqls = queries[: min(4, len(queries))]
            payloads = [database.explain(sql, output_format="json") for sql in sample_sqls]
            texts = [
                lantern.describe_plan(lantern.parse_plan(payload), mode="neural").text
                for payload in payloads
            ]
            Path(args.parity_sample).write_text(
                json.dumps({"mode": "neural", "payloads": payloads, "texts": texts}, indent=2)
                + "\n",
                encoding="utf-8",
            )
            print(f"parity sample ({len(payloads)} plans) written to {args.parity_sample}")

    phase_trace = root.to_dict() if root else None
    if phase_trace:
        print("phase timings:")
        print(format_span_tree(phase_trace, indent=1))
    if telemetry_log is not None:
        if phase_trace:
            telemetry_log.emit({"event": "trace", **phase_trace})
        telemetry_log.close()
        print(
            f"telemetry ({telemetry_log.emitted} events) written to {args.telemetry}"
        )

    if args.kind == "lantern":
        print(f"serve it with: python -m repro.service --checkpoint {out}")
    return out


if __name__ == "__main__":
    main()
