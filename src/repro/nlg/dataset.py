"""Training-data generation for QEP2Seq (paper §6.2–6.3).

For every workload query we obtain the QEP from the mini engine, narrate it
with RULE-LANTERN, decompose it into acts, abstract each step's
schema-dependent values into the Table 1 tags, and optionally expand the
target side with the three paraphrasing tools.  The result is a set of
(act tokens → description tokens) pairs plus the vocabularies and the raw
rule sentences used to pre-train embeddings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.acts import Act, align_acts_with_narration, decompose_lot_into_acts
from repro.core.lantern import SOURCE_TO_POEM
from repro.core.narration import NarrationStep
from repro.core.rule_lantern import RuleLantern
from repro.core.tags import TagMapping, abstract_step_text
from repro.nlg.paraphrase import ParaphraseEngine
from repro.nlg.tokenizer import tokenize
from repro.nlg.vocab import Vocabulary
from repro.plans.postgres import parse_postgres_json
from repro.plans.sqlserver import parse_sqlserver_xml
from repro.pool.catalogs import build_default_store
from repro.pool.poem import PoemStore


@dataclass
class TrainingSample:
    """One (act → description) pair."""

    source_tokens: list[str]
    target_tokens: list[str]
    abstracted_text: str
    origin: str = ""
    act_key: str = ""
    is_paraphrase: bool = False


@dataclass
class SampleGroup:
    """All samples derived from one rule-generated sentence (a Table 4 group)."""

    original: TrainingSample
    variants: list[TrainingSample] = field(default_factory=list)

    @property
    def samples(self) -> list[TrainingSample]:
        return [self.original] + self.variants


@dataclass
class TrainingDataset:
    """The full dataset: samples, splits, vocabularies, and provenance."""

    samples: list[TrainingSample]
    groups: list[SampleGroup]
    train_samples: list[TrainingSample]
    validation_samples: list[TrainingSample]
    input_vocabulary: Vocabulary
    output_vocabulary: Vocabulary
    rule_sentences: list[str]

    @property
    def size(self) -> int:
        return len(self.samples)


def length_bucketed_chunks(
    samples: Sequence[TrainingSample], batch_size: int
) -> list[list[TrainingSample]]:
    """Group samples of similar source+target length into batches.

    Every padded batch is as wide as its longest member, so a mixed-length
    epoch wastes most of its matmul work on pad positions.  A *stable* sort
    by total (source + target) length over the incoming order, chunked
    sequentially, keeps near-equal lengths together while staying fully
    deterministic: the randomness comes from the caller's (seeded) shuffle,
    which the stable sort preserves among equal-length samples.  With
    uniform-length data the schedule therefore degenerates to the unbucketed
    one batch-for-batch — the regression tests rely on exactly that.

    Only the final chunk can be partial, and the Trainer weights per-batch
    means by chunk size either way (the PR 3 epoch-metric fix).
    """
    ordered = sorted(
        samples, key=lambda sample: len(sample.source_tokens) + len(sample.target_tokens)
    )
    return [ordered[start : start + batch_size] for start in range(0, len(ordered), batch_size)]


def abstract_step(step: NarrationStep) -> tuple[str, TagMapping]:
    """Abstract one narration step into its tagged form."""
    return abstract_step_text(
        step.text,
        relations=step.relations + ([step.intermediate] if step.intermediate else []),
        filter_condition=step.filter_condition,
        join_condition=step.join_condition,
        group_keys=step.group_keys,
        sort_keys=step.sort_keys,
        index_name=step.index_name,
    )


def samples_for_database(
    database,
    queries: Sequence[str],
    store: Optional[PoemStore] = None,
    engine: str = "postgresql",
    origin: str = "",
    paraphrase: bool = True,
    paraphrase_engine: Optional[ParaphraseEngine] = None,
    seed: int = 7,
) -> tuple[list[SampleGroup], list[str]]:
    """Generate sample groups and the raw rule sentences for one workload."""
    store = store if store is not None else build_default_store()
    poem_source = SOURCE_TO_POEM[engine]
    narrator = RuleLantern(store, poem_source=poem_source, seed=seed)
    engine_paraphraser = paraphrase_engine or ParaphraseEngine()
    groups: list[SampleGroup] = []
    rule_sentences: list[str] = []

    for sql in queries:
        if engine in ("postgresql", "pg"):
            tree = parse_postgres_json(database.explain(sql, output_format="json"))
        else:
            tree = parse_sqlserver_xml(database.explain(sql, output_format="xml"))
        narration = narrator.narrate(tree)
        acts = align_acts_with_narration(decompose_lot_into_acts(narration.lot), narration)
        for act, step in zip(acts, narration.steps):
            rule_sentences.append(step.text)
            abstracted, _ = abstract_step(step)
            source_tokens = act.input_tokens()
            original = TrainingSample(
                source_tokens=source_tokens,
                target_tokens=tokenize(abstracted),
                abstracted_text=abstracted,
                origin=origin,
                act_key=act.key,
            )
            group = SampleGroup(original=original)
            if paraphrase:
                for variant in engine_paraphraser.expand(abstracted).paraphrases:
                    group.variants.append(
                        TrainingSample(
                            source_tokens=source_tokens,
                            target_tokens=tokenize(variant),
                            abstracted_text=variant,
                            origin=origin,
                            act_key=act.key,
                            is_paraphrase=True,
                        )
                    )
            groups.append(group)
    return groups, rule_sentences


def build_dataset(
    workloads: Sequence[tuple[object, Sequence[str], str, str]],
    store: Optional[PoemStore] = None,
    paraphrase: bool = True,
    validation_fraction: float = 0.2,
    seed: int = 7,
) -> TrainingDataset:
    """Build the full training dataset.

    ``workloads`` is a sequence of (database, queries, engine, origin-name)
    tuples — e.g. the TPC-H and SDSS workloads of the paper.
    """
    store = store if store is not None else build_default_store()
    all_groups: list[SampleGroup] = []
    rule_sentences: list[str] = []
    for database, queries, engine, origin in workloads:
        groups, sentences = samples_for_database(
            database,
            queries,
            store=store,
            engine=engine,
            origin=origin,
            paraphrase=paraphrase,
            seed=seed,
        )
        all_groups.extend(groups)
        rule_sentences.extend(sentences)

    samples = [sample for group in all_groups for sample in group.samples]
    rng = random.Random(seed)
    shuffled = list(samples)
    rng.shuffle(shuffled)
    validation_count = max(int(len(shuffled) * validation_fraction), 1) if shuffled else 0
    validation_samples = shuffled[:validation_count]
    train_samples = shuffled[validation_count:]

    input_vocabulary = Vocabulary.from_sequences(sample.source_tokens for sample in samples)
    output_vocabulary = Vocabulary.from_sequences(sample.target_tokens for sample in samples)
    return TrainingDataset(
        samples=samples,
        groups=all_groups,
        train_samples=train_samples,
        validation_samples=validation_samples,
        input_vocabulary=input_vocabulary,
        output_vocabulary=output_vocabulary,
        rule_sentences=rule_sentences,
    )
