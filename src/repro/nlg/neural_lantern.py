"""NEURAL-LANTERN: the neural description generator (paper §6).

The facade wraps a trained QEP2Seq model and plugs into
:class:`repro.core.Lantern` through the ``translate_step`` hook: it serializes
the act, decodes an abstracted sentence with beam search, and restores the
Table 1 tags from the corresponding rule-generated step, so that relation
names, predicates and intermediate-result identifiers stay exact while the
wording varies.

Two mechanisms keep response times interactive at scale (the Table 6
bottleneck):

* **Plan-level batching** — :meth:`NeuralLantern.translate_steps` translates
  every neural-bound act of a plan in one call, encoding all acts in a single
  padded encoder forward and decoding all their beams as one fused tensor
  (:meth:`repro.nlg.seq2seq.QEP2Seq.beam_decode_batch`).
* **Act-signature caching** — ranked beam candidates are memoized in an LRU
  :class:`repro.nlg.cache.DecodeCache` keyed on the tag-abstracted act token
  sequence.  Because the *entire ranked list* is cached, the exposure-based
  cycling through beam alternatives (wording variability) survives cache
  hits unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.acts import Act
from repro.core.narration import NarrationStep
from repro.errors import NLGError
from repro.nlg.cache import DEFAULT_CACHE_SIZE, DecodeCache, make_key
from repro.nlg.dataset import TrainingDataset, abstract_step, build_dataset
from repro.nlg.embeddings.registry import build_embedding_matrix
from repro.nlg.metrics import corpus_bleu
from repro.nlg.seq2seq import QEP2Seq, Seq2SeqConfig
from repro.nlg.tokenizer import detokenize, tokenize
from repro.nlg.training import Trainer, TrainingHistory
from repro.core.tags import restore_step_text


@dataclass
class NeuralLanternResult:
    """Everything produced by :meth:`NeuralLantern.fit`."""

    history: TrainingHistory
    dataset: TrainingDataset


class NeuralLantern:
    """The trained neural generator.

    The decode cache is keyed on (act signature, beam size, model
    precision) only — it does not observe the model's weights.  If you
    continue training the wrapped model after generating narrations, call
    ``self.decode_cache.clear()`` so stale pre-training candidates are not
    served.  (The precision component means toggling quantization never
    serves candidates decoded under a different numeric grid.)
    """

    def __init__(
        self,
        model: QEP2Seq,
        dataset: Optional[TrainingDataset] = None,
        beam_size: Optional[int] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_enabled: bool = True,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.beam_size = beam_size
        self._act_exposure: dict[str, int] = {}
        self.decode_cache = DecodeCache(max_size=cache_size, enabled=cache_enabled)

    # ------------------------------------------------------------------
    # construction / training
    # ------------------------------------------------------------------

    @classmethod
    def fit(
        cls,
        workloads: Sequence[tuple[object, Sequence[str], str, str]],
        config: Optional[Seq2SeqConfig] = None,
        embedding_family: Optional[str] = None,
        pretrained_embeddings: bool = True,
        paraphrase: bool = True,
        epochs: int = 20,
        embedding_epochs: int = 2,
        seed: int = 7,
    ) -> tuple["NeuralLantern", NeuralLanternResult]:
        """Build the dataset, (optionally) pre-train embeddings, and train QEP2Seq."""
        dataset = build_dataset(workloads, paraphrase=paraphrase, seed=seed)
        if not dataset.train_samples:
            raise NLGError("the training dataset is empty")
        config = config if config is not None else Seq2SeqConfig()
        decoder_matrix = None
        if embedding_family is not None:
            config.embedding_name = embedding_family
            decoder_matrix = build_embedding_matrix(
                embedding_family,
                dataset.output_vocabulary,
                dataset.rule_sentences,
                pretrained=pretrained_embeddings,
                epochs=embedding_epochs,
                seed=seed,
            )
        model = QEP2Seq(
            dataset.input_vocabulary,
            dataset.output_vocabulary,
            config=config,
            decoder_pretrained=decoder_matrix,
        )
        trainer = Trainer(model, dataset.train_samples, dataset.validation_samples, seed=seed)
        history = trainer.train(epochs=epochs)
        return cls(model, dataset=dataset), NeuralLanternResult(history=history, dataset=dataset)

    # ------------------------------------------------------------------
    # caching
    # ------------------------------------------------------------------

    def configure_cache(
        self, size: Optional[int] = None, enabled: Optional[bool] = None
    ) -> None:
        """Adjust the decode cache (wired from ``LanternConfig`` knobs)."""
        self.decode_cache.configure(max_size=size, enabled=enabled)

    def _effective_beam_size(self) -> int:
        """The beam size actually used to decode (and to key the cache).

        Resolving ``None`` → the model's configured default *before* keying
        means ``NeuralLantern(model)`` and ``NeuralLantern(model,
        beam_size=model.config.beam_size)`` share cache entries, and a later
        change to ``model.config.beam_size`` can never serve stale candidate
        lists decoded under the old width.
        """
        return self.beam_size or self.model.config.beam_size

    def _ranked_candidates(self, source_tokens: list[str], beam_size: int) -> list[list[str]]:
        """Cached ranked beam candidates for one act signature."""
        key = make_key(source_tokens, beam_size, self.model.precision)
        cached = self.decode_cache.get(key)
        if cached is not None:
            return cached
        candidates = self.model.beam_decode_candidates(source_tokens, beam_size=beam_size)
        self.decode_cache.put(key, candidates)
        return candidates

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------

    def generate_abstracted(self, act: Act) -> str:
        """Decode the tag-abstracted sentence for one act.

        When the same act structure recurs within a session, successive calls
        cycle through the surviving beam hypotheses, so repeated operators are
        described with varied wording (the anti-habituation behaviour of §6).
        """
        candidates = self._ranked_candidates(act.input_tokens(), self._effective_beam_size())
        return self._pick_candidate(act, candidates)

    def _pick_candidate(self, act: Act, candidates: list[list[str]]) -> str:
        candidates = [tokens for tokens in candidates if tokens]
        if not candidates:
            raise NLGError("the decoder produced an empty description")
        exposure = self._act_exposure.get(act.key, 0)
        self._act_exposure[act.key] = exposure + 1
        return detokenize(candidates[exposure % len(candidates)])

    def translate_step(self, act: Act, rule_step: NarrationStep) -> str:
        """The :class:`repro.core.lantern.StepTranslator` hook.

        Decodes an abstracted sentence and restores the concrete values
        (relations, conditions, identifiers) recorded in the rule step.
        """
        return self._finalize(self.generate_abstracted(act), rule_step)

    def translate_steps(
        self, acts: Sequence[Act], rule_steps: Sequence[NarrationStep]
    ) -> list[str]:
        """Translate all neural-bound acts of a plan in one batched call.

        Cache lookups run first; the remaining *distinct* act signatures are
        decoded together through :meth:`QEP2Seq.beam_decode_batch` (one padded
        encoder forward, one fused beam tensor) and inserted into the cache.
        Exposure cycling and tag restoration then proceed per step exactly as
        in :meth:`translate_step`, so the output text is identical to calling
        the per-step hook in a loop.
        """
        if len(acts) != len(rule_steps):
            raise NLGError("translate_steps needs one rule step per act")
        beam_size = self._effective_beam_size()
        precision = self.model.precision
        sources = [act.input_tokens() for act in acts]
        keys = [make_key(source, beam_size, precision) for source in sources]
        resolved: dict = {}
        pending_keys: list = []
        pending_sources: list[list[str]] = []
        # every per-act signature is looked up through the cache, so the
        # hit/miss counters reflect exactly the lookups the cache served:
        # in-plan duplicates of a still-pending decode count as misses (they
        # are served by the in-call dedup below, not by the cache)
        for key, source in zip(keys, sources):
            cached = self.decode_cache.get(key)
            if cached is not None:
                resolved[key] = cached
            elif key not in resolved:
                resolved[key] = None
                pending_keys.append(key)
                pending_sources.append(source)
        if pending_sources:
            decoded = self.model.beam_decode_batch(pending_sources, beam_size=beam_size)
            for key, candidates in zip(pending_keys, decoded):
                self.decode_cache.put(key, candidates)
                resolved[key] = candidates
        return [
            self._finalize(self._pick_candidate(act, resolved[key]), rule_step)
            for act, rule_step, key in zip(acts, rule_steps, keys)
        ]

    def _finalize(self, abstracted: str, rule_step: NarrationStep) -> str:
        """Restore concrete values into an abstracted sentence and punctuate."""
        _, mapping = abstract_step(rule_step)
        restored = restore_step_text(abstracted, mapping)
        restored = self._fill_unresolved_tags(restored, rule_step)
        restored = restored.strip()
        if not restored.endswith("."):
            restored += "."
        return restored

    @staticmethod
    def _fill_unresolved_tags(text: str, rule_step: NarrationStep) -> str:
        """Replace tags the decoder emitted but the rule step has no value for.

        These correspond to the "wrong token" errors audited in Exp 5 — the
        sentence stays readable, with a neutral phrase in place of the tag.
        """
        fallbacks = {
            "<T>": rule_step.intermediate or (rule_step.relations[0] if rule_step.relations else "its input"),
            "<TN>": rule_step.intermediate or "the intermediate relation",
            "<F>": rule_step.filter_condition or "the specified condition",
            "<C>": rule_step.join_condition or "the specified condition",
            "<A>": ", ".join(rule_step.sort_keys) or "the specified attribute",
            "<G>": ", ".join(rule_step.group_keys) or "the specified attribute",
            "<I>": rule_step.index_name or "the index",
        }
        for tag, replacement in fallbacks.items():
            if tag in text:
                text = text.replace(tag, replacement)
        return text

    # ------------------------------------------------------------------
    # persistence (LANTERN-PERSIST)
    # ------------------------------------------------------------------

    def save(self, path, include_cache: bool = True, weights_layout: str = "npz"):
        """Checkpoint this generator (weights, vocabularies, beam size,
        wording-cycle exposures, optionally the warm decode cache).

        ``weights_layout="mmap"`` writes the raw zero-copy layout that
        loads by memory-mapping (LANTERN-ZERO warm boot); ``"npz"`` is the
        classic fully-verified archive.  The training ``dataset`` is
        provenance, not serving state, and is not persisted; a loaded
        generator has ``dataset=None``.
        """
        # imported lazily: persistence imports this module at load time
        from repro.nlg.persistence import save_neural_lantern

        return save_neural_lantern(
            self, path, include_cache=include_cache, weights_layout=weights_layout
        )

    @classmethod
    def load(cls, path, verify: bool = False) -> "NeuralLantern":
        """Rebuild a generator from a checkpoint written by :meth:`save`."""
        from repro.nlg.persistence import load_neural_lantern

        return load_neural_lantern(path, verify=verify)

    # ------------------------------------------------------------------
    # evaluation helpers
    # ------------------------------------------------------------------

    def test_bleu(self, samples, beam_size: Optional[int] = None) -> float:
        """Corpus BLEU of decoded outputs against ground-truth target tokens."""
        samples = list(samples)
        if not samples:
            return 0.0
        ranked = self.model.beam_decode_batch(
            [sample.source_tokens for sample in samples],
            beam_size=beam_size or self.beam_size,
        )
        candidates = [candidate_list[0] for candidate_list in ranked]
        references = [sample.target_tokens for sample in samples]
        return corpus_bleu(candidates, references)

    def token_error_profile(
        self,
        samples,
        beam_size: Optional[int] = None,
        allow_paraphrases: bool = True,
    ) -> dict[str, int]:
        """Exp 5: how many test samples decode perfectly / with 1 wrong token / worse.

        The paper's audit judged *semantic* correctness, so by default a
        decoded sentence is scored against the reference **and** its accepted
        paraphrases (any of the wordings the training data treats as correct),
        taking the smallest token-error count.  Set ``allow_paraphrases=False``
        for strict exact-reference matching.
        """
        from repro.nlg.metrics import token_error_count
        from repro.nlg.paraphrase import ParaphraseEngine

        samples = list(samples)
        engine = ParaphraseEngine() if allow_paraphrases else None
        profile = {"correct": 0, "one_wrong_token": 0, "several_wrong_tokens": 0}
        if not samples:
            return profile
        ranked = self.model.beam_decode_batch(
            [sample.source_tokens for sample in samples],
            beam_size=beam_size or self.beam_size,
        )
        for sample, candidate_list in zip(samples, ranked):
            decoded = candidate_list[0]
            references = [sample.target_tokens]
            if engine is not None:
                references.extend(
                    tokenize(paraphrase)
                    for paraphrase in engine.expand(sample.abstracted_text).paraphrases
                )
            errors = min(token_error_count(decoded, reference) for reference in references)
            if errors == 0:
                profile["correct"] += 1
            elif errors == 1:
                profile["one_wrong_token"] += 1
            else:
                profile["several_wrong_tokens"] += 1
        return profile
