"""Evaluation metrics: BLEU, Self-BLEU, and sparse categorical accuracy."""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

import numpy as np


def _ngram_counts(tokens: Sequence[str], order: int) -> Counter:
    return Counter(tuple(tokens[i : i + order]) for i in range(len(tokens) - order + 1))


def bleu_score(
    candidate: Sequence[str],
    references: Sequence[Sequence[str]],
    max_order: int = 4,
    smooth: bool = True,
) -> float:
    """Corpus-style BLEU for a single candidate against one or more references.

    Returns a value in [0, 100] (the paper's Table 5 convention).  Uses
    add-one smoothing on higher-order n-grams so short sentences do not
    collapse to zero.
    """
    candidate = list(candidate)
    references = [list(reference) for reference in references]
    if not candidate or not references:
        return 0.0
    # for sentences shorter than max_order, only the realizable n-gram orders
    # contribute (otherwise an identical short candidate would be penalized)
    effective_order = max(1, min(max_order, len(candidate)))
    precisions: list[float] = []
    for order in range(1, effective_order + 1):
        candidate_counts = _ngram_counts(candidate, order)
        if not candidate_counts:
            precisions.append(1e-9)
            continue
        max_reference_counts: Counter = Counter()
        for reference in references:
            reference_counts = _ngram_counts(reference, order)
            for ngram, count in reference_counts.items():
                max_reference_counts[ngram] = max(max_reference_counts[ngram], count)
        overlap = sum(
            min(count, max_reference_counts.get(ngram, 0))
            for ngram, count in candidate_counts.items()
        )
        total = sum(candidate_counts.values())
        if smooth and order > 1:
            precisions.append((overlap + 1.0) / (total + 1.0))
        else:
            precisions.append(overlap / total if total else 1e-9)
    if min(precisions) <= 0:
        return 0.0
    log_precision = sum(math.log(precision) for precision in precisions) / effective_order
    closest_reference = min(references, key=lambda reference: abs(len(reference) - len(candidate)))
    reference_length = len(closest_reference)
    brevity = 1.0
    if len(candidate) < reference_length:
        brevity = math.exp(1.0 - reference_length / max(len(candidate), 1))
    return 100.0 * brevity * math.exp(log_precision)


def corpus_bleu(
    candidates: Sequence[Sequence[str]],
    references: Sequence[Sequence[str]],
    max_order: int = 4,
) -> float:
    """Average sentence BLEU over a corpus (candidate i scored against reference i)."""
    if not candidates:
        return 0.0
    scores = [
        bleu_score(candidate, [reference], max_order=max_order)
        for candidate, reference in zip(candidates, references)
    ]
    return float(np.mean(scores))


def self_bleu(samples: Sequence[Sequence[str]], max_order: int = 4) -> float:
    """Self-BLEU of a group of samples, normalized to [0, 1].

    Lower values indicate higher diversity; a group with a single sample has
    Self-BLEU 1.0 by convention (it is maximally non-diverse), matching the
    "without paraphrasing" row of Table 4.
    """
    samples = [list(sample) for sample in samples]
    if len(samples) <= 1:
        return 1.0
    scores = []
    for index, candidate in enumerate(samples):
        references = [sample for position, sample in enumerate(samples) if position != index]
        scores.append(bleu_score(candidate, references, max_order=max_order) / 100.0)
    return float(np.mean(scores))


def average_group_self_bleu(groups: Sequence[Sequence[Sequence[str]]]) -> float:
    """Mean Self-BLEU across groups (the quantity reported per row of Table 4)."""
    if not groups:
        return 1.0
    return float(np.mean([self_bleu(group) for group in groups]))


def sparse_categorical_accuracy(
    predictions: np.ndarray, targets: np.ndarray, mask: np.ndarray | None = None
) -> float:
    """Fraction of positions whose argmax prediction equals the target id."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.ndim == targets.ndim + 1:
        predictions = predictions.argmax(axis=-1)
    correct = (predictions == targets).astype(np.float64)
    if mask is None:
        return float(correct.mean()) if correct.size else 0.0
    mask = np.asarray(mask, dtype=np.float64)
    total = max(mask.sum(), 1.0)
    return float((correct * mask).sum() / total)


def token_error_count(candidate: Sequence[str], reference: Sequence[str]) -> int:
    """Number of token-level errors (edit distance) between candidate and reference.

    Used by Exp 5's error audit: 0 errors = correct, 1 = one wrong token, etc.
    """
    candidate = list(candidate)
    reference = list(reference)
    previous = list(range(len(reference) + 1))
    for i, candidate_token in enumerate(candidate, start=1):
        current = [i]
        for j, reference_token in enumerate(reference, start=1):
            cost = 0 if candidate_token == reference_token else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]
