"""Evaluation metrics: BLEU, Self-BLEU, and sparse categorical accuracy."""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

import numpy as np


def _ngram_counts(tokens: Sequence[str], order: int) -> Counter:
    return Counter(tuple(tokens[i : i + order]) for i in range(len(tokens) - order + 1))


def _ngram_profile(tokens: Sequence[str], max_order: int) -> list[Counter]:
    """Per-order n-gram counters for one sample, computed once and reused."""
    return [_ngram_counts(tokens, order) for order in range(1, max_order + 1)]


def _bleu_from_profiles(
    candidate_length: int,
    candidate_profile: list[Counter],
    reference_lengths: Sequence[int],
    reference_profiles: Sequence[list[Counter]],
    max_order: int = 4,
    smooth: bool = True,
) -> float:
    """BLEU core over precomputed n-gram profiles.

    Same arithmetic as :func:`bleu_score`, but the n-gram extraction is the
    caller's responsibility — :func:`self_bleu` extracts each sample's
    counters exactly once instead of once per candidate/reference pairing.
    """
    if not candidate_length or not reference_lengths:
        return 0.0
    # for sentences shorter than max_order, only the realizable n-gram orders
    # contribute (otherwise an identical short candidate would be penalized)
    effective_order = max(1, min(max_order, candidate_length))
    precisions: list[float] = []
    for order in range(1, effective_order + 1):
        candidate_counts = candidate_profile[order - 1]
        if not candidate_counts:
            precisions.append(1e-9)
            continue
        max_reference_counts: Counter = Counter()
        for reference_profile in reference_profiles:
            for ngram, count in reference_profile[order - 1].items():
                max_reference_counts[ngram] = max(max_reference_counts[ngram], count)
        overlap = sum(
            min(count, max_reference_counts.get(ngram, 0))
            for ngram, count in candidate_counts.items()
        )
        total = sum(candidate_counts.values())
        if smooth and order > 1:
            precisions.append((overlap + 1.0) / (total + 1.0))
        else:
            precisions.append(overlap / total if total else 1e-9)
    if min(precisions) <= 0:
        return 0.0
    log_precision = sum(math.log(precision) for precision in precisions) / effective_order
    reference_length = min(
        reference_lengths, key=lambda length: abs(length - candidate_length)
    )
    brevity = 1.0
    if candidate_length < reference_length:
        brevity = math.exp(1.0 - reference_length / max(candidate_length, 1))
    return 100.0 * brevity * math.exp(log_precision)


def bleu_score(
    candidate: Sequence[str],
    references: Sequence[Sequence[str]],
    max_order: int = 4,
    smooth: bool = True,
) -> float:
    """Corpus-style BLEU for a single candidate against one or more references.

    Returns a value in [0, 100] (the paper's Table 5 convention).  Uses
    add-one smoothing on higher-order n-grams so short sentences do not
    collapse to zero.
    """
    candidate = list(candidate)
    references = [list(reference) for reference in references]
    if not candidate or not references:
        return 0.0
    return _bleu_from_profiles(
        len(candidate),
        _ngram_profile(candidate, max_order),
        [len(reference) for reference in references],
        [_ngram_profile(reference, max_order) for reference in references],
        max_order=max_order,
        smooth=smooth,
    )


def corpus_bleu(
    candidates: Sequence[Sequence[str]],
    references: Sequence[Sequence[str]],
    max_order: int = 4,
) -> float:
    """Average sentence BLEU over a corpus (candidate i scored against reference i)."""
    if not candidates:
        return 0.0
    scores = [
        bleu_score(candidate, [reference], max_order=max_order)
        for candidate, reference in zip(candidates, references)
    ]
    return float(np.mean(scores))


def self_bleu(samples: Sequence[Sequence[str]], max_order: int = 4) -> float:
    """Self-BLEU of a group of samples, normalized to [0, 1].

    Lower values indicate higher diversity; a group with a single sample has
    Self-BLEU 1.0 by convention (it is maximally non-diverse), matching the
    "without paraphrasing" row of Table 4.
    """
    samples = [list(sample) for sample in samples]
    if len(samples) <= 1:
        return 1.0
    # each sample's per-order n-gram counters are extracted once and reused
    # in every candidate/reference pairing (previously recomputed O(n²) times)
    lengths = [len(sample) for sample in samples]
    profiles = [_ngram_profile(sample, max_order) for sample in samples]
    scores = []
    for index, candidate in enumerate(samples):
        if not candidate:
            scores.append(0.0)
            continue
        reference_lengths = lengths[:index] + lengths[index + 1 :]
        reference_profiles = profiles[:index] + profiles[index + 1 :]
        scores.append(
            _bleu_from_profiles(
                lengths[index],
                profiles[index],
                reference_lengths,
                reference_profiles,
                max_order=max_order,
            )
            / 100.0
        )
    return float(np.mean(scores))


def average_group_self_bleu(groups: Sequence[Sequence[Sequence[str]]]) -> float:
    """Mean Self-BLEU across groups (the quantity reported per row of Table 4)."""
    if not groups:
        return 1.0
    return float(np.mean([self_bleu(group) for group in groups]))


def sparse_categorical_accuracy(
    predictions: np.ndarray, targets: np.ndarray, mask: np.ndarray | None = None
) -> float:
    """Fraction of positions whose argmax prediction equals the target id."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.ndim == targets.ndim + 1:
        predictions = predictions.argmax(axis=-1)
    correct = (predictions == targets).astype(np.float64)
    if mask is None:
        return float(correct.mean()) if correct.size else 0.0
    mask = np.asarray(mask, dtype=np.float64)
    total = max(mask.sum(), 1.0)
    return float((correct * mask).sum() / total)


def token_error_count(candidate: Sequence[str], reference: Sequence[str]) -> int:
    """Number of token-level errors (edit distance) between candidate and reference.

    Used by Exp 5's error audit: 0 errors = correct, 1 = one wrong token, etc.
    """
    candidate = list(candidate)
    reference = list(reference)
    previous = list(range(len(reference) + 1))
    for i, candidate_token in enumerate(candidate, start=1):
        current = [i]
        for j, reference_token in enumerate(reference, start=1):
            cost = 0 if candidate_token == reference_token else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]
