"""LANTERN-PERSIST: versioned checkpoints for trained narrators.

A checkpoint is a directory holding two files:

* a weight file — every trainable :class:`~repro.nlg.nn.layers.Parameter`
  of the QEP2Seq model, keyed by its unique parameter name (absent for
  rule-only facades, which have no model).  Two layouts exist, selected at
  save time with ``weights_layout`` and recorded in the manifest:

  - ``"npz"`` (default) — a ``weights.npz`` archive, fully read and
    digest-verified on load;
  - ``"mmap"`` (LANTERN-ZERO) — ``weights.bin``, the raw C-contiguous
    array bytes at 64-byte-aligned offsets with an offset index in the
    manifest.  Loading memory-maps the file read-only and the model
    *adopts* the mapped views (no copy, no digest pass — structural
    bounds are checked instead, and :func:`verify_checkpoint` performs
    the full digest on demand), so warm boot costs microseconds and N
    forked serving workers share one physical copy of the weight pages.
    Training after an mmap load transparently copies weights into
    private memory (copy-on-train, see ``Parameter.materialize``).

* ``manifest.json`` — a schema-versioned JSON document recording what kind
  of object was saved, the model/facade configuration, both vocabularies in
  id order, the serving state that must survive a restart (wording-cycle
  exposures, habituation counters, optionally the warm decode cache), the
  weight layout, and a SHA-256 digest of the weight file so corruption is
  detectable in either layout.

Three object kinds round-trip, each strictly containing the previous:

* :func:`save_qep2seq` / :func:`load_qep2seq` — the bare encoder/decoder;
* :func:`save_neural_lantern` / :func:`load_neural_lantern` — the
  NEURAL-LANTERN facade (model + beam size + exposure state + cache);
* :func:`save_lantern` / :func:`load_lantern` — the full
  :class:`~repro.core.lantern.Lantern` (everything above + ``LanternConfig``
  + habituation counters), also reachable as ``Lantern.save(path)`` /
  ``Lantern.load(path)``.

A model loaded from a checkpoint produces **token-identical** narrations to
the model that was saved: weights, vocabulary ids, beam width, exposure
counters and cache contents are all restored bit-for-bit.  The model dtype
travels in the manifest (``Seq2SeqConfig.dtype``) and the npz archive keeps
array dtypes, so a float32 model round-trips as float32.  Optimizer moments
(Adam's m/v) are *not* persisted — checkpoints capture a narrator ready to
serve, not a training run mid-flight; continuing training from a checkpoint
restarts the optimizer state.

All failure modes raise a structured subclass of
:class:`~repro.errors.CheckpointError`: a non-checkpoint path or malformed
manifest raises :class:`~repro.errors.CheckpointFormatError`, an
unsupported schema version or mismatched kind raises
:class:`~repro.errors.CheckpointVersionError`, and a digest or weight-shape
mismatch raises :class:`~repro.errors.CheckpointIntegrityError`.
"""

from __future__ import annotations

import hashlib
import json
import mmap as mmap_module
from collections import Counter
from dataclasses import asdict
from pathlib import Path
from typing import Any, Optional, Union

import numpy as np

from repro.core.lantern import Lantern, LanternConfig
from repro.core.rule_lantern import RuleLantern
from repro.errors import (
    CheckpointError,
    CheckpointFormatError,
    CheckpointIntegrityError,
    CheckpointVersionError,
    PoolError,
    VocabularyError,
)
from repro.nlg.cache import DEFAULT_CACHE_SIZE, make_key
from repro.nlg.neural_lantern import NeuralLantern
from repro.obs.tracing import default_tracer
from repro.nlg.seq2seq import QEP2Seq, Seq2SeqConfig
from repro.nlg.vocab import Vocabulary
from repro.pool.poem import PoemStore

#: bumped whenever the manifest layout changes incompatibly
SCHEMA_VERSION = 1

#: the manifest's self-identification value
FORMAT_NAME = "lantern-persist"

MANIFEST_FILE = "manifest.json"
WEIGHTS_FILE = "weights.npz"
WEIGHTS_BIN_FILE = "weights.bin"

LAYOUT_NPZ = "npz"
LAYOUT_MMAP = "mmap"
WEIGHT_LAYOUTS = (LAYOUT_NPZ, LAYOUT_MMAP)

#: mmap layout: every array starts on a 64-byte boundary (cacheline/SIMD
#: friendly, and trivially satisfies numpy's alignment requirements)
_MMAP_ALIGN = 64

KIND_QEP2SEQ = "qep2seq"
KIND_NEURAL = "neural-lantern"
KIND_LANTERN = "lantern"

PathLike = Union[str, Path]


class _FastInitGenerator:
    """A stand-in rng for checkpoint reconstruction (see ``QEP2Seq.init_rng``).

    Every parameter of the model under construction is overwritten or
    mmap-adopted immediately afterwards, so initialization draws are pure
    waste — this generator returns zero buffers (calloc'd, so the kernel
    never materializes the pages) instead.
    """

    @staticmethod
    def uniform(low, high, size=None):
        return np.zeros(size if size is not None else ())


# ----------------------------------------------------------------------
# saving
# ----------------------------------------------------------------------


def save_qep2seq(model: QEP2Seq, path: PathLike, weights_layout: str = LAYOUT_NPZ) -> Path:
    """Checkpoint a bare QEP2Seq model; returns the checkpoint directory."""
    section, weights = _model_section_and_weights(model)
    manifest = _base_manifest(KIND_QEP2SEQ)
    manifest["model"] = section
    return _write_checkpoint(path, manifest, weights, weights_layout)


def save_neural_lantern(
    neural: NeuralLantern,
    path: PathLike,
    include_cache: bool = True,
    weights_layout: str = LAYOUT_NPZ,
) -> Path:
    """Checkpoint a NEURAL-LANTERN facade (model + serving state).

    ``include_cache=False`` still records the cache's size/enablement but
    drops the decoded entries (smaller checkpoint, cold cache on load).
    """
    section, weights = _model_section_and_weights(neural.model)
    manifest = _base_manifest(KIND_NEURAL)
    manifest["model"] = section
    manifest["neural"] = _neural_section(neural, include_cache)
    return _write_checkpoint(path, manifest, weights, weights_layout)


def save_lantern(
    lantern: Lantern,
    path: PathLike,
    include_cache: bool = True,
    weights_layout: str = LAYOUT_NPZ,
) -> Path:
    """Checkpoint a full :class:`Lantern` facade.

    Rule-only facades (no neural generator) checkpoint too — the manifest
    then carries only the ``LanternConfig`` and habituation counters, and no
    ``weights.npz`` is written.
    """
    manifest = _base_manifest(KIND_LANTERN)
    weights = None
    if lantern.neural is not None:
        if not isinstance(lantern.neural, NeuralLantern):
            raise CheckpointError(
                "only NeuralLantern generators can be checkpointed, not "
                f"{type(lantern.neural).__name__}"
            )
        section, weights = _model_section_and_weights(lantern.neural.model)
        manifest["model"] = section
        manifest["neural"] = _neural_section(lantern.neural, include_cache)
    manifest["lantern"] = {
        "config": asdict(lantern.config),
        "operator_counts": dict(lantern._operator_counts),
        # the POEM store travels with the facade: a POOL-customized catalog
        # (edited aliases/descriptions) must narrate identically after a
        # restart, not silently revert to the default wording
        "store": [
            {
                "source": poem_object.source,
                "name": poem_object.name,
                "operator_type": poem_object.operator_type,
                "alias": poem_object.alias,
                "defn": poem_object.defn,
                "descriptions": list(poem_object.descriptions),
                "cond": poem_object.cond,
                "target": poem_object.target,
            }
            for poem_object in lantern.store.objects()
        ],
        # with a seeded rule narrator, description wording cycles with the
        # rng stream — capture each narrator's stream position so the loaded
        # facade continues the cycle instead of replaying it from the seed
        "narrator_rng": {
            poem_source: _encode_rng_state(narrator._rng.getstate())
            for poem_source, narrator in lantern._narrators.items()
            if narrator._rng is not None
        },
    }
    return _write_checkpoint(path, manifest, weights, weights_layout)


def _base_manifest(kind: str) -> dict[str, Any]:
    return {"format": FORMAT_NAME, "schema_version": SCHEMA_VERSION, "kind": kind}


def _model_section_and_weights(
    model: QEP2Seq,
) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    weights = {parameter.name: parameter.value for parameter in model.parameters()}
    if len(weights) != len(model.parameters()):
        raise CheckpointError("model parameter names are not unique; cannot checkpoint")
    section = {
        "config": asdict(model.config),
        "input_tokens": model.input_vocabulary.tokens,
        "output_tokens": model.output_vocabulary.tokens,
        "parameters": {name: list(value.shape) for name, value in weights.items()},
    }
    return section, weights


def _neural_section(neural: NeuralLantern, include_cache: bool) -> dict[str, Any]:
    cache = neural.decode_cache
    return {
        "beam_size": neural.beam_size,
        # the wording-cycle state: which beam alternative each act signature
        # is due next — persisting it keeps anti-habituation cycling
        # continuous across a restart
        "act_exposure": dict(neural._act_exposure),
        "cache": {
            "max_size": cache.max_size,
            "enabled": cache.enabled,
            "entries": (
                [
                    [
                        list(key_tokens),
                        beam,
                        precision,
                        [list(tokens) for tokens in candidates],
                    ]
                    for (key_tokens, beam, precision), candidates in cache.export_entries()
                ]
                if include_cache
                else None
            ),
        },
    }


def _write_checkpoint(
    path: PathLike,
    manifest: dict[str, Any],
    weights: Optional[dict[str, np.ndarray]],
    weights_layout: str = LAYOUT_NPZ,
) -> Path:
    if weights_layout not in WEIGHT_LAYOUTS:
        raise CheckpointFormatError(
            f"unsupported weights layout {weights_layout!r}; expected one of {WEIGHT_LAYOUTS}"
        )
    tracer = default_tracer()
    with tracer.span(
        "checkpoint.save", kind=manifest.get("kind", "?"), layout=weights_layout
    ):
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        if weights is not None:
            manifest["weights_layout"] = weights_layout
            with tracer.span("weights"):
                if weights_layout == LAYOUT_NPZ:
                    with open(directory / WEIGHTS_FILE, "wb") as handle:
                        np.savez(handle, **weights)
                    manifest["weights_sha256"] = _sha256_file(directory / WEIGHTS_FILE)
                    _unlink_if_exists(directory / WEIGHTS_BIN_FILE)
                else:
                    manifest["weights_index"] = _write_weights_bin(
                        directory / WEIGHTS_BIN_FILE, weights
                    )
                    manifest["weights_sha256"] = _sha256_file(directory / WEIGHTS_BIN_FILE)
                    _unlink_if_exists(directory / WEIGHTS_FILE)
        else:
            # overwriting a neural checkpoint with a rule-only one must not
            # leave the previous model's weights orphaned beside the manifest
            _unlink_if_exists(directory / WEIGHTS_FILE)
            _unlink_if_exists(directory / WEIGHTS_BIN_FILE)
        with tracer.span("manifest"):
            (directory / MANIFEST_FILE).write_text(
                json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
    return directory


def _unlink_if_exists(path: Path) -> None:
    if path.exists():
        path.unlink()


def _write_weights_bin(
    path: Path, weights: dict[str, np.ndarray]
) -> list[dict[str, Any]]:
    """Write the raw mmap layout; returns the manifest offset index.

    Arrays are laid out back to back in iteration (parameter) order, each
    starting on a :data:`_MMAP_ALIGN`-byte boundary, as plain C-contiguous
    little-endian bytes — exactly the representation ``np.frombuffer`` can
    view with zero copies.
    """
    index: list[dict[str, Any]] = []
    with open(path, "wb") as handle:
        offset = 0
        for name, value in weights.items():
            array = np.ascontiguousarray(value)
            padding = (-offset) % _MMAP_ALIGN
            if padding:
                handle.write(b"\0" * padding)
                offset += padding
            index.append(
                {
                    "name": name,
                    "dtype": array.dtype.str,
                    "shape": list(array.shape),
                    "offset": offset,
                }
            )
            data = array.tobytes()
            handle.write(data)
            offset += len(data)
    return index


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------


def checkpoint_kind(path: PathLike) -> str:
    """The kind recorded in a checkpoint's manifest (validates the header)."""
    return _read_manifest(Path(path))["kind"]


def load_qep2seq(path: PathLike, verify: bool = False) -> QEP2Seq:
    """Load a bare QEP2Seq checkpoint.

    ``verify=True`` forces the full weight-file digest check even for the
    mmap layout (whose default load is structural-only for speed).
    """
    directory = Path(path)
    tracer = default_tracer()
    with tracer.span("checkpoint.load", kind=KIND_QEP2SEQ):
        with tracer.span("manifest"):
            manifest = _read_manifest(directory)
        _expect_kind(manifest, KIND_QEP2SEQ)
        with tracer.span("restore"):
            return _restore_model(
                _section(manifest, "model"),
                _read_weights(directory, manifest, verify=verify),
            )


def load_neural_lantern(path: PathLike, verify: bool = False) -> NeuralLantern:
    """Load a NEURAL-LANTERN checkpoint (model + exposure state + cache)."""
    directory = Path(path)
    tracer = default_tracer()
    with tracer.span("checkpoint.load", kind=KIND_NEURAL):
        with tracer.span("manifest"):
            manifest = _read_manifest(directory)
        _expect_kind(manifest, KIND_NEURAL)
        with tracer.span("restore"):
            return _restore_neural(manifest, directory, verify=verify)


def load_lantern(path: PathLike, verify: bool = False) -> Lantern:
    """Load a full :class:`Lantern` checkpoint."""
    directory = Path(path)
    tracer = default_tracer()
    with tracer.span("checkpoint.load", kind=KIND_LANTERN):
        with tracer.span("manifest"):
            manifest = _read_manifest(directory)
        _expect_kind(manifest, KIND_LANTERN)
        section = _section(manifest, "lantern")
        config = _build_config(LanternConfig, section.get("config"), "lantern config")
        with tracer.span("restore"):
            neural = (
                _restore_neural(manifest, directory, verify=verify)
                if "neural" in manifest
                else None
            )
            lantern = Lantern(
                store=_restore_store(section.get("store")), neural=neural, config=config
            )
            counts = section.get("operator_counts", {})
            if not isinstance(counts, dict):
                raise CheckpointFormatError(
                    "the manifest's operator_counts must be an object"
                )
            lantern._operator_counts = Counter(
                {
                    str(name): _coerce_int(count, "operator count")
                    for name, count in counts.items()
                }
            )
            for poem_source, state in (section.get("narrator_rng") or {}).items():
                narrator = RuleLantern(
                    lantern.store, poem_source=poem_source, seed=lantern.config.seed
                )
                if narrator._rng is not None:
                    try:
                        narrator._rng.setstate(_decode_rng_state(state))
                    except (TypeError, ValueError) as error:
                        raise CheckpointFormatError(
                            f"invalid narrator rng state for {poem_source!r}: {error}"
                        ) from error
                lantern._narrators[poem_source] = narrator
            return lantern


def _read_manifest(directory: Path) -> dict[str, Any]:
    manifest_path = directory / MANIFEST_FILE
    if not manifest_path.is_file():
        raise CheckpointFormatError(
            f"{directory} is not a LANTERN-PERSIST checkpoint (no {MANIFEST_FILE})"
        )
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise CheckpointFormatError(f"unreadable checkpoint manifest: {error}") from error
    if not isinstance(manifest, dict) or manifest.get("format") != FORMAT_NAME:
        raise CheckpointFormatError(
            f"{manifest_path} is not a {FORMAT_NAME} manifest"
        )
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise CheckpointVersionError(
            f"checkpoint schema version {version!r} is not supported "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    return manifest


def _expect_kind(manifest: dict[str, Any], expected: str) -> None:
    kind = manifest.get("kind")
    if kind != expected:
        raise CheckpointVersionError(
            f"checkpoint holds a {kind!r}, not the requested {expected!r} "
            "(use the matching load function, or Lantern.load for full facades)"
        )


def _section(manifest: dict[str, Any], name: str) -> dict[str, Any]:
    section = manifest.get(name)
    if not isinstance(section, dict):
        raise CheckpointFormatError(f"the manifest has no {name!r} section")
    return section


def _weights_layout(manifest: dict[str, Any]) -> str:
    layout = manifest.get("weights_layout", LAYOUT_NPZ)
    if layout not in WEIGHT_LAYOUTS:
        raise CheckpointFormatError(
            f"unsupported weights layout {layout!r}; this build reads {WEIGHT_LAYOUTS}"
        )
    return layout


def _verify_digest(weights_path: Path, manifest: dict[str, Any]) -> None:
    recorded = manifest.get("weights_sha256")
    if not isinstance(recorded, str):
        raise CheckpointFormatError("the manifest records no weights digest")
    actual = _sha256_file(weights_path)
    if actual != recorded:
        raise CheckpointIntegrityError(
            f"weights digest mismatch: manifest records sha256 {recorded[:12]}… but "
            f"{weights_path.name} hashes to {actual[:12]}… — the checkpoint is corrupt"
        )


def verify_checkpoint(path: PathLike) -> bool:
    """Full integrity check of a checkpoint's weight file, any layout.

    Recomputes the SHA-256 digest over the entire weight file and compares
    it with the manifest — the check the fast mmap load path deliberately
    skips.  Returns ``True`` for weight-less (rule-only) checkpoints.
    Raises :class:`~repro.errors.CheckpointIntegrityError` on mismatch.
    """
    directory = Path(path)
    manifest = _read_manifest(directory)
    if "weights_sha256" not in manifest:
        return True  # rule-only facade: nothing to verify
    layout = _weights_layout(manifest)
    file_name = WEIGHTS_FILE if layout == LAYOUT_NPZ else WEIGHTS_BIN_FILE
    weights_path = directory / file_name
    if not weights_path.is_file():
        raise CheckpointFormatError(f"checkpoint is missing {file_name}")
    _verify_digest(weights_path, manifest)
    return True


def _read_weights(
    directory: Path, manifest: dict[str, Any], verify: bool = False
) -> dict[str, np.ndarray]:
    if _weights_layout(manifest) == LAYOUT_MMAP:
        return _read_weights_mmap(directory, manifest, verify=verify)
    weights_path = directory / WEIGHTS_FILE
    if not weights_path.is_file():
        raise CheckpointFormatError(f"checkpoint is missing {WEIGHTS_FILE}")
    # the npz path always digests: it reads every byte anyway
    _verify_digest(weights_path, manifest)
    try:
        with np.load(weights_path, allow_pickle=False) as archive:
            return {name: np.asarray(archive[name]) for name in archive.files}
    except (OSError, ValueError) as error:
        raise CheckpointIntegrityError(f"unreadable weight archive: {error}") from error


def _read_weights_mmap(
    directory: Path, manifest: dict[str, Any], verify: bool = False
) -> dict[str, np.ndarray]:
    """Map ``weights.bin`` read-only and return zero-copy array views.

    The default check is *structural* — every index entry must fit inside
    the file — because digesting the whole file would fault in every page
    and erase the point of mapping (``verify=True`` restores the digest
    pass; :func:`verify_checkpoint` does it standalone).  The views keep
    the mapping alive through their ``base`` reference and are read-only:
    training triggers copy-on-train in ``Parameter.materialize``.
    """
    weights_path = directory / WEIGHTS_BIN_FILE
    if not weights_path.is_file():
        raise CheckpointFormatError(f"checkpoint is missing {WEIGHTS_BIN_FILE}")
    if verify:
        _verify_digest(weights_path, manifest)
    index = manifest.get("weights_index")
    if not isinstance(index, list):
        raise CheckpointFormatError("the manifest records no weights_index for the mmap layout")
    with open(weights_path, "rb") as handle:
        try:
            mapped = mmap_module.mmap(handle.fileno(), 0, access=mmap_module.ACCESS_READ)
        except (OSError, ValueError) as error:
            raise CheckpointIntegrityError(
                f"cannot map {WEIGHTS_BIN_FILE}: {error}"
            ) from error
    file_size = len(mapped)
    weights: dict[str, np.ndarray] = {}
    for entry in index:
        if not isinstance(entry, dict):
            raise CheckpointFormatError(f"malformed weights_index entry: {entry!r}")
        try:
            name = str(entry["name"])
            dtype = np.dtype(str(entry["dtype"]))
            shape = tuple(_coerce_int(n, "weights_index shape") for n in entry["shape"])
            offset = _coerce_int(entry["offset"], "weights_index offset")
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointFormatError(
                f"malformed weights_index entry: {entry!r}"
            ) from error
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * dtype.itemsize
        if offset < 0 or offset + nbytes > file_size:
            raise CheckpointIntegrityError(
                f"weight {name!r} spans [{offset}, {offset + nbytes}) but "
                f"{WEIGHTS_BIN_FILE} holds only {file_size} bytes — the checkpoint "
                "is truncated or the index is corrupt"
            )
        if name in weights:
            raise CheckpointFormatError(f"duplicate weight {name!r} in weights_index")
        weights[name] = np.frombuffer(
            mapped, dtype=dtype, count=count, offset=offset
        ).reshape(shape)
    return weights


def _restore_model(section: dict[str, Any], weights: dict[str, np.ndarray]) -> QEP2Seq:
    # the manifest's name→shape map must agree with the archive before any
    # reconstruction: a writer bug (or a weights file paired with the wrong
    # manifest) surfaces here as a structured error, not a numpy shape blowup
    declared = section.get("parameters")
    if isinstance(declared, dict):
        if set(declared) != set(weights):
            raise CheckpointIntegrityError(
                "manifest and weight archive disagree on parameter names "
                f"(manifest-only: {sorted(set(declared) - set(weights)) or 'none'}, "
                f"archive-only: {sorted(set(weights) - set(declared)) or 'none'})"
            )
        for name, shape in declared.items():
            if list(weights[name].shape) != list(shape):
                raise CheckpointIntegrityError(
                    f"manifest declares shape {shape} for {name!r} but the "
                    f"archive holds {list(weights[name].shape)}"
                )
    config = _build_config(Seq2SeqConfig, section.get("config"), "model config")
    # the manifest's config.dtype governs reconstruction: a float32 model
    # round-trips as float32 (the npz archive preserves array dtypes, and
    # every restored value below is cast to the model dtype)
    dtype = np.dtype(getattr(config, "dtype", "float64"))
    input_vocabulary = _restore_vocabulary(section.get("input_tokens"), "input")
    output_vocabulary = _restore_vocabulary(section.get("output_tokens"), "output")
    decoder_table = weights.get("decoder_embedding.table")
    if decoder_table is None:
        raise CheckpointIntegrityError(
            "the weight archive has no decoder embedding table"
        )
    # passing a (dummy) table of the saved width as "pretrained" makes the
    # constructor adopt it, so models trained with pre-trained embeddings
    # (whose dimension differs from config.decoder_embedding_dim) rebuild
    # with correct shapes; every parameter, the table included, is then
    # overwritten (or mmap-adopted) below — which is also why construction
    # can skip real rng draws entirely (_FastInitGenerator)
    # quantization is deferred until the real weights are in place (the
    # constructor would otherwise quantize the throwaway init values)
    saved_quantize = getattr(config, "quantize", "none")
    config.quantize = "none"
    model = QEP2Seq(
        input_vocabulary,
        output_vocabulary,
        config=config,
        decoder_pretrained=np.empty(decoder_table.shape, dtype=dtype),
        init_rng=_FastInitGenerator(),
    )
    expected = {parameter.name: parameter for parameter in model.parameters()}
    if set(expected) != set(weights):
        missing = sorted(set(expected) - set(weights))
        unexpected = sorted(set(weights) - set(expected))
        raise CheckpointIntegrityError(
            "weight archive does not match the reconstructed model "
            f"(missing: {missing or 'none'}, unexpected: {unexpected or 'none'})"
        )
    for name, parameter in expected.items():
        saved = weights[name]
        if saved.shape != parameter.value.shape:
            raise CheckpointIntegrityError(
                f"weight {name!r} has shape {saved.shape}, the model expects "
                f"{parameter.value.shape}"
            )
        if not saved.flags.writeable and saved.dtype == dtype:
            # read-only view straight out of the mapped checkpoint file:
            # adopt it without copying so the weight pages stay shared
            parameter.adopt(saved)
        else:
            parameter.value[...] = np.asarray(saved, dtype=dtype)
    if saved_quantize != "none":
        # re-quantizing the restored master weights is deterministic, so a
        # quantized model's decodes survive the round trip exactly
        model.quantize(saved_quantize)
    return model


def _restore_neural(
    manifest: dict[str, Any], directory: Path, verify: bool = False
) -> NeuralLantern:
    model = _restore_model(
        _section(manifest, "model"), _read_weights(directory, manifest, verify=verify)
    )
    section = _section(manifest, "neural")
    cache_spec = section.get("cache") or {}
    neural = NeuralLantern(
        model,
        beam_size=section.get("beam_size"),
        cache_size=_coerce_int(
            cache_spec.get("max_size", DEFAULT_CACHE_SIZE), "cache max_size"
        ),
        cache_enabled=bool(cache_spec.get("enabled", True)),
    )
    exposure = section.get("act_exposure", {})
    if not isinstance(exposure, dict):
        raise CheckpointFormatError("the manifest's act_exposure must be an object")
    neural._act_exposure = {
        str(key): _coerce_int(count, "act exposure") for key, count in exposure.items()
    }
    # re-inserting the snapshot oldest-first reproduces the LRU order exactly
    for entry in cache_spec.get("entries") or []:
        try:
            if len(entry) == 3:
                # legacy (pre-precision) entry: decoded by the saved model
                # itself, so its precision is the loaded model's
                key_tokens, beam, candidates = entry
                precision = model.precision
            else:
                key_tokens, beam, precision, candidates = entry
            key = make_key(
                [str(token) for token in key_tokens],
                _coerce_int(beam, "beam size"),
                str(precision),
            )
            value = [[str(token) for token in tokens] for tokens in candidates]
        except (TypeError, ValueError) as error:
            raise CheckpointFormatError(f"malformed cache entry: {entry!r}") from error
        neural.decode_cache.put(key, value)
    return neural


def _restore_store(specs: Any) -> Optional[PoemStore]:
    """Rebuild the POEM store saved with a facade (None → the default store).

    Objects are re-created in their saved (insertion) order, so oids come
    back identical — ``create`` assigns them from a counter.
    """
    if specs is None:
        return None  # pre-store manifests: Lantern falls back to the default
    if not isinstance(specs, list):
        raise CheckpointFormatError("the manifest's store section is malformed")
    store = PoemStore()
    for spec in specs:
        if not isinstance(spec, dict):
            raise CheckpointFormatError(f"malformed POEM object: {spec!r}")
        try:
            store.create(
                source=spec["source"],
                name=spec["name"],
                operator_type=spec.get("operator_type", "unary"),
                alias=spec.get("alias"),
                defn=spec.get("defn"),
                descriptions=spec.get("descriptions", ()),
                cond=bool(spec.get("cond", False)),
                target=spec.get("target"),
            )
        except (KeyError, PoolError) as error:
            raise CheckpointFormatError(
                f"cannot rebuild POEM object {spec.get('name')!r}: {error}"
            ) from error
    return store


def _restore_vocabulary(tokens: Any, label: str) -> Vocabulary:
    if not isinstance(tokens, list) or not all(isinstance(t, str) for t in tokens):
        raise CheckpointFormatError(f"the manifest's {label} vocabulary is malformed")
    try:
        return Vocabulary.from_tokens(tokens)
    except VocabularyError as error:
        raise CheckpointFormatError(
            f"the {label} vocabulary cannot be reconstructed: {error}"
        ) from error


def _build_config(cls, payload: Any, label: str):
    if not isinstance(payload, dict):
        raise CheckpointFormatError(f"the manifest's {label} is malformed")
    try:
        return cls(**payload)
    except TypeError as error:
        raise CheckpointFormatError(f"unsupported {label} fields: {error}") from error


def _coerce_int(value: Any, label: str) -> int:
    """Manifest number → int, as a structured error (never a raw ValueError)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CheckpointFormatError(f"the manifest's {label} must be a number, got {value!r}")
    return int(value)


def _encode_rng_state(state: tuple) -> list:
    """``random.Random.getstate()`` → JSON (tuples become lists)."""
    return [list(part) if isinstance(part, tuple) else part for part in state]


def _decode_rng_state(state: Any) -> tuple:
    """The inverse of :func:`_encode_rng_state` (lists become tuples)."""
    if not isinstance(state, list):
        raise CheckpointFormatError(f"malformed rng state: {state!r}")
    return tuple(tuple(part) if isinstance(part, list) else part for part in state)
