"""Closed vocabularies with the special control tokens of the QEP2Seq model."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import VocabularyError

PAD_TOKEN = "<PAD>"
BOS_TOKEN = "<BOS>"
END_TOKEN = "<END>"
UNK_TOKEN = "<UNK>"
CONTROL_TOKENS = (PAD_TOKEN, BOS_TOKEN, END_TOKEN, UNK_TOKEN)


class Vocabulary:
    """A bidirectional token/id mapping."""

    def __init__(self, tokens: Iterable[str] = ()) -> None:
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        for token in CONTROL_TOKENS:
            self._register(token)
        for token in tokens:
            self.add(token)

    def _register(self, token: str) -> int:
        index = len(self._id_to_token)
        self._token_to_id[token] = index
        self._id_to_token.append(token)
        return index

    # -- construction -----------------------------------------------------

    def add(self, token: str) -> int:
        """Add a token (idempotent); returns its id."""
        if token in self._token_to_id:
            return self._token_to_id[token]
        return self._register(token)

    @classmethod
    def from_sequences(cls, sequences: Iterable[Iterable[str]]) -> "Vocabulary":
        vocabulary = cls()
        for sequence in sequences:
            for token in sequence:
                vocabulary.add(token)
        return vocabulary

    @classmethod
    def from_tokens(cls, tokens: list[str]) -> "Vocabulary":
        """Reconstruct a vocabulary from a saved ``tokens`` list, id-exact.

        The inverse of :attr:`tokens`, used by LANTERN-PERSIST: position in
        the list **is** the token id, so a trained model's embeddings stay
        aligned after a reload.  Raises :class:`~repro.errors.VocabularyError`
        if the list would not reproduce its own ordering (duplicates, or
        control tokens missing from the front) — silently shifted ids would
        decode garbage.
        """
        vocabulary = cls(tokens)
        if vocabulary.tokens != list(tokens):
            raise VocabularyError(
                "token list does not reconstruct in its original id order "
                "(duplicates, or control tokens not leading)"
            )
        return vocabulary

    # -- lookup ------------------------------------------------------------

    def id_of(self, token: str, strict: bool = False) -> int:
        if token in self._token_to_id:
            return self._token_to_id[token]
        if strict:
            raise VocabularyError(f"token {token!r} is not in the vocabulary")
        return self._token_to_id[UNK_TOKEN]

    def token_of(self, index: int) -> str:
        if 0 <= index < len(self._id_to_token):
            return self._id_to_token[index]
        raise VocabularyError(f"id {index} is out of range (size {len(self)})")

    def encode(self, tokens: Iterable[str], add_bos: bool = False, add_end: bool = False) -> list[int]:
        ids = [self.id_of(token) for token in tokens]
        if add_bos:
            ids.insert(0, self.bos_id)
        if add_end:
            ids.append(self.end_id)
        return ids

    def decode(self, ids: Iterable[int], strip_control: bool = True) -> list[str]:
        tokens = [self.token_of(index) for index in ids]
        if strip_control:
            tokens = [token for token in tokens if token not in CONTROL_TOKENS]
        return tokens

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    @property
    def tokens(self) -> list[str]:
        return list(self._id_to_token)

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[BOS_TOKEN]

    @property
    def end_id(self) -> int:
        return self._token_to_id[END_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]
