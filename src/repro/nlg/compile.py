"""``python -m repro.nlg.compile`` — pre-decode a workload into a compiled cache.

The LANTERN-ZERO observation: act signatures are *structural*, so a serving
workload's neural decodes are enumerable offline.  This command loads a
LANTERN-PERSIST checkpoint, narrates every plan of the named workload once in
neural mode (batched beam search, the exact serving decode path), and freezes
the ranked candidate lists into a sorted-key JSON file::

    python -m repro.nlg.train   --workload dblp --queries 25 --out ckpt/dblp
    python -m repro.nlg.compile --checkpoint ckpt/dblp --workload dblp --out dblp.cache.json
    python -m repro.service     --checkpoint ckpt/dblp --compiled-cache dblp.cache.json

The service mounts the file read-only *under* its LRU decode cache
(:meth:`repro.nlg.cache.DecodeCache.mount_compiled`): known signatures are
served by binary search with **zero matmuls**, unknown ones fall through to
live beam search as before.  Because the compiled entries are produced by the
same decoder that would serve them live, a compiled hit is token-for-token
identical to a cold decode — the file is a pure latency optimization.

The file records the beam size and numeric precision
(``"<dtype>:<quantize>"``) it was compiled under; a service running the model
at any other beam/precision simply misses the compiled tier.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.errors import NLGError
from repro.nlg.cache import CompiledCache
from repro.obs.tracing import default_tracer, format_span_tree

#: cache headroom while compiling — large enough that no workload signature
#: is evicted before export (a plan rarely has more than a handful of
#: distinct neural-bound signatures, so thousands of *distinct* ones would
#: take a workload far bigger than any compile run)
_COMPILE_CACHE_SIZE = 65536


def compile_plans(lantern, trees) -> CompiledCache:
    """Pre-decode every neural-bound act signature of ``trees``.

    Narrates the plans through ``lantern``'s own neural path (so batching,
    cache keying, and beam ranking are exactly the serving code path), then
    snapshots the decode-cache entries that match the model's current beam
    size and precision into an immutable :class:`CompiledCache`.

    The lantern's decode cache is temporarily enlarged so no signature is
    evicted mid-compile; its original geometry, entries, and counters — and
    the generator's wording-cycle exposures — are restored before returning,
    so compiling does not disturb the lantern's future narrations.
    """
    neural = getattr(lantern, "neural", None)
    if neural is None:
        raise NLGError("the checkpoint has no neural generator; nothing to compile")
    cache = neural.decode_cache
    beam_size = neural._effective_beam_size()
    precision = neural.model.precision

    saved_entries = cache.export_entries()
    saved_geometry = (cache.max_size, cache.enabled)
    saved_counters = (cache.hits, cache.misses, cache.compiled_hits)
    saved_exposure = dict(neural._act_exposure)
    cache.configure(max_size=max(cache.max_size, _COMPILE_CACHE_SIZE), enabled=True)
    try:
        lantern.describe_plans(trees, mode="neural")
        entries = [
            (list(key_tokens), [list(candidate) for candidate in candidates])
            for (key_tokens, beam, key_precision), candidates in cache.export_entries()
            if beam == beam_size and key_precision == precision
        ]
    finally:
        cache.clear()
        cache.configure(max_size=saved_geometry[0], enabled=saved_geometry[1])
        for key, candidates in saved_entries:
            cache.put(key, candidates)
        cache.hits, cache.misses, cache.compiled_hits = saved_counters
        neural._act_exposure = saved_exposure
    return CompiledCache(entries, beam_size=beam_size, precision=precision)


def compile_workload(
    lantern, workload: str, queries: int, seed: int
) -> tuple[CompiledCache, int]:
    """Build the named workload and compile its plans.

    Returns ``(compiled cache, plan count)``.
    """
    from repro.nlg.train import _build_workload

    database, query_texts, engine = _build_workload(workload, seed, queries)
    trees = [lantern.plan_for_sql(database, sql, engine) for sql in query_texts]
    return compile_plans(lantern, trees), len(trees)


def _parser() -> argparse.ArgumentParser:
    from repro.nlg.train import WORKLOADS

    parser = argparse.ArgumentParser(
        prog="python -m repro.nlg.compile",
        description="Pre-decode a workload's act signatures into a compiled narration cache.",
    )
    parser.add_argument(
        "--checkpoint", required=True, help="LANTERN-PERSIST checkpoint directory to load"
    )
    parser.add_argument("--workload", choices=WORKLOADS, default="dblp")
    parser.add_argument(
        "--queries", type=int, default=25, help="workload queries to pre-decode"
    )
    parser.add_argument(
        "--seed", type=int, default=9, help="workload generator seed (match training)"
    )
    parser.add_argument("--out", required=True, help="compiled cache file to write")
    return parser


def main(argv: list[str] | None = None) -> Path:
    from repro.core import Lantern

    args = _parser().parse_args(argv)
    root = default_tracer().trace("nlg.compile", workload=args.workload)
    with root:
        started = time.perf_counter()
        with default_tracer().span("load_checkpoint"):
            lantern = Lantern.load(args.checkpoint)
        print(f"checkpoint loaded in {(time.perf_counter() - started) * 1000:.1f} ms")

        started = time.perf_counter()
        with default_tracer().span("compile", queries=args.queries):
            compiled, plan_count = compile_workload(
                lantern, workload=args.workload, queries=args.queries, seed=args.seed
            )
        elapsed = time.perf_counter() - started
        out = Path(args.out)
        with default_tracer().span("save"):
            compiled.save(out)
    if root:
        print("phase timings:")
        print(format_span_tree(root.to_dict(), indent=1))
    print(
        f"compiled {len(compiled)} act signatures from {plan_count} plans "
        f"in {elapsed:.1f}s (beam={compiled.beam_size}, precision={compiled.precision})"
    )
    print(f"compiled cache written to {out} ({out.stat().st_size / 1024:.0f} KiB)")
    print(
        "serve it with: python -m repro.service "
        f"--checkpoint {args.checkpoint} --compiled-cache {out}"
    )
    return out


if __name__ == "__main__":
    main()
