"""Act-signature decode cache for NEURAL-LANTERN.

Acts are structural: two plans that filter-then-scan the same way produce the
*same* tag-abstracted token sequence (``Act.key``), regardless of which
relations or predicates they mention.  The US-5 frequency-threshold policy
routes exactly the *frequently repeated* operators to the neural generator, so
the decoder is asked the same question over and over — a perfect caching
workload.

:class:`DecodeCache` is an LRU map from the abstracted source-token signature
(plus beam size) to the full **ranked candidate list** produced by beam
search.  Caching the whole ranked list — not just the best hypothesis — is
what keeps the anti-habituation behaviour alive: the generator cycles through
the surviving beam alternatives on repeated exposures, and those alternatives
survive a cache hit unchanged.

Hit/miss counters are exposed (:attr:`DecodeCache.hits`,
:attr:`DecodeCache.misses`, :meth:`DecodeCache.stats`) so benchmarks can
report cache effectiveness alongside response times.

Keys identify the *question* (act signature + beam width), not the model
answering it: entries are not invalidated by weight updates, so owners that
keep training the wrapped model must :meth:`DecodeCache.clear` afterwards.

The cache is thread-safe: every operation takes an internal ``RLock``, so a
single warm cache can be shared by the worker threads of the LANTERN-SERVE
``ThreadingHTTPServer`` (and by any other concurrent narration pipeline)
without torn LRU state or lost counter increments.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Sequence

#: default number of act signatures kept before LRU eviction
DEFAULT_CACHE_SIZE = 256

#: a cache key: the abstracted source tokens plus the beam size they were
#: decoded with (different beam sizes yield different ranked lists)
CacheKey = tuple[tuple[str, ...], int]


def make_key(source_tokens: Sequence[str], beam_size: int) -> CacheKey:
    """Build the canonical cache key for one act decode.

    ``beam_size`` must be the *effective* decode width (callers resolve
    ``None`` defaults via the model config first) — keying on an unresolved
    sentinel would alias entries decoded under different widths.
    """
    return (tuple(source_tokens), int(beam_size))


class DecodeCache:
    """An LRU cache of ranked beam-search candidate lists.

    Values are stored as tuples of token tuples (immutable), so a cached
    entry can never be corrupted by a caller mutating the returned lists;
    :meth:`get` rebuilds fresh ``list[list[str]]`` objects on every hit.
    """

    def __init__(self, max_size: int = DEFAULT_CACHE_SIZE, enabled: bool = True) -> None:
        self.max_size = max(int(max_size), 0)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[CacheKey, tuple[tuple[str, ...], ...]] = OrderedDict()
        # reentrant so owners can compose operations (e.g. stats() inside a
        # locked section) without deadlocking on their own lock
        self._lock = threading.RLock()

    # -- core operations ---------------------------------------------------

    def get(self, key: CacheKey) -> Optional[list[list[str]]]:
        """Ranked candidates for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's LRU position and increments ``hits``;
        a miss (or a disabled cache) increments ``misses``.
        """
        with self._lock:
            if not self.enabled:
                self.misses += 1
                return None
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return [list(tokens) for tokens in entry]

    def put(self, key: CacheKey, candidates: Sequence[Sequence[str]]) -> None:
        """Store the ranked candidate list, evicting the LRU entry if full."""
        with self._lock:
            if not self.enabled or self.max_size == 0:
                return
            self._entries[key] = tuple(tuple(tokens) for tokens in candidates)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)

    # -- management --------------------------------------------------------

    def clear(self, reset_counters: bool = True) -> None:
        """Drop all entries (and, by default, the hit/miss counters)."""
        with self._lock:
            self._entries.clear()
            if reset_counters:
                self.reset_counters()

    def export_entries(self) -> list[tuple[CacheKey, tuple[tuple[str, ...], ...]]]:
        """A point-in-time snapshot of the cached entries, LRU-oldest first.

        LANTERN-PERSIST serializes this into checkpoints so a restarted
        service boots with a warm cache; re-inserting the snapshot through
        :meth:`put` in order reproduces the eviction order exactly.
        """
        with self._lock:
            return list(self._entries.items())

    def reset_counters(self) -> None:
        """Zero the hit/miss counters while keeping the cached entries.

        Benchmarks call this between a priming pass and the measured pass so
        the reported hit rate reflects only the measured (warm) lookups.
        """
        with self._lock:
            self.hits = 0
            self.misses = 0

    def configure(self, max_size: Optional[int] = None, enabled: Optional[bool] = None) -> None:
        """Adjust size/enablement in place (used by ``LanternConfig`` wiring)."""
        with self._lock:
            if max_size is not None:
                self.max_size = max(int(max_size), 0)
                while len(self._entries) > self.max_size:
                    self._entries.popitem(last=False)
            if enabled is not None:
                self.enabled = bool(enabled)
                if not self.enabled:
                    self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when untouched)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """Counters for benchmark reporting (read atomically)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "max_size": self.max_size,
                "hit_rate": self.hit_rate,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecodeCache(size={len(self._entries)}/{self.max_size}, "
            f"hits={self.hits}, misses={self.misses})"
        )
