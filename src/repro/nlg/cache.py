"""Act-signature decode cache for NEURAL-LANTERN.

Acts are structural: two plans that filter-then-scan the same way produce the
*same* tag-abstracted token sequence (``Act.key``), regardless of which
relations or predicates they mention.  The US-5 frequency-threshold policy
routes exactly the *frequently repeated* operators to the neural generator, so
the decoder is asked the same question over and over — a perfect caching
workload.

:class:`DecodeCache` is an LRU map from the abstracted source-token signature
(plus beam size) to the full **ranked candidate list** produced by beam
search.  Caching the whole ranked list — not just the best hypothesis — is
what keeps the anti-habituation behaviour alive: the generator cycles through
the surviving beam alternatives on repeated exposures, and those alternatives
survive a cache hit unchanged.

Hit/miss counters are exposed (:attr:`DecodeCache.hits`,
:attr:`DecodeCache.misses`, :meth:`DecodeCache.stats`) so benchmarks can
report cache effectiveness alongside response times.

Keys identify the *question* (act signature + beam width + numeric
precision), not the model answering it: entries are not invalidated by
weight updates, so owners that keep training the wrapped model must
:meth:`DecodeCache.clear` afterwards.  The precision component
(``"<dtype>:<quantize>"``, see :attr:`QEP2Seq.precision`) keeps a float64
warm cache imported into an int8 model — or vice versa — from serving
stale cross-precision candidates.

Below the LRU tier sits an optional **compiled tier**
(:class:`CompiledCache`): an immutable, sorted-key snapshot produced by
``python -m repro.nlg.compile`` that serves pre-decoded workload
signatures by binary search with zero matmuls and zero lock contention on
writes (it is never mutated, so lookups need no lock at all).

The LRU cache is thread-safe: every operation takes an internal ``RLock``,
so a single warm cache can be shared by the worker threads of the
LANTERN-SERVE ``ThreadingHTTPServer`` (and by any other concurrent
narration pipeline) without torn LRU state or lost counter increments.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from collections import OrderedDict
from typing import Optional, Sequence

from repro.errors import NLGError

#: default number of act signatures kept before LRU eviction
DEFAULT_CACHE_SIZE = 256

#: the precision tag of the classic full-precision model — the default
#: keeps legacy (pre-quantization) callers and checkpoints working
DEFAULT_PRECISION = "float64:none"

#: a cache key: the abstracted source tokens, the beam size they were
#: decoded with (different beam sizes yield different ranked lists), and
#: the numeric precision of the decoding model ("<dtype>:<quantize>")
CacheKey = tuple[tuple[str, ...], int, str]

#: on-disk format marker of compiled cache files
COMPILED_FORMAT_NAME = "lantern-compiled-cache"
COMPILED_FORMAT_VERSION = 1


def make_key(
    source_tokens: Sequence[str], beam_size: int, precision: str = DEFAULT_PRECISION
) -> CacheKey:
    """Build the canonical cache key for one act decode.

    ``beam_size`` must be the *effective* decode width (callers resolve
    ``None`` defaults via the model config first) — keying on an unresolved
    sentinel would alias entries decoded under different widths.
    ``precision`` is the decoding model's ``"<dtype>:<quantize>"`` tag so
    reduced-precision candidates never alias full-precision ones.
    """
    return (tuple(source_tokens), int(beam_size), str(precision))


class CompiledCache:
    """An immutable pre-decoded narration cache (LANTERN-ZERO tier).

    Built offline by ``python -m repro.nlg.compile``: every tag-abstracted
    act signature of a workload is decoded once through batched beam search
    and the ranked candidate lists are frozen into a JSON file with the
    signatures *sorted*, so lookups are a binary search over tuples —
    no hashing of long token sequences, no locks (never mutated), no
    matmuls.  The file records the beam size and model precision it was
    compiled under; lookups under any other beam/precision miss, which is
    the same cross-precision guarantee the LRU tier gets from its key.
    """

    def __init__(
        self,
        entries: Sequence[tuple[Sequence[str], Sequence[Sequence[str]]]],
        beam_size: int,
        precision: str = DEFAULT_PRECISION,
    ) -> None:
        self.beam_size = int(beam_size)
        self.precision = str(precision)
        pairs = sorted(
            (tuple(tokens), tuple(tuple(c) for c in candidates))
            for tokens, candidates in entries
        )
        self._keys: list[tuple[str, ...]] = [pair[0] for pair in pairs]
        self._values: list[tuple[tuple[str, ...], ...]] = [pair[1] for pair in pairs]
        # hits return these prebuilt snapshots without copying — the tier is
        # mounted read-only, so one shared list per signature is safe and
        # keeps the per-hit cost at the binary search alone
        self._served: list[list[list[str]]] = [
            [list(candidate) for candidate in value] for value in self._values
        ]

    def lookup(self, key: CacheKey) -> Optional[list[list[str]]]:
        """Ranked candidates for ``key``, or ``None`` when the signature is
        unknown or the key's beam/precision differ from the compiled ones.

        The returned lists are a **shared snapshot** (no per-hit copies);
        callers must treat them as read-only, exactly like the mounted file.
        """
        tokens, beam_size, precision = key
        if beam_size != self.beam_size or precision != self.precision:
            return None
        index = bisect_left(self._keys, tokens)
        if index < len(self._keys) and self._keys[index] == tokens:
            return self._served[index]
        return None

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: CacheKey) -> bool:
        return self.lookup(key) is not None

    # -- serialization -----------------------------------------------------

    def to_payload(self) -> dict:
        """The JSON-serializable on-disk form (entries stay sorted)."""
        return {
            "format": COMPILED_FORMAT_NAME,
            "version": COMPILED_FORMAT_VERSION,
            "beam_size": self.beam_size,
            "precision": self.precision,
            "entries": [
                [list(tokens), [list(candidate) for candidate in candidates]]
                for tokens, candidates in zip(self._keys, self._values)
            ],
        }

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_payload(), handle, ensure_ascii=False)

    @classmethod
    def from_payload(cls, payload: dict) -> "CompiledCache":
        if not isinstance(payload, dict) or payload.get("format") != COMPILED_FORMAT_NAME:
            raise NLGError(
                f"not a compiled narration cache (expected format {COMPILED_FORMAT_NAME!r})"
            )
        if payload.get("version") != COMPILED_FORMAT_VERSION:
            raise NLGError(
                f"unsupported compiled-cache version {payload.get('version')!r}"
            )
        try:
            entries = [
                ([str(t) for t in tokens], [[str(t) for t in cand] for cand in candidates])
                for tokens, candidates in payload["entries"]
            ]
            return cls(
                entries,
                beam_size=int(payload["beam_size"]),
                precision=str(payload.get("precision", DEFAULT_PRECISION)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise NLGError(f"malformed compiled-cache payload: {error}") from error

    @classmethod
    def load(cls, path) -> "CompiledCache":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls.from_payload(payload)


class DecodeCache:
    """An LRU cache of ranked beam-search candidate lists.

    Values are stored as tuples of token tuples (immutable), so a cached
    entry can never be corrupted by a caller mutating the returned lists;
    :meth:`get` rebuilds fresh ``list[list[str]]`` objects on every LRU hit.
    Compiled-tier hits return the tier's shared read-only snapshots instead
    (see :meth:`CompiledCache.lookup`).

    A :class:`CompiledCache` can be mounted read-only *under* the LRU tier
    (:meth:`mount_compiled`): lookups fall through LRU → compiled, compiled
    hits count as hits (tracked separately in ``compiled_hits``) and are
    *not* promoted into the LRU — the compiled tier is already O(log n)
    and promotion would just evict genuinely dynamic entries.
    """

    def __init__(self, max_size: int = DEFAULT_CACHE_SIZE, enabled: bool = True) -> None:
        self.max_size = max(int(max_size), 0)
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.compiled_hits = 0
        self._compiled: Optional[CompiledCache] = None
        self._entries: OrderedDict[CacheKey, tuple[tuple[str, ...], ...]] = OrderedDict()
        # reentrant so owners can compose operations (e.g. stats() inside a
        # locked section) without deadlocking on their own lock
        self._lock = threading.RLock()

    # -- core operations ---------------------------------------------------

    def get(self, key: CacheKey) -> Optional[list[list[str]]]:
        """Ranked candidates for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's LRU position and increments ``hits``;
        a miss (or a disabled cache) increments ``misses``.  When a compiled
        tier is mounted, LRU misses fall through to it; compiled hits count
        as hits (and ``compiled_hits``) without LRU promotion.
        """
        with self._lock:
            if not self.enabled:
                self.misses += 1
                return None
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return [list(tokens) for tokens in entry]
            compiled = self._compiled
            if compiled is not None:
                candidates = compiled.lookup(key)
                if candidates is not None:
                    self.hits += 1
                    self.compiled_hits += 1
                    return candidates
            self.misses += 1
            return None

    def put(self, key: CacheKey, candidates: Sequence[Sequence[str]]) -> None:
        """Store the ranked candidate list, evicting the LRU entry if full."""
        with self._lock:
            if not self.enabled or self.max_size == 0:
                return
            self._entries[key] = tuple(tuple(tokens) for tokens in candidates)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)

    # -- compiled tier -----------------------------------------------------

    def mount_compiled(self, compiled: CompiledCache) -> None:
        """Mount an immutable pre-decoded tier under the LRU."""
        with self._lock:
            self._compiled = compiled

    def unmount_compiled(self) -> None:
        with self._lock:
            self._compiled = None

    @property
    def compiled(self) -> Optional[CompiledCache]:
        return self._compiled

    # -- management --------------------------------------------------------

    def clear(self, reset_counters: bool = True) -> None:
        """Drop all LRU entries (and, by default, the hit/miss counters).

        A mounted compiled tier survives — it holds offline-verified
        decodes that no runtime event (like continued training of a
        *different* model) can invalidate without also swapping the file.
        """
        with self._lock:
            self._entries.clear()
            if reset_counters:
                self.reset_counters()

    def export_entries(self) -> list[tuple[CacheKey, tuple[tuple[str, ...], ...]]]:
        """A point-in-time snapshot of the cached entries, LRU-oldest first.

        LANTERN-PERSIST serializes this into checkpoints so a restarted
        service boots with a warm cache; re-inserting the snapshot through
        :meth:`put` in order reproduces the eviction order exactly.
        """
        with self._lock:
            return list(self._entries.items())

    def reset_counters(self) -> None:
        """Zero the hit/miss counters while keeping the cached entries.

        Benchmarks call this between a priming pass and the measured pass so
        the reported hit rate reflects only the measured (warm) lookups.
        """
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.compiled_hits = 0

    def configure(self, max_size: Optional[int] = None, enabled: Optional[bool] = None) -> None:
        """Adjust size/enablement in place (used by ``LanternConfig`` wiring)."""
        with self._lock:
            if max_size is not None:
                self.max_size = max(int(max_size), 0)
                while len(self._entries) > self.max_size:
                    self._entries.popitem(last=False)
            if enabled is not None:
                self.enabled = bool(enabled)
                if not self.enabled:
                    self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when untouched)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """Counters for benchmark reporting (read atomically)."""
        with self._lock:
            document: dict[str, float] = {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "max_size": self.max_size,
                "hit_rate": self.hit_rate,
            }
            if self._compiled is not None:
                document["compiled_hits"] = self.compiled_hits
                document["compiled_size"] = len(self._compiled)
            return document

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecodeCache(size={len(self._entries)}/{self.max_size}, "
            f"hits={self.hits}, misses={self.misses})"
        )
