"""QEP2Seq: the act-to-sentence encoder/decoder with additive attention (paper §6.4).

The encoder LSTM reads the serialized act (operator tokens plus structural
tags); the decoder LSTM — whose word embeddings may be initialized from
pre-trained vectors — generates the description token by token, attending
over the encoder states.  Training uses teacher forcing and plain SGD;
inference uses beam search.

Beam search is *batched* on two axes.  Within one act, all K live beams
advance through a single (K, H) decoder step, one attention call, and one
output-projection matmul per timestep (:meth:`QEP2Seq.beam_decode_candidates`).
Across a plan, :meth:`QEP2Seq.beam_decode_batch` pads every act of the plan
into one encoder forward and decodes all acts' beams as one fused tensor,
which is what makes NEURAL-LANTERN response times interactive (Table 6).
Both paths are guaranteed to emit token-for-token the same output as the
unbatched reference decoder (kept as
:meth:`QEP2Seq.beam_decode_candidates_sequential`); finished beams are simply
dropped from the fused batch instead of being masked-and-recomputed.

Training is vectorized the same way (the TRAIN-TURBO path, the default):

* the input-side gate matmuls of both LSTMs are hoisted out of the
  recurrences (:meth:`~repro.nlg.nn.lstm.LSTM.forward_fused`);
* because teacher forcing never feeds the context vector back into the
  decoder recurrence (it only enters the output concat), the decoder LSTM
  runs *before* attention, and attention for all decoder timesteps runs as
  one fused call (:meth:`~repro.nlg.nn.attention.AdditiveAttention.forward_fused`)
  — which also hoists the encoder projection the reference path recomputed
  at every decoder step;
* the backward pass mirrors both fusions
  (:meth:`~repro.nlg.nn.lstm.LSTM.backward_fused` /
  :meth:`~repro.nlg.nn.attention.AdditiveAttention.backward_fused`).

The step-wise reference path is kept (``Seq2SeqConfig(turbo=False)``) and
the parity contract is enforced by ``tests/test_nlg_train_turbo.py``: with
``float64`` every per-batch loss/accuracy and all parameter gradients match
the reference to ``allclose(rtol=1e-9)``, and identical-seed training runs
narrate token-identically.  ``Seq2SeqConfig.dtype`` selects ``float64``
(default, exact parity) or ``float32`` (~2× memory/bandwidth savings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import itemgetter
from typing import Optional

import numpy as np

from repro.errors import ModelConfigError
from repro.nlg.nn.attention import AdditiveAttention
from repro.nlg.nn.layers import Dense, Embedding, Parameter
from repro.nlg.nn.losses import cross_entropy_from_logits
from repro.nlg.nn.lstm import LSTM
from repro.nlg.nn.optimizers import SGD, Adam
from repro.nlg.nn.quant import infer_replica, validate_quantize_mode
from repro.nlg.vocab import Vocabulary


@dataclass
class Seq2SeqConfig:
    """Hyper-parameters of the QEP2Seq model.

    Defaults follow §6.4.2: 256 LSTM cells, encoder embeddings of 16, decoder
    embeddings of 32 when no pre-trained vectors are supplied, SGD with
    learning rate 0.001 and minibatches of 4.
    """

    hidden_dim: int = 256
    encoder_embedding_dim: int = 16
    decoder_embedding_dim: int = 32
    attention_dim: int = 64
    learning_rate: float = 0.001
    batch_size: int = 4
    #: "sgd" reproduces the paper's training setup; "adam" converges much
    #: faster and is the default for the test suite and benchmarks.
    optimizer: str = "adam"
    share_weights: bool = False
    seed: int = 13
    max_decode_length: int = 60
    beam_size: int = 4
    embedding_name: str = "random"
    #: True (default) runs the fused TRAIN-TURBO forward/backward; False the
    #: kept step-wise reference path.  Parity between the two is asserted to
    #: allclose(rtol=1e-9) on loss and every parameter gradient.
    turbo: bool = True
    #: "float64" (default) for exact reference parity; "float32" halves
    #: parameter/activation memory and bandwidth.  Recorded in checkpoint
    #: manifests so a saved float32 model round-trips as float32.
    dtype: str = "float64"
    #: "none" (default), "int8" (per-row absmax weight quantization) or
    #: "float16" — the LANTERN-ZERO reduced-precision *inference* mode.
    #: Training weights keep ``dtype``; decode computes through float32
    #: replicas rounded on the selected grid.  Recorded in checkpoint
    #: manifests so a quantized model round-trips quantized.
    quantize: str = "none"


@dataclass
class Batch:
    """One padded training batch."""

    encoder_ids: np.ndarray
    encoder_mask: np.ndarray
    decoder_inputs: np.ndarray
    decoder_targets: np.ndarray
    decoder_mask: np.ndarray


@dataclass
class _ForwardCache:
    encoder_embedded: np.ndarray
    encoder_outputs: np.ndarray
    encoder_caches: list = field(default_factory=list)
    decoder_caches: list = field(default_factory=list)
    attention_caches: list = field(default_factory=list)
    concatenated: Optional[np.ndarray] = None
    logits: Optional[np.ndarray] = None


@dataclass
class _TurboForwardCache:
    """Forward values of the fused path: three SoA caches instead of three
    per-timestep object lists."""

    encoder_cache: object  # LSTMSequenceCache
    decoder_cache: object  # LSTMSequenceCache
    attention_cache: object  # AttentionSequenceCache
    concatenated: np.ndarray
    logits: np.ndarray


class QEP2Seq:
    """The sequence-to-sequence translation model for acts."""

    def __init__(
        self,
        input_vocabulary: Vocabulary,
        output_vocabulary: Vocabulary,
        config: Optional[Seq2SeqConfig] = None,
        decoder_pretrained: Optional[np.ndarray] = None,
        *,
        init_rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.config = config if config is not None else Seq2SeqConfig()
        self.input_vocabulary = input_vocabulary
        self.output_vocabulary = output_vocabulary
        if self.config.dtype not in ("float64", "float32"):
            raise ModelConfigError(
                f"unsupported dtype {self.config.dtype!r}; expected 'float64' or 'float32'"
            )
        validate_quantize_mode(self.config.quantize)
        self.dtype = np.dtype(self.config.dtype)
        # init_rng is the checkpoint loader's fast-boot hook: every parameter
        # is overwritten (or mmap-adopted) right after construction, so the
        # loader substitutes a generator whose draws are uninitialized
        # np.empty buffers instead of paying for real random numbers
        rng = init_rng if init_rng is not None else np.random.default_rng(self.config.seed)

        decoder_dim = self.config.decoder_embedding_dim
        if decoder_pretrained is not None:
            decoder_dim = decoder_pretrained.shape[1]
            if decoder_pretrained.shape[0] != len(output_vocabulary):
                raise ModelConfigError(
                    "pretrained decoder embeddings do not cover the output vocabulary"
                )
        encoder_dim = self.config.encoder_embedding_dim
        if self.config.share_weights:
            # sharing the recurrent weights requires identical input widths
            encoder_dim = decoder_dim

        self.encoder_embedding = Embedding(
            len(input_vocabulary), encoder_dim, rng, name="encoder_embedding", dtype=self.dtype
        )
        self.decoder_embedding = Embedding(
            len(output_vocabulary),
            decoder_dim,
            rng,
            pretrained=decoder_pretrained,
            name="decoder_embedding",
            dtype=self.dtype,
        )
        self.encoder = LSTM(encoder_dim, self.config.hidden_dim, rng, name="encoder", dtype=self.dtype)
        if self.config.share_weights:
            self.decoder = self.encoder
        else:
            self.decoder = LSTM(decoder_dim, self.config.hidden_dim, rng, name="decoder", dtype=self.dtype)
        self.attention = AdditiveAttention(
            self.config.hidden_dim, self.config.hidden_dim, self.config.attention_dim, rng,
            dtype=self.dtype,
        )
        self.output_layer = Dense(
            2 * self.config.hidden_dim, len(output_vocabulary), rng, name="output", dtype=self.dtype
        )
        # the optimizer is built lazily on first access (see the property
        # below): pure inference processes — the mmap warm-boot path in
        # particular — never pay for Adam's moment buffers (3x the weight
        # bytes) or the flat-space parameter copy
        self._optimizer: SGD | Adam | None = None
        if self.config.quantize != "none":
            self.quantize(self.config.quantize)

    @property
    def optimizer(self) -> SGD | Adam:
        if self._optimizer is None:
            self._optimizer = self._build_optimizer()
        return self._optimizer

    @optimizer.setter
    def optimizer(self, value: SGD | Adam) -> None:
        self._optimizer = value

    def _build_optimizer(self) -> SGD | Adam:
        # copy-on-train: mmap-adopted (read-only) weights become private
        # writable arrays the moment training state is requested
        for parameter in self.parameters():
            parameter.materialize()
        if self.config.optimizer == "adam":
            return Adam(self.parameters(), learning_rate=max(self.config.learning_rate, 0.002))
        return SGD(self.parameters(), learning_rate=self.config.learning_rate)

    # ------------------------------------------------------------------
    # quantized inference (LANTERN-ZERO)
    # ------------------------------------------------------------------

    def quantize(self, mode: str) -> None:
        """Attach reduced-precision inference replicas for ``mode``.

        Idempotent and reversible (:meth:`dequantize`); training weights are
        untouched, so de/re-quantization is lossless.  Replicas are built
        deterministically from the current weights, which is also how a
        checkpoint whose manifest records a quantize mode restores them.
        """
        validate_quantize_mode(mode)
        if mode == "none":
            self.dequantize()
            return
        for parameter in self.parameters():
            parameter.set_infer(infer_replica(parameter.value, mode))
        self.config.quantize = mode

    def dequantize(self) -> None:
        """Drop inference replicas; decode returns to full-precision weights."""
        for parameter in self.parameters():
            parameter.clear_infer()
        self.config.quantize = "none"

    @property
    def precision(self) -> str:
        """``"<dtype>:<quantize>"`` — the decode-cache key component that
        keeps entries from crossing precision boundaries."""
        return f"{self.config.dtype}:{self.config.quantize}"

    def weights_memory_info(self) -> dict:
        """Parameter count, resident weight bytes, and whether every
        parameter is an mmap-shared view (the /metrics payload)."""
        parameters = self.parameters()
        return {
            "parameter_count": int(sum(p.size for p in parameters)),
            "bytes": int(sum(p.value.nbytes for p in parameters)),
            "mmap_backed": bool(parameters) and all(p.mmap_backed for p in parameters),
        }

    # ------------------------------------------------------------------
    # parameters and statistics
    # ------------------------------------------------------------------

    def parameters(self) -> list[Parameter]:
        parameters: list[Parameter] = []
        parameters.extend(self.encoder_embedding.parameters())
        parameters.extend(self.decoder_embedding.parameters())
        parameters.extend(self.encoder.parameters())
        if self.decoder is not self.encoder:
            parameters.extend(self.decoder.parameters())
        parameters.extend(self.attention.parameters())
        parameters.extend(self.output_layer.parameters())
        return parameters

    def parameter_count(self) -> int:
        """Total number of trainable parameters."""
        return sum(parameter.size for parameter in self.parameters())

    def recurrent_connection_counts(self) -> tuple[int, int]:
        """(encoder, decoder) recurrent connection counts — the Table 3 quantity."""
        encoder_count = self.encoder.recurrent_connection_count
        decoder_count = self.decoder.recurrent_connection_count
        return encoder_count, decoder_count

    # ------------------------------------------------------------------
    # batching
    # ------------------------------------------------------------------

    def encode_pair(self, source_tokens: list[str], target_tokens: list[str]) -> tuple[list[int], list[int]]:
        """Vocabulary-encode one (source, target) pair for :meth:`make_batch_encoded`.

        The Trainer encodes every sample once up front and reuses the id
        rows across epochs, instead of redoing the vocabulary lookups for
        every chunk of every epoch.
        """
        return (
            self.input_vocabulary.encode(source_tokens),
            self.output_vocabulary.encode(target_tokens, add_end=True),
        )

    def make_batch(self, sources: list[list[str]], targets: list[list[str]]) -> Batch:
        """Pad and encode token sequences into one training batch."""
        return self.make_batch_encoded(
            [self.encode_pair(source, target) for source, target in zip(sources, targets)]
        )

    def make_batch_encoded(self, pairs: list[tuple[list[int], list[int]]]) -> Batch:
        """Pad pre-encoded (encoder ids, target ids) pairs into one batch."""
        encoder_ids = [pair[0] for pair in pairs]
        target_ids = [pair[1] for pair in pairs]
        input_ids = [
            [self.output_vocabulary.bos_id] + ids[:-1] for ids in target_ids
        ]
        encoder_matrix, encoder_mask = _pad_and_mask(
            encoder_ids, self.input_vocabulary.pad_id, dtype=self.dtype
        )
        decoder_targets, decoder_mask = _pad_and_mask(
            target_ids, self.output_vocabulary.pad_id, dtype=self.dtype
        )
        # input rows mirror target rows one-for-one in length, so they pad to
        # the same width and share the targets' mask
        decoder_inputs, _ = _pad_and_mask(input_ids, self.output_vocabulary.pad_id, dtype=self.dtype)
        return Batch(encoder_matrix, encoder_mask, decoder_inputs, decoder_targets, decoder_mask)

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------

    def _forward(self, batch: Batch):
        """Teacher-forced forward: turbo (fused) by default, else reference."""
        if self.config.turbo:
            return self._forward_turbo(batch)
        return self._forward_reference(batch)

    def _backward(self, batch: Batch, cache, grad_logits: np.ndarray) -> None:
        if isinstance(cache, _TurboForwardCache):
            self._backward_turbo(batch, cache, grad_logits)
        else:
            self._backward_reference(batch, cache, grad_logits)

    def _forward_turbo(self, batch: Batch) -> _TurboForwardCache:
        """The fused teacher-forced forward pass (TRAIN-TURBO).

        The decoder recurrence never consumes the attention context under
        teacher forcing, so the whole decoder LSTM runs first (with its
        input-side gate matmul hoisted, like the encoder's), then attention
        for *all* decoder timesteps runs as one fused call.  Produces the
        same concatenated states and logits as :meth:`_forward_reference`
        to allclose(rtol=1e-9).
        """
        encoder_embedded = self.encoder_embedding.forward(batch.encoder_ids)
        encoder_outputs, final_h, final_c, encoder_cache = self.encoder.forward_fused(
            encoder_embedded, mask=batch.encoder_mask
        )
        decoder_embedded = self.decoder_embedding.forward(batch.decoder_inputs)
        decoder_outputs, _, _, decoder_cache = self.decoder.forward_fused(
            decoder_embedded, h0=final_h, c0=final_c
        )
        contexts, _, attention_cache = self.attention.forward_fused(
            decoder_outputs, encoder_outputs, mask=batch.encoder_mask
        )
        concatenated = np.concatenate([decoder_outputs, contexts], axis=2)
        return _TurboForwardCache(
            encoder_cache=encoder_cache,
            decoder_cache=decoder_cache,
            attention_cache=attention_cache,
            concatenated=concatenated,
            logits=self.output_layer.forward(concatenated),
        )

    def _backward_turbo(
        self, batch: Batch, cache: _TurboForwardCache, grad_logits: np.ndarray
    ) -> None:
        """Backward for the fused path: three sequence-level backward calls
        (output layer → fused attention → fused decoder → fused encoder)
        instead of two per-timestep loops."""
        hidden = self.config.hidden_dim
        grad_concat = self.output_layer.backward(cache.concatenated, grad_logits)
        grad_contexts = grad_concat[:, :, hidden:]
        grad_h_attention, grad_encoder_outputs = self.attention.backward_fused(
            cache.attention_cache, grad_contexts
        )
        grad_decoder_inputs, grad_h0, grad_c0 = self.decoder.backward_fused(
            cache.decoder_cache, grad_concat[:, :, :hidden] + grad_h_attention
        )
        self.decoder_embedding.backward(batch.decoder_inputs, grad_decoder_inputs)
        grad_encoder_inputs, _, _ = self.encoder.backward_fused(
            cache.encoder_cache,
            grad_encoder_outputs,
            grad_h_final=grad_h0,
            grad_c_final=grad_c0,
        )
        self.encoder_embedding.backward(batch.encoder_ids, grad_encoder_inputs)

    def _forward_reference(self, batch: Batch) -> _ForwardCache:
        """The kept step-wise forward pass (one decoder step + one attention
        call per timestep) — the parity ground truth for the turbo path."""
        cache = _ForwardCache(
            encoder_embedded=self.encoder_embedding.forward(batch.encoder_ids),
            encoder_outputs=np.empty(0),
        )
        encoder_outputs, final_h, final_c, encoder_caches = self.encoder.forward(
            cache.encoder_embedded, mask=batch.encoder_mask
        )
        cache.encoder_outputs = encoder_outputs
        cache.encoder_caches = encoder_caches

        batch_size, target_length = batch.decoder_inputs.shape
        hidden = self.config.hidden_dim
        concatenated = np.zeros((batch_size, target_length, 2 * hidden), dtype=self.dtype)
        h, c = final_h, final_c
        decoder_embedded = self.decoder_embedding.forward(batch.decoder_inputs)
        for t in range(target_length):
            h, c, step_cache = self.decoder.step(decoder_embedded[:, t, :], h, c)
            context, _, attention_cache = self.attention.forward(
                h, encoder_outputs, mask=batch.encoder_mask
            )
            concatenated[:, t, :hidden] = h
            concatenated[:, t, hidden:] = context
            cache.decoder_caches.append(step_cache)
            cache.attention_caches.append(attention_cache)
        cache.concatenated = concatenated
        cache.logits = self.output_layer.forward(concatenated)
        return cache

    def evaluate_batch(self, batch: Batch) -> tuple[float, float]:
        """Loss and sparse-categorical accuracy on one batch (no gradient update)."""
        cache = self._forward(batch)
        loss, _ = cross_entropy_from_logits(cache.logits, batch.decoder_targets, batch.decoder_mask)
        accuracy = _masked_accuracy(cache.logits, batch.decoder_targets, batch.decoder_mask)
        return loss, accuracy

    def train_batch(self, batch: Batch) -> tuple[float, float]:
        """One teacher-forced SGD update; returns (loss, accuracy)."""
        if self.config.quantize != "none":
            raise ModelConfigError(
                "cannot train while quantized inference replicas are attached; "
                "call dequantize() first"
            )
        cache = self._forward(batch)
        loss, grad_logits = cross_entropy_from_logits(
            cache.logits, batch.decoder_targets, batch.decoder_mask
        )
        accuracy = _masked_accuracy(cache.logits, batch.decoder_targets, batch.decoder_mask)
        self.optimizer.zero_grad()
        self._backward(batch, cache, grad_logits)
        self.optimizer.step()
        return loss, accuracy

    def _backward_reference(
        self, batch: Batch, cache: _ForwardCache, grad_logits: np.ndarray
    ) -> None:
        hidden = self.config.hidden_dim
        batch_size, target_length = batch.decoder_inputs.shape
        grad_concat = self.output_layer.backward(cache.concatenated, grad_logits)
        grad_encoder_outputs = np.zeros_like(cache.encoder_outputs)
        grad_h_carry = np.zeros((batch_size, hidden), dtype=self.dtype)
        grad_c_carry = np.zeros((batch_size, hidden), dtype=self.dtype)
        decoder_input_grads = np.zeros(
            (batch_size, target_length, self.decoder_embedding.dimension), dtype=self.dtype
        )
        for t in reversed(range(target_length)):
            grad_h_step = grad_concat[:, t, :hidden]
            grad_context = grad_concat[:, t, hidden:]
            grad_h_attention, grad_encoder_step = self.attention.backward(
                cache.attention_caches[t], grad_context
            )
            grad_encoder_outputs += grad_encoder_step
            grad_h_total = grad_h_step + grad_h_attention + grad_h_carry
            grad_x, grad_h_carry, grad_c_carry = self.decoder.backward_step(
                cache.decoder_caches[t], grad_h_total, grad_c_carry
            )
            decoder_input_grads[:, t, :] = grad_x
        self.decoder_embedding.backward(batch.decoder_inputs, decoder_input_grads)
        grad_encoder_inputs, _, _ = self.encoder.backward(
            cache.encoder_caches,
            grad_encoder_outputs,
            grad_h_final=grad_h_carry,
            grad_c_final=grad_c_carry,
        )
        self.encoder_embedding.backward(batch.encoder_ids, grad_encoder_inputs)

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------

    @property
    def _infer_dtype(self) -> np.dtype:
        """The dtype inference activations compute in — the model dtype
        normally, float32 when quantized replicas are attached."""
        return self.encoder.weight_x.infer_value.dtype

    def _encode_ids(self, source_tokens: list[str]) -> list[int]:
        """Vocabulary-encode one act signature for inference.

        An empty act (which degenerate plan steps can legitimately yield)
        encodes to a single ``<UNK>`` so the encoder always sees at least
        one timestep instead of a zero-width sequence; whitespace-only
        tokens already fall back to ``<UNK>`` inside the vocabulary.
        """
        ids = self.input_vocabulary.encode(source_tokens)
        return ids or [self.input_vocabulary.unk_id]

    def _encode_single(self, source_tokens: list[str]):
        ids = np.array([self._encode_ids(source_tokens)], dtype=np.int64)
        mask = np.ones((1, ids.shape[1]), dtype=self._infer_dtype)
        embedded = self.encoder_embedding.lookup(ids)
        outputs, final_h, final_c = self.encoder.forward_infer(embedded, mask=mask)
        return outputs, mask, final_h, final_c

    def _encode_batch(self, sources: list[list[str]]):
        """Pad and encode many acts in one encoder forward.

        Returns (encoder outputs (N, T, H), precomputed attention projection
        (N, T, A), mask (N, T), final h (N, H), final c (N, H)).  Post-padding
        plus the LSTM step mask means the final states are identical to those
        of each act encoded alone.
        """
        ids_list = [self._encode_ids(tokens) for tokens in sources]
        ids, mask = _pad_and_mask(ids_list, self.input_vocabulary.pad_id, dtype=self._infer_dtype)
        embedded = self.encoder_embedding.lookup(ids)
        outputs, final_h, final_c = self.encoder.forward_infer(embedded, mask=mask)
        return outputs, self.attention.project_encoder_infer(outputs), mask, final_h, final_c

    def greedy_decode(self, source_tokens: list[str]) -> list[str]:
        """Greedy (beam size 1) decoding, mostly used in tests."""
        return self.beam_decode(source_tokens, beam_size=1)

    def beam_decode(self, source_tokens: list[str], beam_size: Optional[int] = None) -> list[str]:
        """Beam-search decoding of one act into its description tokens."""
        return self.beam_decode_candidates(source_tokens, beam_size=beam_size)[0]

    def beam_decode_candidates(
        self, source_tokens: list[str], beam_size: Optional[int] = None
    ) -> list[list[str]]:
        """All surviving beam hypotheses, best first.

        NEURAL-LANTERN cycles through these alternatives when the same act
        recurs, which is how wording variability reaches the learner.  All K
        live beams advance through one fused decoder/attention/projection
        step per timestep (see :meth:`beam_decode_batch`).
        """
        return self.beam_decode_batch([source_tokens], beam_size=beam_size)[0]

    def beam_decode_batch(
        self, sources: list[list[str]], beam_size: Optional[int] = None
    ) -> list[list[list[str]]]:
        """Decode many acts at once; returns one ranked candidate list per act.

        All acts are padded and encoded in a single encoder forward, then
        every live beam of every act advances as one row of a fused (M, H)
        decoder step — M shrinks as beams finish and acts complete.  Output
        is token-for-token identical to calling
        :meth:`beam_decode_candidates_sequential` per act.
        """
        if not sources:
            return []
        beam_size = beam_size or self.config.beam_size
        encoder_outputs, projected_encoder, mask, h0, c0 = self._encode_batch(sources)
        end_id = self.output_vocabulary.end_id
        bos_id = self.output_vocabulary.bos_id
        count = len(sources)
        # per act: (normalized score, score, token ids, h row, c row,
        # finished).  The leading element carries score / max(len - 1, 1)
        # precomputed, so beam ranking sorts on a C-level itemgetter rather
        # than re-deriving the key through a Python lambda for every
        # candidate on every timestep; the value is the exact float the
        # sequential reference decoder's sort key computes, so ordering
        # (ties included — both sorts are stable) is unchanged
        beams_per_act: list[list[tuple[float, float, list[int], np.ndarray, np.ndarray, bool]]] = [
            [(0.0, 0.0, [bos_id], h0[n], c0[n], False)] for n in range(count)
        ]
        by_normalized_score = itemgetter(0)
        # encoder-side gathers are reused while the set of live rows is
        # stable (it only changes when beams fork or finish), so the fancy
        # indexing below is not repeated on every timestep
        gathered_key: Optional[tuple[int, ...]] = None
        gathered_outputs = gathered_projected = gathered_mask = None
        for _ in range(self.config.max_decode_length):
            rows = [
                (n, b)
                for n in range(count)
                for b, beam in enumerate(beams_per_act[n])
                if not beam[5]
            ]
            if not rows:
                break
            last_ids = np.array(
                [beams_per_act[n][b][2][-1] for n, b in rows], dtype=np.int64
            )
            h_prev = np.stack([beams_per_act[n][b][3] for n, b in rows])
            c_prev = np.stack([beams_per_act[n][b][4] for n, b in rows])
            act_ids = tuple(n for n, _ in rows)
            if act_ids != gathered_key:
                indices = np.array(act_ids)
                gathered_outputs = encoder_outputs[indices]
                gathered_projected = projected_encoder[indices]
                gathered_mask = mask[indices]
                gathered_key = act_ids
            embedded = self.decoder_embedding.lookup(last_ids)
            new_h, new_c = self.decoder.step_infer(embedded, h_prev, c_prev)
            context = self.attention.step_context(
                new_h,
                gathered_outputs,
                gathered_projected,
                mask=gathered_mask,
            )
            # sentry: off[hot-path] — one fused [h|context] concat per decode step, amortized over all live beams
            logits = self.output_layer.forward_infer(np.concatenate([new_h, context], axis=1))
            maxima = logits.max(axis=1, keepdims=True)
            log_probabilities = logits - (
                maxima + np.log(np.exp(logits - maxima).sum(axis=1, keepdims=True))
            )
            # top-k for ALL live rows in one vectorized call (row-for-row the
            # same argpartition/argsort selection as _top_k_ascending), then
            # one bulk tolist() — the per-row numpy calls and scalar float()
            # extractions this replaces dominated decode time for small models
            top_ids, top_scores = _top_k_ascending_rows(log_probabilities, beam_size)
            row_index = {pair: m for m, pair in enumerate(rows)}
            for n in sorted({n for n, _ in rows}):
                candidates: list[
                    tuple[float, float, list[int], np.ndarray, np.ndarray, bool]
                ] = []
                for b, beam in enumerate(beams_per_act[n]):
                    _, score, tokens, beam_h, beam_c, finished = beam
                    if finished:
                        candidates.append(beam)
                        continue
                    m = row_index[(n, b)]
                    for token_id, token_score in zip(top_ids[m], top_scores[m]):
                        new_score = score + token_score
                        new_tokens = tokens + [token_id]
                        candidates.append(
                            (
                                new_score / max(len(new_tokens) - 1, 1),
                                new_score,
                                new_tokens,
                                new_h[m],
                                new_c[m],
                                token_id == end_id,
                            )
                        )
                candidates.sort(key=by_normalized_score, reverse=True)
                beams_per_act[n] = candidates[:beam_size]
        results: list[list[list[str]]] = []
        for beams in beams_per_act:
            ranked = sorted(beams, key=by_normalized_score, reverse=True)
            decoded = [self.output_vocabulary.decode(tokens) for _, _, tokens, _, _, _ in ranked]
            results.append([tokens for tokens in decoded if tokens] or [decoded[0] if decoded else []])
        return results

    def beam_decode_candidates_sequential(
        self, source_tokens: list[str], beam_size: Optional[int] = None
    ) -> list[list[str]]:
        """The unbatched reference decoder (one batch-1 step per beam per t).

        Kept as the ground truth for the batching parity tests and for
        benchmark comparisons; produces exactly the same ranked candidates as
        :meth:`beam_decode_candidates`.
        """
        beam_size = beam_size or self.config.beam_size
        encoder_outputs, mask, h, c = self._encode_single(source_tokens)
        projected_encoder = self.attention.project_encoder_infer(encoder_outputs)
        end_id = self.output_vocabulary.end_id
        beams: list[tuple[float, list[int], np.ndarray, np.ndarray, bool]] = [
            (0.0, [self.output_vocabulary.bos_id], h, c, False)
        ]
        for _ in range(self.config.max_decode_length):
            candidates: list[tuple[float, list[int], np.ndarray, np.ndarray, bool]] = []
            for score, tokens, beam_h, beam_c, finished in beams:
                if finished:
                    candidates.append((score, tokens, beam_h, beam_c, True))
                    continue
                embedded = self.decoder_embedding.lookup(np.array([tokens[-1]]))
                new_h, new_c = self.decoder.step_infer(embedded, beam_h, beam_c)
                context = self.attention.step_context(
                    new_h, encoder_outputs, projected_encoder, mask=mask
                )
                logits = self.output_layer.forward_infer(np.concatenate([new_h, context], axis=1))[0]
                log_probabilities = logits - _log_sum_exp(logits)
                top = np.argsort(log_probabilities)[-beam_size:]
                for token_id in top:
                    candidates.append(
                        (
                            score + float(log_probabilities[token_id]),
                            tokens + [int(token_id)],
                            new_h,
                            new_c,
                            int(token_id) == end_id,
                        )
                    )
            candidates.sort(key=lambda item: item[0] / max(len(item[1]) - 1, 1), reverse=True)
            beams = candidates[:beam_size]
            if all(finished for _, _, _, _, finished in beams):
                break
        ranked = sorted(beams, key=lambda item: item[0] / max(len(item[1]) - 1, 1), reverse=True)
        decoded = [self.output_vocabulary.decode(tokens) for _, tokens, _, _, _ in ranked]
        return [tokens for tokens in decoded if tokens] or [decoded[0] if decoded else []]


def _pad_and_mask(
    rows: list[list[int]], pad_id: int, dtype: np.dtype | type = np.float64
) -> tuple[np.ndarray, np.ndarray]:
    """Pad id rows to the longest row; returns (ids (B, T), mask (B, T)).

    The single padding/mask implementation shared by training batches
    (:meth:`QEP2Seq.make_batch`) and batched inference encoding
    (:meth:`QEP2Seq._encode_batch`), so the two can never drift apart.
    The mask is created in the model's dtype so float32 models never
    upcast through mask arithmetic.
    """
    length = max(len(row) for row in rows)
    ids = np.full((len(rows), length), pad_id, dtype=np.int64)
    mask = np.zeros((len(rows), length), dtype=dtype)
    for index, row in enumerate(rows):
        ids[index, : len(row)] = row
        mask[index, : len(row)] = 1.0
    return ids, mask


def _masked_accuracy(logits: np.ndarray, targets: np.ndarray, mask: np.ndarray) -> float:
    """sparse_categorical_accuracy over unmasked positions."""
    predictions = logits.argmax(axis=-1)
    correct = (predictions == targets).astype(np.float64) * mask
    total = max(mask.sum(), 1.0)
    return float(correct.sum() / total)


def _log_sum_exp(x: np.ndarray) -> float:
    maximum = float(np.max(x))
    return maximum + float(np.log(np.sum(np.exp(x - maximum))))


def _top_k_ascending(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the k largest values, in ascending value order.

    Equivalent to ``np.argsort(values)[-k:]`` but O(V) via ``argpartition``
    plus an O(k log k) sort of the selected slice — the beam-search top-k
    only ever needs the k winners ordered, never the full vocabulary.
    """
    if k >= values.size:
        return np.argsort(values)
    top = np.argpartition(values, -k)[-k:]
    return top[np.argsort(values[top])]


def _top_k_ascending_rows(
    values: np.ndarray, k: int
) -> tuple[list[list[int]], list[list[float]]]:
    """Per-row top-k of a (M, V) matrix, each row ascending by value.

    Row for row identical to :func:`_top_k_ascending` (argpartition and
    argsort operate on each row independently, so selection and tie
    behaviour match the per-row calls exactly), but all M rows go through
    one vectorized call, and indices/values come back as plain Python
    lists in one bulk conversion — the batched beam search consumes them
    element-wise in Python anyway.
    """
    if k >= values.shape[1]:
        top = np.argsort(values, axis=1)
    else:
        part = np.argpartition(values, -k, axis=1)[:, -k:]
        order = np.argsort(np.take_along_axis(values, part, axis=1), axis=1)
        top = np.take_along_axis(part, order, axis=1)
    return top.tolist(), np.take_along_axis(values, top, axis=1).tolist()
