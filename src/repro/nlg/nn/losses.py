"""Losses: masked sequence cross entropy (Equation 12).

The loss is computed from the log-softmax directly (one shift, one
log-sum-exp) instead of the former ``softmax`` → ``clip`` → ``log`` chain,
and the gradient reuses the probabilities buffer in place instead of copying
it — this is the hottest allocation in training (two ``(B·T, V)``
temporaries per batch on the old path, none beyond the probabilities
themselves now).
"""

from __future__ import annotations

import numpy as np


def cross_entropy_from_logits(
    logits: np.ndarray, targets: np.ndarray, mask: np.ndarray | None = None
) -> tuple[float, np.ndarray]:
    """Mean token-level cross entropy and its gradient w.r.t. the logits.

    ``logits`` (B, T, V); ``targets`` (B, T) integer ids; ``mask`` (B, T).
    The mean is taken over unmasked tokens, as is the gradient scaling.
    """
    batch, steps, vocabulary = logits.shape
    flat_logits = logits.reshape(-1, vocabulary)
    flat_targets = targets.reshape(-1)
    rows = np.arange(flat_targets.size)

    # log-softmax directly: shifted - log(sum(exp(shifted)))
    shifted = flat_logits - flat_logits.max(axis=1, keepdims=True)
    probabilities = np.exp(shifted)
    normalizers = probabilities.sum(axis=1)
    log_likelihood = np.log(normalizers) - shifted[rows, flat_targets]

    if mask is None:
        mask = np.ones((batch, steps), dtype=logits.dtype)
    flat_mask = mask.reshape(-1)
    total = max(flat_mask.sum(), 1.0)
    loss = float((log_likelihood * flat_mask).sum() / total)

    # the gradient is softmax - one_hot(target): normalize the probabilities
    # buffer in place and reuse it as the gradient — no (B·T, V) copy
    grad = probabilities
    grad /= normalizers[:, None]
    grad[rows, flat_targets] -= 1.0
    grad *= (flat_mask / total)[:, None]
    return loss, grad.reshape(batch, steps, vocabulary)
