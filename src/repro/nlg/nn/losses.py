"""Losses: masked sequence cross entropy (Equation 12)."""

from __future__ import annotations

import numpy as np

from repro.nlg.nn.functional import softmax


def cross_entropy_from_logits(
    logits: np.ndarray, targets: np.ndarray, mask: np.ndarray | None = None
) -> tuple[float, np.ndarray]:
    """Mean token-level cross entropy and its gradient w.r.t. the logits.

    ``logits`` (B, T, V); ``targets`` (B, T) integer ids; ``mask`` (B, T).
    The mean is taken over unmasked tokens, as is the gradient scaling.
    """
    batch, steps, vocabulary = logits.shape
    probabilities = softmax(logits, axis=-1)
    flat_probabilities = probabilities.reshape(-1, vocabulary)
    flat_targets = targets.reshape(-1)
    picked = flat_probabilities[np.arange(flat_targets.size), flat_targets]
    log_likelihood = -np.log(np.clip(picked, 1e-12, None))
    if mask is None:
        mask = np.ones((batch, steps))
    flat_mask = mask.reshape(-1)
    total = max(flat_mask.sum(), 1.0)
    loss = float((log_likelihood * flat_mask).sum() / total)

    grad = flat_probabilities.copy()
    grad[np.arange(flat_targets.size), flat_targets] -= 1.0
    grad *= (flat_mask / total)[:, None]
    return loss, grad.reshape(batch, steps, vocabulary)
