"""Additive (Bahdanau) attention with manual gradients (paper Equations 8–10).

Two training-time implementations coexist:

* :meth:`AdditiveAttention.forward` / :meth:`AdditiveAttention.backward` —
  the kept per-decoder-step reference path (one :class:`AttentionCache` per
  step);
* :meth:`AdditiveAttention.forward_fused` /
  :meth:`AdditiveAttention.backward_fused` — the turbo path: under teacher
  forcing the context vector never feeds back into the decoder recurrence,
  so attention for *all* decoder timesteps runs as one fused call producing
  ``(B, T_dec, T_enc)`` weights and ``(B, T_dec, He)`` contexts.  This also
  hoists ``project_encoder`` (the ``(B, T_enc, He) @ (He, A)`` matmul) out
  of the per-step loop — the reference path recomputes it at every decoder
  step, a redundancy inference already avoided via :meth:`step_context`.

Parity between the two paths is asserted to ``allclose(rtol=1e-9)`` on
contexts, weights, and every gradient (``tests/test_nlg_train_turbo.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nlg.nn.functional import softmax
from repro.nlg.nn.layers import Parameter


@dataclass
class AttentionCache:
    """Forward values reused in the backward pass for one decoding step."""

    decoder_state: np.ndarray
    encoder_states: np.ndarray
    mask: Optional[np.ndarray]
    scores_tanh: np.ndarray
    weights: np.ndarray
    context: np.ndarray


@dataclass
class AttentionSequenceCache:
    """Structure-of-arrays forward cache for one fused attention pass.

    Covers all ``T_dec`` decoder states at once — the per-step
    :class:`AttentionCache` list of the reference path collapses into a few
    preallocated tensors read back as views on backward.
    """

    decoder_states: np.ndarray  # (B, Td, Hd)
    encoder_states: np.ndarray  # (B, Te, He)
    mask: Optional[np.ndarray]  # (B, Te)
    scores_tanh: np.ndarray  # (B, Td, Te, A)
    weights: np.ndarray  # (B, Td, Te)


class AdditiveAttention:
    """score(s, h_i) = v^T tanh(W_s s + W_h h_i)."""

    def __init__(
        self,
        decoder_dim: int,
        encoder_dim: int,
        attention_dim: int,
        rng: np.random.Generator,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        self.weight_decoder = Parameter.uniform(
            (decoder_dim, attention_dim), rng, name="attention.weight_decoder", dtype=dtype
        )
        self.weight_encoder = Parameter.uniform(
            (encoder_dim, attention_dim), rng, name="attention.weight_encoder", dtype=dtype
        )
        self.score_vector = Parameter.uniform(
            (attention_dim,), rng, name="attention.score_vector", dtype=dtype
        )

    def _score_and_mix(
        self,
        decoder_state: np.ndarray,
        encoder_states: np.ndarray,
        projected_encoder: np.ndarray,
        mask: Optional[np.ndarray],
        weight_decoder: Optional[np.ndarray] = None,
        score_vector: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The shared additive-score / softmax / weighted-sum pipeline.

        Both :meth:`forward` (training, with cache) and :meth:`step_context`
        (decoding, cache-free) go through this single implementation, so the
        two paths can never diverge numerically.  The weight overrides let
        inference substitute quantized replicas; ``None`` means the training
        weights.  Returns (context (B, He), weights (B, T),
        scores_tanh (B, T, A)).
        """
        if weight_decoder is None:
            weight_decoder = self.weight_decoder.value
        if score_vector is None:
            score_vector = self.score_vector.value
        projected_decoder = decoder_state @ weight_decoder  # (B, A)
        scores_tanh = np.tanh(projected_encoder + projected_decoder[:, None, :])  # (B, T, A)
        scores = scores_tanh @ score_vector  # (B, T)
        if mask is not None:
            scores = np.where(mask > 0, scores, -1e9)
        weights = softmax(scores, axis=1)
        context = np.einsum("bt,bth->bh", weights, encoder_states)
        return context, weights, scores_tanh

    def forward(
        self,
        decoder_state: np.ndarray,
        encoder_states: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray, AttentionCache]:
        """Compute the context vector for one decoder step.

        ``decoder_state`` (B, Hd); ``encoder_states`` (B, T, He); ``mask`` (B, T).
        Returns (context (B, He), weights (B, T), cache).
        """
        context, weights, scores_tanh = self._score_and_mix(
            decoder_state, encoder_states, self.project_encoder(encoder_states), mask
        )
        cache = AttentionCache(
            decoder_state=decoder_state,
            encoder_states=encoder_states,
            mask=mask,
            scores_tanh=scores_tanh,
            weights=weights,
            context=context,
        )
        return context, weights, cache

    def project_encoder(self, encoder_states: np.ndarray) -> np.ndarray:
        """Precompute ``W_h h_i`` for every encoder state, shape (B, T, A).

        The encoder-side projection does not depend on the decoder state, so
        beam search computes it once per act and reuses it at every decoding
        timestep instead of redoing the (B, T, He) @ (He, A) matmul per step.
        """
        return encoder_states @ self.weight_encoder.value

    def project_encoder_infer(self, encoder_states: np.ndarray) -> np.ndarray:
        """:meth:`project_encoder` through the (possibly quantized)
        inference replica — the same array when no quantization is active."""
        return encoder_states @ self.weight_encoder.infer_value

    def step_context(
        self,
        decoder_state: np.ndarray,
        encoder_states: np.ndarray,
        projected_encoder: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Inference-only context vector with a precomputed encoder projection.

        The same :meth:`_score_and_mix` pipeline as :meth:`forward`, but it
        builds no backward cache and skips the per-step encoder projection.
        ``decoder_state`` (B, Hd), ``encoder_states`` / ``projected_encoder``
        (B, T, ·), ``mask`` (B, T).  Computes through the inference replicas
        (identical to the training weights when quantization is off).
        """
        context, _, _ = self._score_and_mix(
            decoder_state,
            encoder_states,
            projected_encoder,
            mask,
            weight_decoder=self.weight_decoder.infer_value,
            score_vector=self.score_vector.infer_value,
        )
        return context

    def forward_fused(
        self,
        decoder_states: np.ndarray,
        encoder_states: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray, AttentionSequenceCache]:
        """Context vectors for *all* decoder timesteps in one fused pass.

        ``decoder_states`` (B, Td, Hd); ``encoder_states`` (B, Te, He);
        ``mask`` (B, Te).  Returns (contexts (B, Td, He), weights
        (B, Td, Te), cache).  The encoder projection is computed once for
        the whole sequence — the per-step reference path redoes that
        ``(B, Te, He) @ (He, A)`` matmul at every decoder step.  Row-wise
        the score/softmax/mix math is identical to :meth:`_score_and_mix`.
        """
        projected_encoder = self.project_encoder(encoder_states)  # (B, Te, A), once
        projected_decoder = decoder_states @ self.weight_decoder.value  # (B, Td, A)
        scores_tanh = np.tanh(
            projected_encoder[:, None, :, :] + projected_decoder[:, :, None, :]
        )  # (B, Td, Te, A)
        scores = scores_tanh @ self.score_vector.value  # (B, Td, Te)
        if mask is not None:
            scores = np.where(mask[:, None, :] > 0, scores, -1e9)
        weights = softmax(scores, axis=2)
        contexts = weights @ encoder_states  # (B, Td, Te) @ (B, Te, He)
        cache = AttentionSequenceCache(
            decoder_states=decoder_states,
            encoder_states=encoder_states,
            mask=mask,
            scores_tanh=scores_tanh,
            weights=weights,
        )
        return contexts, weights, cache

    def backward_fused(
        self,
        cache: AttentionSequenceCache,
        grad_contexts: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Backward for one fused :meth:`forward_fused` pass.

        ``grad_contexts`` (B, Td, He).  Returns gradients w.r.t. the decoder
        states (B, Td, Hd) and the encoder states (B, Te, He); parameter
        gradients are accumulated.  One batched contraction per term instead
        of one per decoder step.
        """
        weights = cache.weights  # (B, Td, Te)
        encoder_states = cache.encoder_states

        # contexts = weights @ encoder_states
        grad_weights = grad_contexts @ encoder_states.transpose(0, 2, 1)  # (B, Td, Te)
        grad_encoder = weights.transpose(0, 2, 1) @ grad_contexts  # (B, Te, He)

        # softmax backward, per (batch, decoder-step) row
        dot = np.sum(grad_weights * weights, axis=2, keepdims=True)
        grad_scores = weights * (grad_weights - dot)
        if cache.mask is not None:
            grad_scores = np.where(cache.mask[:, None, :] > 0, grad_scores, 0.0)

        # scores = tanh(...) @ v — the (b, d, t) axes contract away, so the
        # einsums flatten into plain 2D matmuls (BLAS instead of c_einsum)
        attention_dim = self.score_vector.value.shape[0]
        flat_scores_tanh = cache.scores_tanh.reshape(-1, attention_dim)
        self.score_vector.grad += grad_scores.reshape(-1) @ flat_scores_tanh
        grad_pre = grad_scores[:, :, :, None] * self.score_vector.value
        grad_pre *= 1.0 - cache.scores_tanh ** 2  # (B, Td, Te, A), in place

        # pre = encoder @ W_h + decoder @ W_s; the encoder term is shared
        # across decoder steps, so its gradient sums over Td (and vice versa)
        grad_pre_encoder = grad_pre.sum(axis=1)  # (B, Te, A)
        grad_pre_decoder = grad_pre.sum(axis=2)  # (B, Td, A)
        encoder_dim = encoder_states.shape[-1]
        decoder_dim = cache.decoder_states.shape[-1]
        self.weight_encoder.grad += (
            encoder_states.reshape(-1, encoder_dim).T @ grad_pre_encoder.reshape(-1, attention_dim)
        )
        self.weight_decoder.grad += (
            cache.decoder_states.reshape(-1, decoder_dim).T
            @ grad_pre_decoder.reshape(-1, attention_dim)
        )
        grad_encoder += grad_pre_encoder @ self.weight_encoder.value.T
        grad_decoders = grad_pre_decoder @ self.weight_decoder.value.T
        return grad_decoders, grad_encoder

    def backward(
        self,
        cache: AttentionCache,
        grad_context: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Backward for one step.

        Returns gradients w.r.t. the decoder state (B, Hd) and the encoder
        states (B, T, He); parameter gradients are accumulated.
        """
        weights = cache.weights
        encoder_states = cache.encoder_states

        # context = sum_t weights_t * encoder_t
        grad_weights = np.einsum("bh,bth->bt", grad_context, encoder_states)
        grad_encoder = weights[:, :, None] * grad_context[:, None, :]

        # softmax backward
        dot = np.sum(grad_weights * weights, axis=1, keepdims=True)
        grad_scores = weights * (grad_weights - dot)
        if cache.mask is not None:
            grad_scores = np.where(cache.mask > 0, grad_scores, 0.0)

        # scores = tanh(...) @ v
        grad_tanh = grad_scores[:, :, None] * self.score_vector.value[None, None, :]
        self.score_vector.grad += np.einsum("bta,bt->a", cache.scores_tanh, grad_scores)
        grad_pre = grad_tanh * (1.0 - cache.scores_tanh ** 2)  # (B, T, A)

        # pre = encoder @ W_h + decoder @ W_s
        self.weight_encoder.grad += np.einsum("bth,bta->ha", encoder_states, grad_pre)
        self.weight_decoder.grad += cache.decoder_state.T @ grad_pre.sum(axis=1)
        grad_encoder += grad_pre @ self.weight_encoder.value.T
        grad_decoder = grad_pre.sum(axis=1) @ self.weight_decoder.value.T
        return grad_decoder, grad_encoder

    def parameters(self) -> list[Parameter]:
        return [self.weight_decoder, self.weight_encoder, self.score_vector]
