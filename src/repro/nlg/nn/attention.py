"""Additive (Bahdanau) attention with manual gradients (paper Equations 8–10)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nlg.nn.functional import softmax
from repro.nlg.nn.layers import Parameter


@dataclass
class AttentionCache:
    """Forward values reused in the backward pass for one decoding step."""

    decoder_state: np.ndarray
    encoder_states: np.ndarray
    mask: Optional[np.ndarray]
    scores_tanh: np.ndarray
    weights: np.ndarray
    context: np.ndarray


class AdditiveAttention:
    """score(s, h_i) = v^T tanh(W_s s + W_h h_i)."""

    def __init__(self, decoder_dim: int, encoder_dim: int, attention_dim: int, rng: np.random.Generator) -> None:
        self.weight_decoder = Parameter.uniform((decoder_dim, attention_dim), rng, name="attention.weight_decoder")
        self.weight_encoder = Parameter.uniform((encoder_dim, attention_dim), rng, name="attention.weight_encoder")
        self.score_vector = Parameter.uniform((attention_dim,), rng, name="attention.score_vector")

    def _score_and_mix(
        self,
        decoder_state: np.ndarray,
        encoder_states: np.ndarray,
        projected_encoder: np.ndarray,
        mask: Optional[np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The shared additive-score / softmax / weighted-sum pipeline.

        Both :meth:`forward` (training, with cache) and :meth:`step_context`
        (decoding, cache-free) go through this single implementation, so the
        two paths can never diverge numerically.  Returns
        (context (B, He), weights (B, T), scores_tanh (B, T, A)).
        """
        projected_decoder = decoder_state @ self.weight_decoder.value  # (B, A)
        scores_tanh = np.tanh(projected_encoder + projected_decoder[:, None, :])  # (B, T, A)
        scores = scores_tanh @ self.score_vector.value  # (B, T)
        if mask is not None:
            scores = np.where(mask > 0, scores, -1e9)
        weights = softmax(scores, axis=1)
        context = np.einsum("bt,bth->bh", weights, encoder_states)
        return context, weights, scores_tanh

    def forward(
        self,
        decoder_state: np.ndarray,
        encoder_states: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray, AttentionCache]:
        """Compute the context vector for one decoder step.

        ``decoder_state`` (B, Hd); ``encoder_states`` (B, T, He); ``mask`` (B, T).
        Returns (context (B, He), weights (B, T), cache).
        """
        context, weights, scores_tanh = self._score_and_mix(
            decoder_state, encoder_states, self.project_encoder(encoder_states), mask
        )
        cache = AttentionCache(
            decoder_state=decoder_state,
            encoder_states=encoder_states,
            mask=mask,
            scores_tanh=scores_tanh,
            weights=weights,
            context=context,
        )
        return context, weights, cache

    def project_encoder(self, encoder_states: np.ndarray) -> np.ndarray:
        """Precompute ``W_h h_i`` for every encoder state, shape (B, T, A).

        The encoder-side projection does not depend on the decoder state, so
        beam search computes it once per act and reuses it at every decoding
        timestep instead of redoing the (B, T, He) @ (He, A) matmul per step.
        """
        return encoder_states @ self.weight_encoder.value

    def step_context(
        self,
        decoder_state: np.ndarray,
        encoder_states: np.ndarray,
        projected_encoder: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Inference-only context vector with a precomputed encoder projection.

        The same :meth:`_score_and_mix` pipeline as :meth:`forward`, but it
        builds no backward cache and skips the per-step encoder projection.
        ``decoder_state`` (B, Hd), ``encoder_states`` / ``projected_encoder``
        (B, T, ·), ``mask`` (B, T).
        """
        context, _, _ = self._score_and_mix(
            decoder_state, encoder_states, projected_encoder, mask
        )
        return context

    def backward(
        self,
        cache: AttentionCache,
        grad_context: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Backward for one step.

        Returns gradients w.r.t. the decoder state (B, Hd) and the encoder
        states (B, T, He); parameter gradients are accumulated.
        """
        weights = cache.weights
        encoder_states = cache.encoder_states

        # context = sum_t weights_t * encoder_t
        grad_weights = np.einsum("bh,bth->bt", grad_context, encoder_states)
        grad_encoder = weights[:, :, None] * grad_context[:, None, :]

        # softmax backward
        dot = np.sum(grad_weights * weights, axis=1, keepdims=True)
        grad_scores = weights * (grad_weights - dot)
        if cache.mask is not None:
            grad_scores = np.where(cache.mask > 0, grad_scores, 0.0)

        # scores = tanh(...) @ v
        grad_tanh = grad_scores[:, :, None] * self.score_vector.value[None, None, :]
        self.score_vector.grad += np.einsum("bta,bt->a", cache.scores_tanh, grad_scores)
        grad_pre = grad_tanh * (1.0 - cache.scores_tanh ** 2)  # (B, T, A)

        # pre = encoder @ W_h + decoder @ W_s
        self.weight_encoder.grad += np.einsum("bth,bta->ha", encoder_states, grad_pre)
        self.weight_decoder.grad += cache.decoder_state.T @ grad_pre.sum(axis=1)
        grad_encoder += grad_pre @ self.weight_encoder.value.T
        grad_decoder = grad_pre.sum(axis=1) @ self.weight_decoder.value.T
        return grad_decoder, grad_encoder

    def parameters(self) -> list[Parameter]:
        return [self.weight_decoder, self.weight_encoder, self.score_vector]
