"""Elementary differentiable functions."""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Numerically stable logistic sigmoid (preserves the input's float dtype).

    Branchless formulation: with ``z = exp(-|x|)`` (never overflows),
    ``sigmoid(x) = 1 / (1 + z)`` for ``x >= 0`` and ``z / (1 + z)``
    otherwise — bit-identical to the two-branch masked version it replaces
    (``exp(-|x|)`` equals ``exp(-x)`` / ``exp(x)`` exactly on each branch)
    but without the fancy-indexing round trips, which dominated the cost on
    the small per-timestep arrays of the LSTM recurrence.  ``out`` lets the
    hot loops write the result straight into a preallocated (possibly
    strided) buffer.
    """
    z = np.exp(-np.abs(x))
    # the scalar 1.0 is cast to z's dtype up front: NumPy 1.x value-based
    # casting would otherwise promote float32 inputs to float64 here
    numerator = np.where(x >= 0, z.dtype.type(1.0), z)
    z += 1.0
    if out is None:
        numerator /= z
        return numerator
    np.divide(numerator, z, out=out)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax along ``axis`` with max-subtraction for stability."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exponent = np.exp(shifted)
    return exponent / np.sum(exponent, axis=axis, keepdims=True)


def one_hot(indices: np.ndarray, depth: int) -> np.ndarray:
    """One-hot encode an integer array to shape ``indices.shape + (depth,)``."""
    flat = np.asarray(indices).reshape(-1)
    encoded = np.zeros((flat.size, depth), dtype=np.float64)
    encoded[np.arange(flat.size), flat] = 1.0
    return encoded.reshape(*np.asarray(indices).shape, depth)
