"""Elementary differentiable functions."""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Softmax along ``axis`` with max-subtraction for stability."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exponent = np.exp(shifted)
    return exponent / np.sum(exponent, axis=axis, keepdims=True)


def one_hot(indices: np.ndarray, depth: int) -> np.ndarray:
    """One-hot encode an integer array to shape ``indices.shape + (depth,)``."""
    flat = np.asarray(indices).reshape(-1)
    encoded = np.zeros((flat.size, depth), dtype=np.float64)
    encoded[np.arange(flat.size), flat] = 1.0
    return encoded.reshape(*np.asarray(indices).shape, depth)
