"""Optimizers: plain SGD (the paper's choice) and Adam (used by QEP2Seq training).

Both are vectorized across the *whole parameter set*: when every parameter
shares one dtype (the normal case — ``Seq2SeqConfig.dtype`` governs the
model uniformly), values and gradients are repacked as views into two
contiguous flat buffers (:class:`_FlatParameterSpace`), so one optimizer
step is a fixed handful of full-width kernels instead of a dozen small
kernels *per parameter*.  Gradient clipping becomes a single BLAS dot, and
``zero_grad`` a single ``fill``.  Layers keep mutating ``parameter.value``
/ ``parameter.grad`` in place, which writes through the views; code that
*rebinds* those attributes (tests, ad-hoc scripts) is re-adopted into the
flat space at the next ``step``/``zero_grad``.

Adam's inner loop allocates nothing per step: no ``m_hat`` / ``v_hat``
arrays are ever materialized — the bias corrections fold into the step size
and the denominator, and every element-wise kernel writes into the moment
buffers or one preallocated scratch buffer.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nlg.nn.layers import Parameter


class _FlatParameterSpace:
    """Values and gradients of many parameters as views into flat buffers."""

    def __init__(self, parameters: list[Parameter]) -> None:
        self.parameters = parameters
        dtype = parameters[0].value.dtype
        total = sum(parameter.size for parameter in parameters)
        self.values = np.empty(total, dtype=dtype)
        self.grads = np.zeros(total, dtype=dtype)
        self._value_views: list[np.ndarray] = []
        self._grad_views: list[np.ndarray] = []
        offset = 0
        for parameter in parameters:
            count = parameter.size
            shape = parameter.value.shape
            self.values[offset : offset + count] = parameter.value.reshape(-1)
            self.grads[offset : offset + count] = parameter.grad.reshape(-1)
            value_view = self.values[offset : offset + count].reshape(shape)
            grad_view = self.grads[offset : offset + count].reshape(shape)
            parameter.value = value_view
            parameter.grad = grad_view
            self._value_views.append(value_view)
            self._grad_views.append(grad_view)
            offset += count

    @classmethod
    def try_build(cls, parameters: list[Parameter]) -> "_FlatParameterSpace | None":
        """Flat packing needs at least one parameter, unique objects, and one
        shared dtype; anything else falls back to the per-parameter path."""
        if not parameters:
            return None
        if len({id(parameter) for parameter in parameters}) != len(parameters):
            return None
        dtypes = {parameter.value.dtype for parameter in parameters}
        dtypes.update(parameter.grad.dtype for parameter in parameters)
        if len(dtypes) != 1:
            return None
        return cls(parameters)

    def adopt(self) -> None:
        """Re-absorb any value/grad arrays external code rebound since the
        last step, so ``p.grad = fresh_array`` idioms keep working."""
        for parameter, value_view, grad_view in zip(
            self.parameters, self._value_views, self._grad_views
        ):
            if parameter.value is not value_view:
                value_view[...] = parameter.value
                parameter.value = value_view
            if parameter.grad is not grad_view:
                grad_view[...] = parameter.grad
                parameter.grad = grad_view

    def rebind_grads(self) -> None:
        """Point every parameter's grad back at its flat view (no copy)."""
        for parameter, grad_view in zip(self.parameters, self._grad_views):
            if parameter.grad is not grad_view:
                parameter.grad = grad_view

    def clip_global_norm(self, clip_norm: float) -> float:
        """Single-dot global-norm clip over the flat gradient buffer."""
        total = math.sqrt(float(self.grads @ self.grads))
        if total > clip_norm > 0:
            self.grads *= clip_norm / total
        return total


def clip_global_norm(parameters: list[Parameter], clip_norm: float) -> float:
    """Scale all gradients in place so their global L2 norm is ≤ ``clip_norm``.

    The squared norm is accumulated with one BLAS dot per parameter (no
    ``grad ** 2`` temporaries); returns the pre-clip norm.  The flat-packed
    optimizers use :meth:`_FlatParameterSpace.clip_global_norm` (one dot
    total) instead; this is the shared fallback for loose parameter lists.
    """
    total_squared = 0.0
    for parameter in parameters:
        flat = parameter.grad.reshape(-1)
        total_squared += float(flat @ flat)
    total = math.sqrt(total_squared)
    if total > clip_norm > 0:
        scale = clip_norm / total
        for parameter in parameters:
            parameter.grad *= scale
    return total


class SGD:
    """Stochastic gradient descent without momentum, with optional gradient clipping."""

    def __init__(self, parameters: list[Parameter], learning_rate: float = 0.001, clip_norm: float | None = 5.0) -> None:
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.clip_norm = clip_norm
        #: pre-clip global gradient L2 norm of the most recent step()
        self.last_grad_norm: float | None = None
        self._flat = _FlatParameterSpace.try_build(parameters)
        self._scratch = np.empty_like(self._flat.values) if self._flat is not None else None

    def step(self) -> None:
        if self._flat is not None:
            self._flat.adopt()
            # clip_global_norm(0.0) measures without scaling (the clip guard
            # is `total > clip_norm > 0`), so the norm is always one dot
            self.last_grad_norm = self._flat.clip_global_norm(self.clip_norm or 0.0)
            np.multiply(self._flat.grads, self.learning_rate, out=self._scratch)
            self._flat.values -= self._scratch
            return
        self.last_grad_norm = clip_global_norm(self.parameters, self.clip_norm or 0.0)
        for parameter in self.parameters:
            parameter.value -= self.learning_rate * parameter.grad

    def zero_grad(self) -> None:
        if self._flat is not None:
            self._flat.rebind_grads()
            self._flat.grads.fill(0.0)
            return
        for parameter in self.parameters:
            parameter.zero_grad()


class Adam:
    """Adam with the usual bias correction, updated fully in place.

    With a flat parameter space the whole step is ~13 full-width kernels
    (total, not per parameter).  ``m_hat`` / ``v_hat`` are never
    materialized: the bias corrections fold into the step size and the
    denominator.  ``clip_norm`` (default off, matching the historical
    behaviour) applies the same global-norm clip as SGD.
    """

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        clip_norm: float | None = None,
    ) -> None:
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.clip_norm = clip_norm
        #: pre-clip global gradient L2 norm of the most recent step()
        self.last_grad_norm: float | None = None
        self._flat = _FlatParameterSpace.try_build(parameters)
        if self._flat is not None:
            self._m = [np.zeros_like(self._flat.values)]
            self._v = [np.zeros_like(self._flat.values)]
            self._scratch = [np.empty_like(self._flat.values)]
        else:
            self._m = [np.zeros_like(p.value) for p in parameters]
            self._v = [np.zeros_like(p.value) for p in parameters]
            self._scratch = [np.empty_like(p.value) for p in parameters]
        self._t = 0

    def step(self) -> None:
        if self._flat is not None:
            self._flat.adopt()
            # measuring with clip_norm=0.0 never scales (guard is
            # `total > clip_norm > 0`); the norm costs one dot either way
            self.last_grad_norm = self._flat.clip_global_norm(self.clip_norm or 0.0)
            self._t += 1
            self._update(self._flat.values, self._flat.grads, 0)
            return
        self.last_grad_norm = clip_global_norm(self.parameters, self.clip_norm or 0.0)
        self._t += 1
        for index, parameter in enumerate(self.parameters):
            self._update(parameter.value, parameter.grad, index)

    def _update(self, value: np.ndarray, grad: np.ndarray, index: int) -> None:
        m, v, scratch = self._m[index], self._v[index], self._scratch[index]
        correction1 = 1 - self.beta1 ** self._t
        correction2 = 1 - self.beta2 ** self._t
        # m = beta1 * m + (1 - beta1) * grad, in place
        m *= self.beta1
        np.multiply(grad, 1 - self.beta1, out=scratch)
        m += scratch
        # v = beta2 * v + (1 - beta2) * grad², in place
        v *= self.beta2
        np.multiply(grad, grad, out=scratch)
        scratch *= 1 - self.beta2
        v += scratch
        # value -= lr * (m / c1) / (sqrt(v / c2) + eps), via the scratch
        # buffer: sqrt(v_hat) = sqrt(v) / sqrt(c2) element-for-element
        np.sqrt(v, out=scratch)
        scratch /= math.sqrt(correction2)
        scratch += self.epsilon
        np.divide(m, scratch, out=scratch)
        scratch *= self.learning_rate / correction1
        value -= scratch

    def zero_grad(self) -> None:
        if self._flat is not None:
            self._flat.rebind_grads()
            self._flat.grads.fill(0.0)
            return
        for parameter in self.parameters:
            parameter.zero_grad()
