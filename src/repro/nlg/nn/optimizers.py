"""Optimizers: plain SGD (the paper's choice) and Adam (used by the embedding trainers)."""

from __future__ import annotations

import numpy as np

from repro.nlg.nn.layers import Parameter


class SGD:
    """Stochastic gradient descent without momentum, with optional gradient clipping."""

    def __init__(self, parameters: list[Parameter], learning_rate: float = 0.001, clip_norm: float | None = 5.0) -> None:
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.clip_norm = clip_norm

    def step(self) -> None:
        if self.clip_norm is not None:
            total = np.sqrt(sum(float(np.sum(p.grad ** 2)) for p in self.parameters))
            if total > self.clip_norm and total > 0:
                scale = self.clip_norm / total
                for parameter in self.parameters:
                    parameter.grad *= scale
        for parameter in self.parameters:
            parameter.value -= self.learning_rate * parameter.grad

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()


class Adam:
    """Adam with the usual bias correction."""

    def __init__(
        self,
        parameters: list[Parameter],
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.parameters = parameters
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m = [np.zeros_like(p.value) for p in parameters]
        self._v = [np.zeros_like(p.value) for p in parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for index, parameter in enumerate(self.parameters):
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * parameter.grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * parameter.grad ** 2
            m_hat = self._m[index] / (1 - self.beta1 ** self._t)
            v_hat = self._v[index] / (1 - self.beta2 ** self._t)
            parameter.value -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()
