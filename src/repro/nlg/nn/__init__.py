"""A small NumPy neural-network substrate.

Only what QEP2Seq and the embedding trainers need: parameter containers,
uniform initialization (the paper initializes all LSTM parameters uniformly
in [-0.1, 0.1]), an LSTM with full backpropagation-through-time, additive
(Bahdanau) attention, dense and embedding layers, a cross-entropy loss, and
SGD/Adam optimizers.
"""

from repro.nlg.nn.functional import sigmoid, softmax, tanh
from repro.nlg.nn.layers import Dense, Embedding, Parameter
from repro.nlg.nn.lstm import LSTM
from repro.nlg.nn.optimizers import SGD, Adam

__all__ = [
    "Adam",
    "Dense",
    "Embedding",
    "LSTM",
    "Parameter",
    "SGD",
    "sigmoid",
    "softmax",
    "tanh",
]
