"""An LSTM layer with full backpropagation through time.

The gate equations follow the paper (Equations 2–6): input, forget and output
gates plus a candidate cell state, combined as

    c_t = i_t * tanh(U_c h_{t-1} + V_c x_t) + f_t * c_{t-1}
    h_t = o_t * tanh(c_t)

Gates are computed as one fused affine transform for speed.  ``forward``
processes a padded batch (with a mask); ``step`` processes a single time step
and is used by the decoder at inference time.

Two training-time implementations coexist, the same reference/fast pairing
the batched beam-search decoder uses:

* :meth:`LSTM.forward` / :meth:`LSTM.backward` — the kept step-wise
  reference path (one ``step`` / ``backward_step`` per timestep, an
  :class:`LSTMStepCache` object per step);
* :meth:`LSTM.forward_fused` / :meth:`LSTM.backward_fused` — the turbo
  path: the input-side gate matmul ``x_t @ weight_x`` does not depend on
  ``h_{t-1}``, so it is hoisted out of the recurrence as one
  ``(B·T, D) @ (D, 4H)`` matmul; only ``h_prev @ weight_h`` stays per step.
  Forward values land in a preallocated structure-of-arrays
  :class:`LSTMSequenceCache` (no per-step ``np.concatenate``), and the
  backward pass accumulates ``d_pre`` into one ``(B, T, 4H)`` buffer so the
  ``weight_x`` / ``weight_h`` / input-gradient contractions become three
  batched matmuls after the reverse loop instead of three per step.

The fused path is the training default; parity with the reference path is
asserted to ``allclose(rtol=1e-9)`` on values and every parameter gradient
(``tests/test_nlg_train_turbo.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nlg.nn.functional import sigmoid, tanh
from repro.nlg.nn.layers import Parameter


@dataclass
class LSTMStepCache:
    """Values saved during one forward step and reused by the backward pass."""

    x: np.ndarray
    h_prev: np.ndarray
    c_prev: np.ndarray
    gates: np.ndarray  # (B, 4H) post-activation: [i, f, o, g]
    c: np.ndarray
    h: np.ndarray
    mask: Optional[np.ndarray] = None


@dataclass
class LSTMSequenceCache:
    """Structure-of-arrays forward cache for one fused sequence.

    Replaces the per-step :class:`LSTMStepCache` list of the reference path:
    gates and states live in tensors preallocated once per sequence, written
    by slice on forward and read back as views on backward — no per-step
    ``np.concatenate`` (or any other) allocations inside the recurrence.

    ``h_all`` / ``c_all`` hold ``T + 1`` slots: index ``t`` is the state
    *entering* step ``t`` (``h_all[:, 0]`` is ``h0``), index ``t + 1`` the
    state that step produced (post-mask).
    """

    inputs: np.ndarray  # (B, T, D)
    gates: np.ndarray  # (B, T, 4H) post-activation: [i, f, o, g]
    h_all: np.ndarray  # (B, T+1, H)
    c_all: np.ndarray  # (B, T+1, H)
    mask: Optional[np.ndarray] = None  # (B, T)


class LSTM:
    """A single-layer LSTM operating on batches of padded sequences."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        name: str = "lstm",
        dtype: np.dtype | type = np.float64,
    ) -> None:
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.weight_x = Parameter.uniform(
            (input_dim, 4 * hidden_dim), rng, name=f"{name}.weight_x", dtype=dtype
        )
        self.weight_h = Parameter.uniform(
            (hidden_dim, 4 * hidden_dim), rng, name=f"{name}.weight_h", dtype=dtype
        )
        self.bias = Parameter(np.zeros(4 * hidden_dim), name=f"{name}.bias", dtype=dtype)

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------

    def _gates(
        self,
        x: np.ndarray,
        h_prev: np.ndarray,
        c_prev: np.ndarray,
        weight_x: Optional[np.ndarray] = None,
        weight_h: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The shared gate equations: returns (h, c, i, f, o, g).

        Both :meth:`step` (training, with cache) and :meth:`step_infer`
        (decoding, cache-free) go through this single implementation, so the
        two paths can never diverge numerically.  The weight overrides let
        the inference paths substitute quantized replicas without forking
        the math; ``None`` means the training weights.
        """
        hidden = self.hidden_dim
        if weight_x is None:
            weight_x = self.weight_x.value
        if weight_h is None:
            weight_h = self.weight_h.value
        if bias is None:
            bias = self.bias.value
        pre = x @ weight_x + h_prev @ weight_h + bias
        # i, f and o share one sigmoid over the leading 3H lanes (one ufunc
        # launch instead of three); elementwise, so the slices are identical
        # to three separate calls
        activated = sigmoid(pre[:, : 3 * hidden])
        i = activated[:, :hidden]
        f = activated[:, hidden : 2 * hidden]
        o = activated[:, 2 * hidden :]
        g = tanh(pre[:, 3 * hidden :])
        c = i * g + f * c_prev
        h = o * np.tanh(c)
        return h, c, i, f, o, g

    def step(
        self,
        x: np.ndarray,
        h_prev: np.ndarray,
        c_prev: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray, LSTMStepCache]:
        """One time step for a batch: returns (h, c, cache)."""
        h, c, i, f, o, g = self._gates(x, h_prev, c_prev)
        if mask is not None:
            keep = mask[:, None]
            h = keep * h + (1.0 - keep) * h_prev
            c = keep * c + (1.0 - keep) * c_prev
        cache = LSTMStepCache(
            x=x, h_prev=h_prev, c_prev=c_prev,
            gates=np.concatenate([i, f, o, g], axis=1), c=c, h=h, mask=mask,
        )
        return h, c, cache

    def step_infer(
        self,
        x: np.ndarray,
        h_prev: np.ndarray,
        c_prev: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One inference-only time step: (h, c) without a backward cache.

        The same :meth:`_gates` math as :meth:`step` but no
        :class:`LSTMStepCache` allocation — this is what the batched
        beam-search decoder calls once per timestep for all live beams at
        once (a ``(K, H)`` state matrix instead of K batch-1 calls).
        Computes through the (possibly quantized) inference replicas, which
        are the training weights themselves when no quantization is active.
        """
        h, c, _, _, _, _ = self._gates(
            x,
            h_prev,
            c_prev,
            weight_x=self.weight_x.infer_value,
            weight_h=self.weight_h.infer_value,
            bias=self.bias.infer_value,
        )
        return h, c

    def forward_infer(
        self,
        inputs: np.ndarray,
        mask: Optional[np.ndarray] = None,
        h0: Optional[np.ndarray] = None,
        c0: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run the full sequence inference-only: no backward caches.

        Same per-step math and mask arithmetic as :meth:`forward` (so the
        two are bit-identical when no quantization replica is attached) but
        through ``infer_value`` weights and without building
        :class:`LSTMStepCache` objects — the encoder's decode-time path.
        """
        batch, steps, _ = inputs.shape
        weight_x = self.weight_x.infer_value
        weight_h = self.weight_h.infer_value
        bias = self.bias.infer_value
        dtype = weight_x.dtype
        h = np.zeros((batch, self.hidden_dim), dtype=dtype) if h0 is None else h0.copy()
        c = np.zeros((batch, self.hidden_dim), dtype=dtype) if c0 is None else c0.copy()
        outputs = np.zeros((batch, steps, self.hidden_dim), dtype=dtype)
        for t in range(steps):
            h_new, c_new, _, _, _, _ = self._gates(
                inputs[:, t, :], h, c, weight_x=weight_x, weight_h=weight_h, bias=bias
            )
            if mask is not None:
                keep = mask[:, t][:, None]
                h = keep * h_new + (1.0 - keep) * h
                c = keep * c_new + (1.0 - keep) * c
            else:
                h, c = h_new, c_new
            outputs[:, t, :] = h
        return outputs, h, c

    def forward(
        self,
        inputs: np.ndarray,
        mask: Optional[np.ndarray] = None,
        h0: Optional[np.ndarray] = None,
        c0: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[LSTMStepCache]]:
        """Run the full sequence.

        ``inputs`` has shape (B, T, D); ``mask`` (B, T) with 1 for real tokens.
        Returns hidden states (B, T, H), final h, final c, and per-step caches.
        """
        batch, steps, _ = inputs.shape
        dtype = self.weight_x.value.dtype
        h = np.zeros((batch, self.hidden_dim), dtype=dtype) if h0 is None else h0.copy()
        c = np.zeros((batch, self.hidden_dim), dtype=dtype) if c0 is None else c0.copy()
        outputs = np.zeros((batch, steps, self.hidden_dim), dtype=dtype)
        caches: list[LSTMStepCache] = []
        for t in range(steps):
            step_mask = mask[:, t] if mask is not None else None
            h, c, cache = self.step(inputs[:, t, :], h, c, mask=step_mask)
            outputs[:, t, :] = h
            caches.append(cache)
        return outputs, h, c, caches

    def forward_fused(
        self,
        inputs: np.ndarray,
        mask: Optional[np.ndarray] = None,
        h0: Optional[np.ndarray] = None,
        c0: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, LSTMSequenceCache]:
        """Run the full sequence with the input-side gate matmul hoisted.

        Same signature semantics as :meth:`forward` but returns an
        :class:`LSTMSequenceCache` instead of a per-step cache list.
        ``x_t @ weight_x`` is independent of ``h_{t-1}``, so it is computed
        for all timesteps in one ``(B·T, D) @ (D, 4H)`` matmul before the
        sequential loop; only ``h_prev @ weight_h`` remains per step.  The
        per-step math (including the bias addition order and the mask
        pass-through) mirrors :meth:`_gates` exactly.
        """
        batch, steps, _ = inputs.shape
        hidden = self.hidden_dim
        dtype = self.weight_x.value.dtype
        h = np.zeros((batch, hidden), dtype=dtype) if h0 is None else h0
        c = np.zeros((batch, hidden), dtype=dtype) if c0 is None else c0
        pre_x = (
            inputs.reshape(batch * steps, self.input_dim) @ self.weight_x.value
        ).reshape(batch, steps, 4 * hidden)
        pre_x += self.bias.value  # folded into the hoisted matmul output once
        gates = np.empty((batch, steps, 4 * hidden), dtype=dtype)
        h_all = np.empty((batch, steps + 1, hidden), dtype=dtype)
        c_all = np.empty((batch, steps + 1, hidden), dtype=dtype)
        h_all[:, 0] = h
        c_all[:, 0] = c
        weight_h = self.weight_h.value
        # an all-ones mask is a no-op pass-through (keep * x + 0 * prev == x
        # bit for bit), so skip the mask arithmetic entirely — under length
        # bucketing most batches have uniform lengths, making this the
        # common case
        masked = mask is not None and not bool(np.all(mask == 1.0))
        pre = np.empty((batch, 4 * hidden), dtype=dtype)
        scratch = np.empty((batch, hidden), dtype=dtype)
        for t in range(steps):
            # pre = (x_t @ Wx + bias) (hoisted) + h_prev @ Wh, with out=
            # kernels so the recurrence allocates nothing per step
            np.matmul(h, weight_h, out=pre)
            pre += pre_x[:, t]
            gate_t = gates[:, t]
            # i, f and o share one sigmoid over the leading 3H lanes — one
            # ufunc launch per step instead of three, written straight into
            # the SoA gate buffer
            sigmoid(pre[:, : 3 * hidden], out=gate_t[:, : 3 * hidden])
            np.tanh(pre[:, 3 * hidden :], out=gate_t[:, 3 * hidden :])
            i = gate_t[:, :hidden]
            f = gate_t[:, hidden : 2 * hidden]
            o = gate_t[:, 2 * hidden : 3 * hidden]
            g = gate_t[:, 3 * hidden :]
            h_view = h_all[:, t + 1]
            c_view = c_all[:, t + 1]
            np.multiply(i, g, out=c_view)
            np.multiply(f, c, out=scratch)
            c_view += scratch
            np.tanh(c_view, out=scratch)
            np.multiply(o, scratch, out=h_view)
            if masked:
                keep = mask[:, t][:, None]
                h_view[...] = keep * h_view + (1.0 - keep) * h
                c_view[...] = keep * c_view + (1.0 - keep) * c
            h, c = h_view, c_view
        cache = LSTMSequenceCache(inputs=inputs, gates=gates, h_all=h_all, c_all=c_all, mask=mask)
        return h_all[:, 1:], h, c, cache

    # ------------------------------------------------------------------
    # backward
    # ------------------------------------------------------------------

    def backward_fused(
        self,
        cache: LSTMSequenceCache,
        grad_outputs: np.ndarray,
        grad_h_final: Optional[np.ndarray] = None,
        grad_c_final: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward through a :meth:`forward_fused` sequence.

        Mirrors :meth:`backward` but accumulates the gate pre-activation
        gradients into one preallocated ``(B, T, 4H)`` buffer and performs
        the ``weight_x.grad`` / ``weight_h.grad`` / input-gradient
        contractions as single batched matmuls after the reverse loop,
        instead of three matmuls per step.  Only the recurrent
        ``d_pre_t @ weight_h.T`` remains inside the loop.
        """
        batch, steps, _ = grad_outputs.shape
        hidden = self.hidden_dim
        dtype = self.weight_x.value.dtype
        grad_h = (
            np.zeros((batch, hidden), dtype=dtype)
            if grad_h_final is None
            else grad_h_final.copy()
        )
        grad_c = (
            np.zeros((batch, hidden), dtype=dtype)
            if grad_c_final is None
            else grad_c_final.copy()
        )
        d_pre = np.empty((batch, steps, 4 * hidden), dtype=dtype)
        weight_h_t = np.ascontiguousarray(self.weight_h.value.T)
        masked = cache.mask is not None and not bool(np.all(cache.mask == 1.0))

        # every gradient-independent factor is precomputed across ALL
        # timesteps as a handful of big (B, T, H) kernels, so the sequential
        # reverse loop shrinks to the true recurrence: eight small kernels
        # plus one gemm per step.
        gates = cache.gates
        i_all = gates[:, :, :hidden]
        f_all = gates[:, :, hidden : 2 * hidden]
        o_all = gates[:, :, 2 * hidden : 3 * hidden]
        g_all = gates[:, :, 3 * hidden :]
        tanh_c = np.tanh(cache.c_all[:, 1:])
        # o * (1 - tanh(c)²): the cell-gradient contribution of grad_h
        cell_factor = o_all * (1.0 - tanh_c ** 2)
        # gate derivative factors: d_pre_x = <grad term> * factor_x
        factor_o = tanh_c * o_all * (1.0 - o_all)  # times grad_h
        factor_i = g_all * i_all * (1.0 - i_all)  # times grad_c_total
        factor_f = cache.c_all[:, :-1] * f_all * (1.0 - f_all)  # times grad_c_total
        factor_g = i_all * (1.0 - g_all ** 2)  # times grad_c_total

        grad_c_total = np.empty((batch, hidden), dtype=dtype)
        for t in reversed(range(steps)):
            grad_h += grad_outputs[:, t]  # grad_h is always step-owned here
            if masked:
                keep = cache.mask[:, t][:, None]
                grad_h_prev_passthrough = grad_h * (1.0 - keep)
                grad_c_prev_passthrough = grad_c * (1.0 - keep)
                grad_h = grad_h * keep
                grad_c = grad_c * keep
            d_pre_t = d_pre[:, t]
            np.multiply(grad_h, factor_o[:, t], out=d_pre_t[:, 2 * hidden : 3 * hidden])
            np.multiply(grad_h, cell_factor[:, t], out=grad_c_total)
            grad_c_total += grad_c
            np.multiply(grad_c_total, factor_i[:, t], out=d_pre_t[:, :hidden])
            np.multiply(grad_c_total, factor_f[:, t], out=d_pre_t[:, hidden : 2 * hidden])
            np.multiply(grad_c_total, factor_g[:, t], out=d_pre_t[:, 3 * hidden :])
            grad_h = d_pre_t @ weight_h_t
            grad_c = grad_c_total * f_all[:, t]
            if masked:
                grad_h += grad_h_prev_passthrough
                grad_c += grad_c_prev_passthrough
        flat_d_pre = d_pre.reshape(batch * steps, 4 * hidden)
        self.weight_x.grad += cache.inputs.reshape(batch * steps, self.input_dim).T @ flat_d_pre
        self.weight_h.grad += cache.h_all[:, :-1].reshape(batch * steps, hidden).T @ flat_d_pre
        self.bias.grad += flat_d_pre.sum(axis=0)
        grad_inputs = (flat_d_pre @ self.weight_x.value.T).reshape(batch, steps, self.input_dim)
        return grad_inputs, grad_h, grad_c

    def backward_step(
        self,
        cache: LSTMStepCache,
        grad_h: np.ndarray,
        grad_c: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward through one step.

        Returns gradients w.r.t. the step input x, the previous hidden state,
        and the previous cell state; parameter gradients are accumulated.
        """
        hidden = self.hidden_dim
        i = cache.gates[:, :hidden]
        f = cache.gates[:, hidden : 2 * hidden]
        o = cache.gates[:, 2 * hidden : 3 * hidden]
        g = cache.gates[:, 3 * hidden :]

        if cache.mask is not None:
            keep = cache.mask[:, None]
            grad_h_prev_passthrough = grad_h * (1.0 - keep)
            grad_c_prev_passthrough = grad_c * (1.0 - keep)
            grad_h = grad_h * keep
            grad_c = grad_c * keep
        else:
            grad_h_prev_passthrough = 0.0
            grad_c_prev_passthrough = 0.0

        tanh_c = np.tanh(cache.c)
        grad_o = grad_h * tanh_c
        grad_c_total = grad_c + grad_h * o * (1.0 - tanh_c ** 2)
        grad_i = grad_c_total * g
        grad_g = grad_c_total * i
        grad_f = grad_c_total * cache.c_prev
        grad_c_prev = grad_c_total * f

        d_pre_i = grad_i * i * (1.0 - i)
        d_pre_f = grad_f * f * (1.0 - f)
        d_pre_o = grad_o * o * (1.0 - o)
        d_pre_g = grad_g * (1.0 - g ** 2)
        d_pre = np.concatenate([d_pre_i, d_pre_f, d_pre_o, d_pre_g], axis=1)

        self.weight_x.grad += cache.x.T @ d_pre
        self.weight_h.grad += cache.h_prev.T @ d_pre
        self.bias.grad += d_pre.sum(axis=0)

        grad_x = d_pre @ self.weight_x.value.T
        grad_h_prev = d_pre @ self.weight_h.value.T + grad_h_prev_passthrough
        grad_c_prev = grad_c_prev + grad_c_prev_passthrough
        return grad_x, grad_h_prev, grad_c_prev

    def backward(
        self,
        caches: list[LSTMStepCache],
        grad_outputs: np.ndarray,
        grad_h_final: Optional[np.ndarray] = None,
        grad_c_final: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward through the whole sequence.

        ``grad_outputs`` has shape (B, T, H): the gradient flowing into each
        per-step hidden state.  Returns the gradient w.r.t. the inputs
        (B, T, D) and the initial hidden/cell states.
        """
        batch, steps, _ = grad_outputs.shape
        dtype = self.weight_x.value.dtype
        grad_inputs = np.zeros((batch, steps, self.input_dim), dtype=dtype)
        grad_h = (
            np.zeros((batch, self.hidden_dim), dtype=dtype)
            if grad_h_final is None
            else grad_h_final.copy()
        )
        grad_c = (
            np.zeros((batch, self.hidden_dim), dtype=dtype)
            if grad_c_final is None
            else grad_c_final.copy()
        )
        for t in reversed(range(steps)):
            grad_h = grad_h + grad_outputs[:, t, :]
            grad_x, grad_h, grad_c = self.backward_step(caches[t], grad_h, grad_c)
            grad_inputs[:, t, :] = grad_x
        return grad_inputs, grad_h, grad_c

    def parameters(self) -> list[Parameter]:
        return [self.weight_x, self.weight_h, self.bias]

    @property
    def recurrent_connection_count(self) -> int:
        """Number of recurrent weights (the quantity reported in paper Table 3)."""
        return int(self.weight_x.size + self.weight_h.size + self.bias.size)
