"""An LSTM layer with full backpropagation through time.

The gate equations follow the paper (Equations 2–6): input, forget and output
gates plus a candidate cell state, combined as

    c_t = i_t * tanh(U_c h_{t-1} + V_c x_t) + f_t * c_{t-1}
    h_t = o_t * tanh(c_t)

Gates are computed as one fused affine transform for speed.  ``forward``
processes a padded batch (with a mask); ``step`` processes a single time step
and is used by the decoder at inference time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nlg.nn.functional import sigmoid, tanh
from repro.nlg.nn.layers import Parameter


@dataclass
class LSTMStepCache:
    """Values saved during one forward step and reused by the backward pass."""

    x: np.ndarray
    h_prev: np.ndarray
    c_prev: np.ndarray
    gates: np.ndarray  # (B, 4H) post-activation: [i, f, o, g]
    c: np.ndarray
    h: np.ndarray
    mask: Optional[np.ndarray] = None


class LSTM:
    """A single-layer LSTM operating on batches of padded sequences."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        name: str = "lstm",
    ) -> None:
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.weight_x = Parameter.uniform((input_dim, 4 * hidden_dim), rng, name=f"{name}.weight_x")
        self.weight_h = Parameter.uniform((hidden_dim, 4 * hidden_dim), rng, name=f"{name}.weight_h")
        self.bias = Parameter(np.zeros(4 * hidden_dim), name=f"{name}.bias")

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------

    def _gates(
        self, x: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The shared gate equations: returns (h, c, i, f, o, g).

        Both :meth:`step` (training, with cache) and :meth:`step_infer`
        (decoding, cache-free) go through this single implementation, so the
        two paths can never diverge numerically.
        """
        hidden = self.hidden_dim
        pre = x @ self.weight_x.value + h_prev @ self.weight_h.value + self.bias.value
        i = sigmoid(pre[:, :hidden])
        f = sigmoid(pre[:, hidden : 2 * hidden])
        o = sigmoid(pre[:, 2 * hidden : 3 * hidden])
        g = tanh(pre[:, 3 * hidden :])
        c = i * g + f * c_prev
        h = o * np.tanh(c)
        return h, c, i, f, o, g

    def step(
        self,
        x: np.ndarray,
        h_prev: np.ndarray,
        c_prev: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray, LSTMStepCache]:
        """One time step for a batch: returns (h, c, cache)."""
        h, c, i, f, o, g = self._gates(x, h_prev, c_prev)
        if mask is not None:
            keep = mask[:, None]
            h = keep * h + (1.0 - keep) * h_prev
            c = keep * c + (1.0 - keep) * c_prev
        cache = LSTMStepCache(
            x=x, h_prev=h_prev, c_prev=c_prev,
            gates=np.concatenate([i, f, o, g], axis=1), c=c, h=h, mask=mask,
        )
        return h, c, cache

    def step_infer(
        self,
        x: np.ndarray,
        h_prev: np.ndarray,
        c_prev: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One inference-only time step: (h, c) without a backward cache.

        The same :meth:`_gates` math as :meth:`step` but no
        :class:`LSTMStepCache` allocation — this is what the batched
        beam-search decoder calls once per timestep for all live beams at
        once (a ``(K, H)`` state matrix instead of K batch-1 calls).
        """
        h, c, _, _, _, _ = self._gates(x, h_prev, c_prev)
        return h, c

    def forward(
        self,
        inputs: np.ndarray,
        mask: Optional[np.ndarray] = None,
        h0: Optional[np.ndarray] = None,
        c0: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[LSTMStepCache]]:
        """Run the full sequence.

        ``inputs`` has shape (B, T, D); ``mask`` (B, T) with 1 for real tokens.
        Returns hidden states (B, T, H), final h, final c, and per-step caches.
        """
        batch, steps, _ = inputs.shape
        h = np.zeros((batch, self.hidden_dim)) if h0 is None else h0.copy()
        c = np.zeros((batch, self.hidden_dim)) if c0 is None else c0.copy()
        outputs = np.zeros((batch, steps, self.hidden_dim))
        caches: list[LSTMStepCache] = []
        for t in range(steps):
            step_mask = mask[:, t] if mask is not None else None
            h, c, cache = self.step(inputs[:, t, :], h, c, mask=step_mask)
            outputs[:, t, :] = h
            caches.append(cache)
        return outputs, h, c, caches

    # ------------------------------------------------------------------
    # backward
    # ------------------------------------------------------------------

    def backward_step(
        self,
        cache: LSTMStepCache,
        grad_h: np.ndarray,
        grad_c: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward through one step.

        Returns gradients w.r.t. the step input x, the previous hidden state,
        and the previous cell state; parameter gradients are accumulated.
        """
        hidden = self.hidden_dim
        i = cache.gates[:, :hidden]
        f = cache.gates[:, hidden : 2 * hidden]
        o = cache.gates[:, 2 * hidden : 3 * hidden]
        g = cache.gates[:, 3 * hidden :]

        if cache.mask is not None:
            keep = cache.mask[:, None]
            grad_h_prev_passthrough = grad_h * (1.0 - keep)
            grad_c_prev_passthrough = grad_c * (1.0 - keep)
            grad_h = grad_h * keep
            grad_c = grad_c * keep
        else:
            grad_h_prev_passthrough = 0.0
            grad_c_prev_passthrough = 0.0

        tanh_c = np.tanh(cache.c)
        grad_o = grad_h * tanh_c
        grad_c_total = grad_c + grad_h * o * (1.0 - tanh_c ** 2)
        grad_i = grad_c_total * g
        grad_g = grad_c_total * i
        grad_f = grad_c_total * cache.c_prev
        grad_c_prev = grad_c_total * f

        d_pre_i = grad_i * i * (1.0 - i)
        d_pre_f = grad_f * f * (1.0 - f)
        d_pre_o = grad_o * o * (1.0 - o)
        d_pre_g = grad_g * (1.0 - g ** 2)
        d_pre = np.concatenate([d_pre_i, d_pre_f, d_pre_o, d_pre_g], axis=1)

        self.weight_x.grad += cache.x.T @ d_pre
        self.weight_h.grad += cache.h_prev.T @ d_pre
        self.bias.grad += d_pre.sum(axis=0)

        grad_x = d_pre @ self.weight_x.value.T
        grad_h_prev = d_pre @ self.weight_h.value.T + grad_h_prev_passthrough
        grad_c_prev = grad_c_prev + grad_c_prev_passthrough
        return grad_x, grad_h_prev, grad_c_prev

    def backward(
        self,
        caches: list[LSTMStepCache],
        grad_outputs: np.ndarray,
        grad_h_final: Optional[np.ndarray] = None,
        grad_c_final: Optional[np.ndarray] = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward through the whole sequence.

        ``grad_outputs`` has shape (B, T, H): the gradient flowing into each
        per-step hidden state.  Returns the gradient w.r.t. the inputs
        (B, T, D) and the initial hidden/cell states.
        """
        batch, steps, _ = grad_outputs.shape
        grad_inputs = np.zeros((batch, steps, self.input_dim))
        grad_h = np.zeros((batch, self.hidden_dim)) if grad_h_final is None else grad_h_final.copy()
        grad_c = np.zeros((batch, self.hidden_dim)) if grad_c_final is None else grad_c_final.copy()
        for t in reversed(range(steps)):
            grad_h = grad_h + grad_outputs[:, t, :]
            grad_x, grad_h, grad_c = self.backward_step(caches[t], grad_h, grad_c)
            grad_inputs[:, t, :] = grad_x
        return grad_inputs, grad_h, grad_c

    def parameters(self) -> list[Parameter]:
        return [self.weight_x, self.weight_h, self.bias]

    @property
    def recurrent_connection_count(self) -> int:
        """Number of recurrent weights (the quantity reported in paper Table 3)."""
        return int(self.weight_x.size + self.weight_h.size + self.bias.size)
