"""Parameter container plus dense and embedding layers."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelConfigError

#: the uniform initialization range used throughout the paper's model
INIT_RANGE = 0.1


class Parameter:
    """A trainable array with its accumulated gradient.

    ``dtype`` defaults to float64 (exact parity with the original paper
    math); float32 halves memory/bandwidth and is threaded down from
    ``Seq2SeqConfig.dtype``.  The gradient always shares the value's dtype.

    Two LANTERN-ZERO extensions live here:

    * **mmap adoption** — :meth:`adopt` swaps the value for a read-only
      array mapped straight out of a checkpoint file, so N forked serving
      workers share one physical copy of the weight pages.  The gradient
      buffer is allocated *lazily* (first access), which keeps a pure
      inference process from ever materializing a private grad copy;
      :meth:`materialize` copies the value back into private writable
      memory the moment training needs it (copy-on-train).
    * **inference replicas** — :meth:`set_infer` attaches a quantized (or
      otherwise reduced-precision) compute replica that :attr:`infer_value`
      serves to the inference-only code paths.  With no replica attached,
      ``infer_value`` *is* ``value`` (the same object), so the default
      decode path stays bit-identical to training weights.
    """

    def __init__(
        self, value: np.ndarray, name: str = "", dtype: np.dtype | type = np.float64
    ) -> None:
        self.value = np.asarray(value, dtype=dtype)
        self._grad: np.ndarray | None = None
        self.name = name
        self.mmap_backed = False
        self._infer_value: np.ndarray | None = None

    @classmethod
    def uniform(
        cls,
        shape: tuple[int, ...],
        rng: np.random.Generator,
        name: str = "",
        dtype: np.dtype | type = np.float64,
    ) -> "Parameter":
        # the rng draw is always float64, then cast: a float32 model's
        # initialization is the rounded float64 initialization, and the rng
        # stream position is dtype-independent
        return cls(rng.uniform(-INIT_RANGE, INIT_RANGE, size=shape), name=name, dtype=dtype)

    # -- gradient (lazy) ---------------------------------------------------

    @property
    def grad(self) -> np.ndarray:
        if self._grad is None:
            self._grad = np.zeros(self.value.shape, dtype=self.value.dtype)
        return self._grad

    @grad.setter
    def grad(self, array: np.ndarray) -> None:
        self._grad = array

    def zero_grad(self) -> None:
        if self._grad is not None:
            self._grad.fill(0.0)

    # -- mmap adoption / copy-on-train ------------------------------------

    def adopt(self, array: np.ndarray, mmap_backed: bool = True) -> None:
        """Adopt ``array`` (typically a read-only mmap view) as the value.

        No copy is made; the (possibly unallocated) gradient is dropped so
        an inference-only process never touches private weight memory.
        """
        if array.shape != self.value.shape:
            raise ModelConfigError(
                f"cannot adopt array of shape {array.shape} into parameter "
                f"{self.name!r} of shape {self.value.shape}"
            )
        self.value = array
        self._grad = None
        self.mmap_backed = mmap_backed

    def materialize(self) -> None:
        """Ensure the value lives in private writable memory (copy-on-train)."""
        if self.mmap_backed or not self.value.flags.writeable:
            self.value = np.array(self.value)
            self.mmap_backed = False

    # -- inference replicas (quantized decode) ----------------------------

    @property
    def infer_value(self) -> np.ndarray:
        """The array inference paths compute with: the attached reduced-
        precision replica if one exists, else ``value`` itself (same object,
        so the unquantized decode path is bit-identical to training)."""
        return self._infer_value if self._infer_value is not None else self.value

    def set_infer(self, array: np.ndarray) -> None:
        self._infer_value = array

    def clear_infer(self) -> None:
        self._infer_value = None

    @property
    def size(self) -> int:
        return int(self.value.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Dense:
    """A fully connected layer ``y = x W + b``."""

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        rng: np.random.Generator,
        name: str = "dense",
        dtype: np.dtype | type = np.float64,
    ) -> None:
        self.weight = Parameter.uniform((input_dim, output_dim), rng, name=f"{name}.weight", dtype=dtype)
        self.bias = Parameter(np.zeros(output_dim), name=f"{name}.bias", dtype=dtype)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weight.value + self.bias.value

    def forward_infer(self, x: np.ndarray) -> np.ndarray:
        """Inference-only projection through the (possibly quantized)
        inference replicas; identical to :meth:`forward` when none are set."""
        return x @ self.weight.infer_value + self.bias.infer_value

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients and return the gradient w.r.t. ``x``."""
        flat_x = x.reshape(-1, x.shape[-1])
        flat_grad = grad_output.reshape(-1, grad_output.shape[-1])
        self.weight.grad += flat_x.T @ flat_grad
        self.bias.grad += flat_grad.sum(axis=0)
        return grad_output @ self.weight.value.T

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class Embedding:
    """A token-id to vector lookup table, optionally initialized from pre-trained vectors."""

    def __init__(
        self,
        vocabulary_size: int,
        dimension: int,
        rng: np.random.Generator,
        pretrained: np.ndarray | None = None,
        trainable: bool = True,
        name: str = "embedding",
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if pretrained is not None:
            if pretrained.shape != (vocabulary_size, dimension):
                raise ModelConfigError(
                    f"pretrained matrix has shape {pretrained.shape}, expected "
                    f"{(vocabulary_size, dimension)}"
                )
            initial = np.array(pretrained)
        else:
            initial = rng.uniform(-INIT_RANGE, INIT_RANGE, size=(vocabulary_size, dimension))
        self.table = Parameter(initial, name=f"{name}.table", dtype=dtype)
        self.trainable = trainable
        self.dimension = dimension
        self.vocabulary_size = vocabulary_size

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        return self.table.value[token_ids]

    def lookup(self, token_ids: np.ndarray) -> np.ndarray:
        """Inference-time row gather for a flat id vector, shape (M,) → (M, D).

        Beam search feeds the last emitted token of every live beam through
        this in one call per timestep (the fused (M, D) decoder input) rather
        than one batch-1 ``forward`` per beam.  Gathers from the table's
        ``infer_value`` — the same array as :meth:`forward` uses unless a
        quantized inference replica is attached, so the training and
        inference gathers can never diverge on the default path.
        """
        return self.table.infer_value[np.asarray(token_ids, dtype=np.int64)]

    def backward(self, token_ids: np.ndarray, grad_output: np.ndarray) -> None:
        if not self.trainable:
            return
        flat_ids = np.asarray(token_ids).reshape(-1)
        flat_grad = grad_output.reshape(-1, grad_output.shape[-1])
        np.add.at(self.table.grad, flat_ids, flat_grad)

    def parameters(self) -> list[Parameter]:
        return [self.table] if self.trainable else []
