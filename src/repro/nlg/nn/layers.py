"""Parameter container plus dense and embedding layers."""

from __future__ import annotations

import numpy as np

from repro.errors import ModelConfigError

#: the uniform initialization range used throughout the paper's model
INIT_RANGE = 0.1


class Parameter:
    """A trainable array with its accumulated gradient.

    ``dtype`` defaults to float64 (exact parity with the original paper
    math); float32 halves memory/bandwidth and is threaded down from
    ``Seq2SeqConfig.dtype``.  The gradient always shares the value's dtype.
    """

    def __init__(
        self, value: np.ndarray, name: str = "", dtype: np.dtype | type = np.float64
    ) -> None:
        self.value = np.asarray(value, dtype=dtype)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @classmethod
    def uniform(
        cls,
        shape: tuple[int, ...],
        rng: np.random.Generator,
        name: str = "",
        dtype: np.dtype | type = np.float64,
    ) -> "Parameter":
        # the rng draw is always float64, then cast: a float32 model's
        # initialization is the rounded float64 initialization, and the rng
        # stream position is dtype-independent
        return cls(rng.uniform(-INIT_RANGE, INIT_RANGE, size=shape), name=name, dtype=dtype)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def size(self) -> int:
        return int(self.value.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Dense:
    """A fully connected layer ``y = x W + b``."""

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        rng: np.random.Generator,
        name: str = "dense",
        dtype: np.dtype | type = np.float64,
    ) -> None:
        self.weight = Parameter.uniform((input_dim, output_dim), rng, name=f"{name}.weight", dtype=dtype)
        self.bias = Parameter(np.zeros(output_dim), name=f"{name}.bias", dtype=dtype)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weight.value + self.bias.value

    def backward(self, x: np.ndarray, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients and return the gradient w.r.t. ``x``."""
        flat_x = x.reshape(-1, x.shape[-1])
        flat_grad = grad_output.reshape(-1, grad_output.shape[-1])
        self.weight.grad += flat_x.T @ flat_grad
        self.bias.grad += flat_grad.sum(axis=0)
        return grad_output @ self.weight.value.T

    def parameters(self) -> list[Parameter]:
        return [self.weight, self.bias]


class Embedding:
    """A token-id to vector lookup table, optionally initialized from pre-trained vectors."""

    def __init__(
        self,
        vocabulary_size: int,
        dimension: int,
        rng: np.random.Generator,
        pretrained: np.ndarray | None = None,
        trainable: bool = True,
        name: str = "embedding",
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if pretrained is not None:
            if pretrained.shape != (vocabulary_size, dimension):
                raise ModelConfigError(
                    f"pretrained matrix has shape {pretrained.shape}, expected "
                    f"{(vocabulary_size, dimension)}"
                )
            initial = np.array(pretrained)
        else:
            initial = rng.uniform(-INIT_RANGE, INIT_RANGE, size=(vocabulary_size, dimension))
        self.table = Parameter(initial, name=f"{name}.table", dtype=dtype)
        self.trainable = trainable
        self.dimension = dimension
        self.vocabulary_size = vocabulary_size

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        return self.table.value[token_ids]

    def lookup(self, token_ids: np.ndarray) -> np.ndarray:
        """Inference-time row gather for a flat id vector, shape (M,) → (M, D).

        Beam search feeds the last emitted token of every live beam through
        this in one call per timestep (the fused (M, D) decoder input) rather
        than one batch-1 ``forward`` per beam.  Delegates to :meth:`forward`
        so the training and inference gathers can never diverge.
        """
        return self.forward(np.asarray(token_ids, dtype=np.int64))

    def backward(self, token_ids: np.ndarray, grad_output: np.ndarray) -> None:
        if not self.trainable:
            return
        flat_ids = np.asarray(token_ids).reshape(-1)
        flat_grad = grad_output.reshape(-1, grad_output.shape[-1])
        np.add.at(self.table.grad, flat_ids, flat_grad)

    def parameters(self) -> list[Parameter]:
        return [self.table] if self.trainable else []
