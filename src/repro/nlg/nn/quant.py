"""Reduced-precision inference replicas (LANTERN-ZERO quantized decode).

NumPy has no int8 GEMM, and pure float16 matmuls fall back to a slow
software path — so both quantization modes build a *float32 compute
replica* and the speedup comes from BLAS sgemm running ~2x faster than
the float64 dgemm the training weights would use (half the memory
bandwidth per operand).  What distinguishes the modes is the rounding
applied before the float32 cast:

* ``int8`` — per-row absmax affine quantization for 2-D weight matrices:
  each row is scaled into [-127, 127], rounded to int8, then dequantized
  into float32.  The int8 grid is what bounds the error; the replica is
  its exact float32 image.  1-D parameters (biases, score vectors) are
  kept at float32 precision — they are O(hidden) values whose
  quantization would cost accuracy for no measurable speed.
* ``float16`` — weights are rounded through IEEE half precision and
  stored as float32 for compute.

The replicas attach to :class:`~repro.nlg.nn.layers.Parameter` via
``set_infer`` and never touch ``value``; checkpoints always store the
original full-precision weights and re-quantize deterministically on
load (the mode travels in the manifest via ``Seq2SeqConfig.quantize``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelConfigError

#: supported values of ``Seq2SeqConfig.quantize``
QUANTIZE_MODES = ("none", "int8", "float16")


def validate_quantize_mode(mode: str) -> str:
    if mode not in QUANTIZE_MODES:
        raise ModelConfigError(
            f"unsupported quantize mode {mode!r}; expected one of {QUANTIZE_MODES}"
        )
    return mode


def quantize_int8_rowwise(value: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Quantize a 2-D matrix to int8 codes with per-row absmax scales.

    Returns ``(codes, scales)`` where ``codes * scales`` reconstructs the
    matrix on the int8 grid; all-zero rows get scale 1.0 so the division
    is always well-defined.
    """
    if value.ndim != 2:
        raise ModelConfigError(
            f"int8 row-wise quantization expects a 2-D matrix, got shape {value.shape}"
        )
    absmax = np.max(np.abs(value), axis=1, keepdims=True)
    scales = np.where(absmax > 0, absmax / 127.0, 1.0)
    codes = np.clip(np.rint(value / scales), -127, 127).astype(np.int8)
    return codes, scales


def infer_replica(value: np.ndarray, mode: str) -> np.ndarray:
    """Build the float32 compute replica of ``value`` for ``mode``.

    Deterministic: the same weights and mode always produce the same
    replica, which is what lets checkpoints re-quantize on load instead
    of persisting the replica.
    """
    validate_quantize_mode(mode)
    if mode == "none":
        raise ModelConfigError("mode 'none' has no replica; clear the infer value instead")
    if mode == "float16":
        return value.astype(np.float16).astype(np.float32)
    # int8: only 2-D matrices ride the int8 grid; 1-D parameters stay float32
    if value.ndim != 2:
        return value.astype(np.float32)
    codes, scales = quantize_int8_rowwise(value)
    return codes.astype(np.float32) * scales.astype(np.float32)
