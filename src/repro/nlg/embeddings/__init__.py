"""Word embeddings trained from scratch.

The paper initializes the QEP2Seq decoder with pre-trained Word2Vec, GloVe,
BERT, or ELMo vectors (and compares them with self-trained variants trained
only on RULE-LANTERN output).  Offline we cannot download those models, so
each family is trained here on synthetic corpora:

* :mod:`word2vec` — skip-gram with negative sampling;
* :mod:`glove`    — the GloVe weighted least-squares objective on a
  co-occurrence matrix, optimized with AdaGrad;
* :mod:`contextual` — two context-sensitive objectives standing in for the
  deep contextual models: a masked-token (BERT-style) objective and a
  bidirectional language-model (ELMo-style) objective;
* :mod:`corpus`   — the pre-training corpora ("pre-trained" = large general
  database-domain corpus, "self-trained" = RULE-LANTERN output only);
* :mod:`registry` — dimension table (Table 3) and a uniform construction API.
"""

from repro.nlg.embeddings.corpus import build_general_corpus, build_self_trained_corpus
from repro.nlg.embeddings.registry import (
    EMBEDDING_DIMENSIONS,
    EMBEDDING_FAMILIES,
    build_embedding_matrix,
)

__all__ = [
    "EMBEDDING_DIMENSIONS",
    "EMBEDDING_FAMILIES",
    "build_embedding_matrix",
    "build_general_corpus",
    "build_self_trained_corpus",
]
