"""GloVe: weighted least squares on the log co-occurrence matrix, with AdaGrad."""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.nlg.embeddings.word2vec import build_training_vocabulary
from repro.nlg.vocab import Vocabulary


def cooccurrence_counts(
    corpus: Sequence[Sequence[str]], vocabulary: Vocabulary, window: int = 4
) -> dict[tuple[int, int], float]:
    """Distance-weighted co-occurrence counts within a symmetric window."""
    counts: Counter = Counter()
    for sentence in corpus:
        ids = [vocabulary.id_of(token) for token in sentence]
        for position, center in enumerate(ids):
            end = min(len(ids), position + window + 1)
            for context_position in range(position + 1, end):
                distance = context_position - position
                weight = 1.0 / distance
                counts[(center, ids[context_position])] += weight
                counts[(ids[context_position], center)] += weight
    return dict(counts)


class GloveTrainer:
    """The GloVe objective: sum f(X_ij) (w_i·w~_j + b_i + b~_j − log X_ij)²."""

    def __init__(
        self,
        vocabulary: Vocabulary,
        dimension: int = 100,
        x_max: float = 100.0,
        alpha: float = 0.75,
        learning_rate: float = 0.05,
        seed: int = 5,
    ) -> None:
        self.vocabulary = vocabulary
        self.dimension = dimension
        self.x_max = x_max
        self.alpha = alpha
        self.learning_rate = learning_rate
        rng = np.random.default_rng(seed)
        size = len(vocabulary)
        scale = 0.5 / dimension
        self.main_vectors = rng.uniform(-scale, scale, size=(size, dimension))
        self.context_vectors = rng.uniform(-scale, scale, size=(size, dimension))
        self.main_bias = np.zeros(size)
        self.context_bias = np.zeros(size)
        self._grad_squared = [
            np.ones((size, dimension)), np.ones((size, dimension)), np.ones(size), np.ones(size)
        ]
        self._rng = rng

    def train(self, cooccurrences: dict[tuple[int, int], float], epochs: int = 10) -> "GloveTrainer":
        if not cooccurrences:
            return self
        pairs = np.array(list(cooccurrences.keys()), dtype=np.int64)
        values = np.array(list(cooccurrences.values()), dtype=np.float64)
        log_values = np.log(values)
        weights = np.minimum((values / self.x_max) ** self.alpha, 1.0)
        for _ in range(epochs):
            order = self._rng.permutation(len(values))
            for index in order:
                i, j = pairs[index]
                weight = weights[index]
                inner = (
                    float(self.main_vectors[i] @ self.context_vectors[j])
                    + self.main_bias[i]
                    + self.context_bias[j]
                    - log_values[index]
                )
                factor = weight * inner
                grad_main = factor * self.context_vectors[j]
                grad_context = factor * self.main_vectors[i]
                self.main_vectors[i] -= self.learning_rate * grad_main / np.sqrt(self._grad_squared[0][i])
                self.context_vectors[j] -= self.learning_rate * grad_context / np.sqrt(self._grad_squared[1][j])
                self.main_bias[i] -= self.learning_rate * factor / np.sqrt(self._grad_squared[2][i])
                self.context_bias[j] -= self.learning_rate * factor / np.sqrt(self._grad_squared[3][j])
                self._grad_squared[0][i] += grad_main ** 2
                self._grad_squared[1][j] += grad_context ** 2
                self._grad_squared[2][i] += factor ** 2
                self._grad_squared[3][j] += factor ** 2
        return self

    def embedding_matrix(self, target_vocabulary: Vocabulary) -> np.ndarray:
        """GloVe convention: the sum of main and context vectors."""
        combined = self.main_vectors + self.context_vectors
        matrix = np.zeros((len(target_vocabulary), self.dimension))
        for index, token in enumerate(target_vocabulary.tokens):
            if token in self.vocabulary:
                matrix[index] = combined[self.vocabulary.id_of(token)]
        return matrix


def train_glove(
    corpus: Sequence[Sequence[str]],
    dimension: int = 100,
    window: int = 4,
    epochs: int = 8,
    seed: int = 5,
) -> GloveTrainer:
    """Train GloVe vectors on a tokenized corpus."""
    vocabulary = build_training_vocabulary(corpus)
    cooccurrences = cooccurrence_counts(corpus, vocabulary, window=window)
    trainer = GloveTrainer(vocabulary, dimension=dimension, seed=seed)
    return trainer.train(cooccurrences, epochs=epochs)
