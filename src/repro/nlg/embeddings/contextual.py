"""Context-sensitive embedding objectives standing in for BERT and ELMo.

The real models cannot be downloaded offline, so each is replaced by the
*training signal* that characterizes it, implemented on the shared
negative-sampling trainer:

* **BERT-style**: a masked-token objective — the masked center word is
  predicted from *both* sides of its context window (bidirectional context,
  like BERT's masked-language-model loss);
* **ELMo-style**: a bidirectional language-model objective — a forward model
  predicts the next token from preceding context and a backward model the
  previous token from following context; the exported embedding is the
  concatenation of the two directional vectors, as ELMo concatenates the
  states of its two LSTM directions.

Both therefore produce vectors shaped by context in a way plain skip-gram is
not, while remaining cheap enough to train inside a test suite.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nlg.embeddings.word2vec import SgnsTrainer, build_training_vocabulary
from repro.nlg.vocab import Vocabulary


def masked_token_pairs(
    corpus: Sequence[Sequence[str]], vocabulary: Vocabulary, window: int = 4
) -> tuple[np.ndarray, np.ndarray]:
    """(masked center, bidirectional context) pairs — the BERT-style signal."""
    centers: list[int] = []
    contexts: list[int] = []
    for sentence in corpus:
        ids = [vocabulary.id_of(token) for token in sentence]
        for position, center in enumerate(ids):
            start = max(0, position - window)
            end = min(len(ids), position + window + 1)
            for context_position in range(start, end):
                if context_position == position:
                    continue
                centers.append(center)
                contexts.append(ids[context_position])
    return np.asarray(centers, dtype=np.int64), np.asarray(contexts, dtype=np.int64)


def directional_pairs(
    corpus: Sequence[Sequence[str]], vocabulary: Vocabulary, window: int, forward: bool
) -> tuple[np.ndarray, np.ndarray]:
    """(token, following-context) pairs for the forward model, or preceding for backward."""
    centers: list[int] = []
    contexts: list[int] = []
    for sentence in corpus:
        ids = [vocabulary.id_of(token) for token in sentence]
        for position, center in enumerate(ids):
            if forward:
                neighbours = ids[position + 1 : position + 1 + window]
            else:
                neighbours = ids[max(0, position - window) : position]
            for neighbour in neighbours:
                centers.append(center)
                contexts.append(neighbour)
    return np.asarray(centers, dtype=np.int64), np.asarray(contexts, dtype=np.int64)


class BertStyleEmbeddings:
    """Masked-token-objective embeddings (dimension 768 by default, per Table 3)."""

    def __init__(self, dimension: int = 768, window: int = 4, epochs: int = 2, seed: int = 17) -> None:
        self.dimension = dimension
        self.window = window
        self.epochs = epochs
        self.seed = seed
        self._trainer: SgnsTrainer | None = None

    def fit(self, corpus: Sequence[Sequence[str]]) -> "BertStyleEmbeddings":
        vocabulary = build_training_vocabulary(corpus)
        centers, contexts = masked_token_pairs(corpus, vocabulary, window=self.window)
        self._trainer = SgnsTrainer(vocabulary, self.dimension, seed=self.seed)
        self._trainer.train(centers, contexts, epochs=self.epochs)
        return self

    def embedding_matrix(self, target_vocabulary: Vocabulary) -> np.ndarray:
        if self._trainer is None:
            raise RuntimeError("call fit() before embedding_matrix()")
        return self._trainer.embedding_matrix(target_vocabulary)


class ElmoStyleEmbeddings:
    """Bidirectional language-model embeddings (dimension 1024 = 2 × 512 by default)."""

    def __init__(self, dimension: int = 1024, window: int = 3, epochs: int = 2, seed: int = 19) -> None:
        if dimension % 2:
            raise ValueError("ELMo-style dimension must be even (two directions are concatenated)")
        self.dimension = dimension
        self.window = window
        self.epochs = epochs
        self.seed = seed
        self._forward: SgnsTrainer | None = None
        self._backward: SgnsTrainer | None = None

    def fit(self, corpus: Sequence[Sequence[str]]) -> "ElmoStyleEmbeddings":
        vocabulary = build_training_vocabulary(corpus)
        half = self.dimension // 2
        forward_centers, forward_contexts = directional_pairs(corpus, vocabulary, self.window, forward=True)
        backward_centers, backward_contexts = directional_pairs(corpus, vocabulary, self.window, forward=False)
        self._forward = SgnsTrainer(vocabulary, half, seed=self.seed)
        self._forward.train(forward_centers, forward_contexts, epochs=self.epochs)
        self._backward = SgnsTrainer(vocabulary, half, seed=self.seed + 1)
        self._backward.train(backward_centers, backward_contexts, epochs=self.epochs)
        return self

    def embedding_matrix(self, target_vocabulary: Vocabulary) -> np.ndarray:
        if self._forward is None or self._backward is None:
            raise RuntimeError("call fit() before embedding_matrix()")
        forward = self._forward.embedding_matrix(target_vocabulary)
        backward = self._backward.embedding_matrix(target_vocabulary)
        return np.concatenate([forward, backward], axis=1)
