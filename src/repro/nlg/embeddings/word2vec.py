"""Skip-gram Word2Vec with negative sampling, in NumPy."""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.nlg.nn.functional import sigmoid
from repro.nlg.vocab import Vocabulary


def build_training_vocabulary(corpus: Sequence[Sequence[str]], min_count: int = 1) -> Vocabulary:
    """The vocabulary of the pre-training corpus (independent of the model vocab)."""
    counts = Counter(token for sentence in corpus for token in sentence)
    return Vocabulary(token for token, count in counts.most_common() if count >= min_count)


def skipgram_pairs(
    corpus: Sequence[Sequence[str]], vocabulary: Vocabulary, window: int = 3
) -> tuple[np.ndarray, np.ndarray]:
    """(center, context) id pairs within a symmetric window."""
    centers: list[int] = []
    contexts: list[int] = []
    for sentence in corpus:
        ids = [vocabulary.id_of(token) for token in sentence]
        for position, center in enumerate(ids):
            start = max(0, position - window)
            end = min(len(ids), position + window + 1)
            for context_position in range(start, end):
                if context_position == position:
                    continue
                centers.append(center)
                contexts.append(ids[context_position])
    return np.asarray(centers, dtype=np.int64), np.asarray(contexts, dtype=np.int64)


class SgnsTrainer:
    """Skip-gram-with-negative-sampling over arbitrary (center, context) pairs.

    The contextual embedding families reuse this trainer with different pair
    generators (masked-token pairs for the BERT-style objective, directional
    pairs for the ELMo-style objective).
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        dimension: int,
        negative_samples: int = 5,
        learning_rate: float = 0.05,
        seed: int = 3,
    ) -> None:
        self.vocabulary = vocabulary
        self.dimension = dimension
        self.negative_samples = negative_samples
        self.learning_rate = learning_rate
        rng = np.random.default_rng(seed)
        scale = 0.5 / dimension
        self.input_vectors = rng.uniform(-scale, scale, size=(len(vocabulary), dimension))
        self.output_vectors = np.zeros((len(vocabulary), dimension))
        self._rng = rng

    def train(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        epochs: int = 3,
        batch_size: int = 512,
    ) -> "SgnsTrainer":
        """Run SGD over the pair set for ``epochs`` passes."""
        vocabulary_size = len(self.vocabulary)
        count = len(centers)
        if count == 0:
            return self
        for _ in range(epochs):
            order = self._rng.permutation(count)
            for start in range(0, count, batch_size):
                batch = order[start : start + batch_size]
                center_ids = centers[batch]
                context_ids = contexts[batch]
                negative_ids = self._rng.integers(
                    0, vocabulary_size, size=(len(batch), self.negative_samples)
                )
                self._update(center_ids, context_ids, negative_ids)
        return self

    def _update(
        self, center_ids: np.ndarray, context_ids: np.ndarray, negative_ids: np.ndarray
    ) -> None:
        center_vectors = self.input_vectors[center_ids]  # (B, D)
        positive_vectors = self.output_vectors[context_ids]  # (B, D)
        negative_vectors = self.output_vectors[negative_ids]  # (B, K, D)

        positive_scores = sigmoid(np.sum(center_vectors * positive_vectors, axis=1))  # (B,)
        negative_scores = sigmoid(np.einsum("bd,bkd->bk", center_vectors, negative_vectors))  # (B, K)

        positive_gradient = (positive_scores - 1.0)[:, None]  # (B, 1)
        negative_gradient = negative_scores[:, :, None]  # (B, K, 1)

        grad_center = positive_gradient * positive_vectors + np.einsum(
            "bkd->bd", negative_gradient * negative_vectors
        )
        grad_positive = positive_gradient * center_vectors
        grad_negative = negative_gradient * center_vectors[:, None, :]

        learning_rate = self.learning_rate
        np.add.at(self.input_vectors, center_ids, -learning_rate * grad_center)
        np.add.at(self.output_vectors, context_ids, -learning_rate * grad_positive)
        np.add.at(
            self.output_vectors,
            negative_ids.reshape(-1),
            -learning_rate * grad_negative.reshape(-1, self.dimension),
        )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def vector_for(self, token: str) -> np.ndarray:
        return self.input_vectors[self.vocabulary.id_of(token)]

    def embedding_matrix(self, target_vocabulary: Vocabulary) -> np.ndarray:
        """Project the learned vectors onto another vocabulary (unknowns ≈ 0)."""
        matrix = np.zeros((len(target_vocabulary), self.dimension))
        for index, token in enumerate(target_vocabulary.tokens):
            if token in self.vocabulary:
                matrix[index] = self.input_vectors[self.vocabulary.id_of(token)]
        return matrix


def train_word2vec(
    corpus: Sequence[Sequence[str]],
    dimension: int = 128,
    window: int = 3,
    epochs: int = 3,
    seed: int = 3,
) -> SgnsTrainer:
    """Train skip-gram Word2Vec on a tokenized corpus."""
    vocabulary = build_training_vocabulary(corpus)
    centers, contexts = skipgram_pairs(corpus, vocabulary, window=window)
    trainer = SgnsTrainer(vocabulary, dimension, seed=seed)
    return trainer.train(centers, contexts, epochs=epochs)
