"""Pre-training corpora for the embedding trainers.

``build_self_trained_corpus`` contains only RULE-LANTERN output (the paper's
"self-trained" condition, whose vectors underperform because the corpus is
tiny and repetitive).  ``build_general_corpus`` is the stand-in for the large
external corpora (Wikipedia, books) the real pre-trained vectors come from:
a much larger, more varied set of sentences about data management, query
processing, and general usage of the same vocabulary.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.nlg.tokenizer import tokenize

_SUBJECTS = [
    "the database system", "the query engine", "the optimizer", "the student",
    "the instructor", "the application", "the server", "the storage layer",
    "the operator", "the execution plan", "the index", "the table",
]
_VERBS = [
    "reads", "writes", "scans", "sorts", "joins", "filters", "groups",
    "aggregates", "returns", "produces", "stores", "updates", "removes",
    "computes", "evaluates", "selects", "combines", "hashes", "orders",
]
_OBJECTS = [
    "the rows", "the tuples", "the records", "the intermediate relation",
    "the temporary table", "the final results", "the matching rows",
    "the duplicate rows", "the grouped values", "the sorted output",
    "the hash table", "the join condition", "the filtering condition",
    "the requested columns", "the output relation", "every row of the table",
]
_MODIFIERS = [
    "using an index", "using a hash table", "in sorted order", "in parallel",
    "on the join key", "for each group", "for every query", "per partition",
    "with a single pass", "before returning the answer", "after the join",
    "to answer the question", "during query execution", "for the learner",
]
_CONNECTIVES = [
    "and then", "after that", "next", "finally", "in the first step",
    "as a result", "in practice", "for example", "in general",
]


def build_general_corpus(
    extra_sentences: Sequence[str] = (),
    sentence_count: int = 4000,
    seed: int = 97,
) -> list[list[str]]:
    """A large, varied synthetic corpus of database-domain sentences."""
    rng = random.Random(seed)
    sentences: list[list[str]] = []
    for _ in range(sentence_count):
        parts = [rng.choice(_SUBJECTS), rng.choice(_VERBS), rng.choice(_OBJECTS)]
        if rng.random() < 0.7:
            parts.append(rng.choice(_MODIFIERS))
        if rng.random() < 0.3:
            parts = [rng.choice(_CONNECTIVES)] + parts
        if rng.random() < 0.4:
            parts.extend([rng.choice(_CONNECTIVES), rng.choice(_VERBS), rng.choice(_OBJECTS)])
        sentences.append(tokenize(" ".join(parts) + "."))
    for sentence in extra_sentences:
        sentences.append(tokenize(sentence))
    rng.shuffle(sentences)
    return sentences


def build_self_trained_corpus(rule_sentences: Sequence[str]) -> list[list[str]]:
    """The "self-trained" corpus: nothing but RULE-LANTERN output."""
    return [tokenize(sentence) for sentence in rule_sentences]
