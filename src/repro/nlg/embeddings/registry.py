"""Uniform construction API for all embedding families.

The dimensions follow Table 3 of the paper: Word2Vec 128, GloVe 100,
BERT 768, ELMo 1024.  ``build_embedding_matrix`` returns a matrix aligned to
the QEP2Seq output vocabulary, trained on either the large general corpus
("pre-trained") or the RULE-LANTERN-only corpus ("self-trained").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ModelConfigError
from repro.nlg.embeddings.contextual import BertStyleEmbeddings, ElmoStyleEmbeddings
from repro.nlg.embeddings.corpus import build_general_corpus, build_self_trained_corpus
from repro.nlg.embeddings.glove import train_glove
from repro.nlg.embeddings.word2vec import train_word2vec
from repro.nlg.vocab import Vocabulary

#: Table 3 — dimension of each embedding family.
EMBEDDING_DIMENSIONS: dict[str, int] = {
    "word2vec": 128,
    "glove": 100,
    "bert": 768,
    "elmo": 1024,
}

EMBEDDING_FAMILIES = tuple(EMBEDDING_DIMENSIONS)


def build_embedding_matrix(
    family: str,
    vocabulary: Vocabulary,
    rule_sentences: Sequence[str],
    pretrained: bool = True,
    dimension: int | None = None,
    epochs: int = 2,
    seed: int = 31,
) -> np.ndarray:
    """Train the requested embedding family and align it to ``vocabulary``.

    ``pretrained=True`` trains on the large general corpus (plus the rule
    sentences so the model vocabulary is covered); ``pretrained=False`` is the
    paper's "self-trained" condition, using only RULE-LANTERN output.
    """
    family = family.lower()
    if family not in EMBEDDING_DIMENSIONS:
        raise ModelConfigError(
            f"unknown embedding family {family!r}; expected one of {sorted(EMBEDDING_DIMENSIONS)}"
        )
    dimension = dimension or EMBEDDING_DIMENSIONS[family]
    if pretrained:
        corpus = build_general_corpus(extra_sentences=rule_sentences, seed=seed)
    else:
        corpus = build_self_trained_corpus(rule_sentences)
    if not corpus:
        raise ModelConfigError("the pre-training corpus is empty")

    if family == "word2vec":
        trainer = train_word2vec(corpus, dimension=dimension, epochs=epochs, seed=seed)
        return trainer.embedding_matrix(vocabulary)
    if family == "glove":
        trainer = train_glove(corpus, dimension=dimension, epochs=max(epochs, 2), seed=seed)
        return trainer.embedding_matrix(vocabulary)
    if family == "bert":
        model = BertStyleEmbeddings(dimension=dimension, epochs=epochs, seed=seed).fit(corpus)
        return model.embedding_matrix(vocabulary)
    model = ElmoStyleEmbeddings(dimension=dimension, epochs=epochs, seed=seed).fit(corpus)
    return model.embedding_matrix(vocabulary)
