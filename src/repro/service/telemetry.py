"""Live metrics for LANTERN-SERVE (the ``/metrics`` endpoint's backing store).

One :class:`ServiceTelemetry` instance is shared by the HTTP handler threads
and the micro-batch worker, so every recorder takes an internal lock.
Latencies and batch sizes are kept in bounded ring buffers (the most recent
``window`` observations) — percentiles describe the *current* behaviour of
the service, not its whole lifetime, which is what an operator watching a
dashboard needs.

The snapshot also folds in :meth:`repro.nlg.cache.DecodeCache.stats` when a
neural generator is attached, so one ``GET /metrics`` shows request rates,
latency percentiles, batching effectiveness, and cache hit rates side by
side.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Optional, Sequence

#: ring-buffer capacity for latency / batch-size observations
DEFAULT_WINDOW = 2048


def percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` by linear interpolation.

    Implemented here (rather than via numpy) so telemetry stays importable
    in the slimmest deployment; the windows are small enough that sorting
    per snapshot is negligible.
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * fraction
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    weight = rank - lower
    return float(ordered[lower] * (1.0 - weight) + ordered[upper] * weight)


class ServiceTelemetry:
    """Thread-safe aggregation of serving metrics."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._latencies: deque[float] = deque(maxlen=window)
        self._batch_sizes: deque[int] = deque(maxlen=window)
        self._requests_total = 0
        self._batches_total = 0
        self._requests_batched = 0
        self._max_batch_size = 0
        self._by_status: Counter[int] = Counter()
        self._by_format: Counter[str] = Counter()
        self._by_mode: Counter[str] = Counter()
        self._rejected_overload = 0
        self._timed_out = 0

    # ------------------------------------------------------------------
    # recorders
    # ------------------------------------------------------------------

    def record_request(
        self,
        status: int,
        latency_s: float,
        plan_format: Optional[str] = None,
        mode: Optional[str] = None,
    ) -> None:
        """One finished HTTP request (any endpoint outcome)."""
        with self._lock:
            self._requests_total += 1
            self._by_status[status] += 1
            if plan_format:
                self._by_format[plan_format] += 1
            if mode:
                self._by_mode[mode] += 1
            if status == 200:
                self._latencies.append(latency_s)
            elif status == 429:
                self._rejected_overload += 1
            elif status == 503:
                self._timed_out += 1

    def record_batch(self, size: int) -> None:
        """One micro-batch drained from the queue by the worker."""
        with self._lock:
            self._batches_total += 1
            self._requests_batched += size
            self._batch_sizes.append(size)
            self._max_batch_size = max(self._max_batch_size, size)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def snapshot(
        self,
        decode_cache_stats: Optional[dict] = None,
        queue_depth: int = 0,
    ) -> dict:
        """The ``/metrics`` JSON document."""
        with self._lock:
            latencies = list(self._latencies)
            batch_sizes = list(self._batch_sizes)
            uptime = time.monotonic() - self._started
            document = {
                "uptime_s": round(uptime, 3),
                "requests": {
                    "total": self._requests_total,
                    "by_status": {str(k): v for k, v in sorted(self._by_status.items())},
                    "by_format": dict(sorted(self._by_format.items())),
                    "by_mode": dict(sorted(self._by_mode.items())),
                    "rejected_overload": self._rejected_overload,
                    "timed_out": self._timed_out,
                    "per_second": (
                        round(self._requests_total / uptime, 3) if uptime > 0 else 0.0
                    ),
                },
                "latency_ms": {
                    "count": len(latencies),
                    "p50": round(percentile(latencies, 0.50) * 1000.0, 3),
                    "p90": round(percentile(latencies, 0.90) * 1000.0, 3),
                    "p99": round(percentile(latencies, 0.99) * 1000.0, 3),
                    "max": round(max(latencies, default=0.0) * 1000.0, 3),
                },
                "batching": {
                    "batches": self._batches_total,
                    "requests_batched": self._requests_batched,
                    "avg_batch_size": (
                        round(sum(batch_sizes) / len(batch_sizes), 3) if batch_sizes else 0.0
                    ),
                    "max_batch_size": self._max_batch_size,
                    "queue_depth": queue_depth,
                },
            }
        if decode_cache_stats is not None:
            document["decode_cache"] = decode_cache_stats
        return document
