"""Live metrics for LANTERN-SERVE (the ``/metrics`` endpoint's backing store).

One :class:`ServiceTelemetry` instance is shared by the HTTP handler threads
and the micro-batch worker, so every recorder takes an internal lock.

Since LANTERN-SCOPE the backing store is **fixed-bucket histograms**
(:class:`repro.obs.histogram.Histogram`) instead of ring buffers: per-endpoint
request latencies, per-stage latencies (admission / queue wait / batch
assembly / decode / respond, recorded by the tracing-instrumented serving
path), and batch sizes all keep bounded memory forever and render both as
the JSON ``/metrics`` document and as a Prometheus text exposition
(``GET /metrics?format=prometheus``) from the *same* counters — scrapers
and the JSON dashboard can never disagree.

Endpoint hygiene: every request — including ``GET /healthz`` and
``GET /metrics`` — is counted under its endpoint label, but the headline
``latency_ms`` percentiles are computed from the ``POST /narrate`` histogram
alone, so cheap GETs can no longer flatter the narration latency numbers.

The snapshot also folds in :meth:`repro.nlg.cache.DecodeCache.stats` when a
neural generator is attached, so one ``GET /metrics`` shows request rates,
latency percentiles, batching effectiveness, and cache hit rates side by
side.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from typing import Optional

from repro.obs.histogram import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Histogram,
    percentile,
)
from repro.obs.prometheus import PrometheusWriter

__all__ = ["ServiceTelemetry", "percentile", "NARRATE_ENDPOINT"]

#: the endpoint whose histogram feeds the headline latency percentiles
NARRATE_ENDPOINT = "/narrate"


class ServiceTelemetry:
    """Thread-safe aggregation of serving metrics."""

    def __init__(self, window: int = 0) -> None:
        # ``window`` is vestigial (pre-SCOPE ring-buffer size); accepted so
        # existing constructors keep working, ignored by the histograms
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._latency: dict[str, Histogram] = {}
        self._stages: dict[str, Histogram] = {}
        self._batch_sizes = Histogram(DEFAULT_SIZE_BUCKETS)
        self._requests_total = 0
        self._batches_total = 0
        self._requests_batched = 0
        self._by_status: Counter[int] = Counter()
        self._by_endpoint: Counter[str] = Counter()
        self._by_format: Counter[str] = Counter()
        self._by_mode: Counter[str] = Counter()
        self._rejected_overload = 0
        self._timed_out = 0
        self._batches_failed = 0
        self._batch_errors: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # recorders
    # ------------------------------------------------------------------

    def record_request(
        self,
        status: int,
        latency_s: float,
        plan_format: Optional[str] = None,
        mode: Optional[str] = None,
        endpoint: str = NARRATE_ENDPOINT,
    ) -> None:
        """One finished HTTP request (any endpoint, any outcome)."""
        with self._lock:
            self._requests_total += 1
            self._by_status[status] += 1
            self._by_endpoint[endpoint] += 1
            if plan_format:
                self._by_format[plan_format] += 1
            if mode:
                self._by_mode[mode] += 1
            if status == 200:
                histogram = self._latency.get(endpoint)
                if histogram is None:
                    histogram = self._latency[endpoint] = Histogram(DEFAULT_LATENCY_BUCKETS)
                histogram.observe(latency_s)
            elif status == 429 and endpoint == NARRATE_ENDPOINT:
                self._rejected_overload += 1
            elif status == 503 and endpoint == NARRATE_ENDPOINT:
                # only narration rejections count as timeouts — a draining
                # worker's /healthz 503s are lifecycle, not shed load
                self._timed_out += 1

    def record_stage(self, stage: str, seconds: float) -> None:
        """One request's dwell time in one pipeline stage."""
        with self._lock:
            histogram = self._stages.get(stage)
            if histogram is None:
                histogram = self._stages[stage] = Histogram(DEFAULT_LATENCY_BUCKETS)
            histogram.observe(seconds)

    def record_batch(self, size: int) -> None:
        """One micro-batch drained from the queue by the worker."""
        with self._lock:
            self._batches_total += 1
            self._requests_batched += size
            self._batch_sizes.observe(size)

    def record_batch_failure(self, error: BaseException) -> None:
        """A whole-batch decode failure (the ``MicroBatcher._run`` except
        path) — previously invisible to telemetry, now counted per error
        class so an operator can tell a poisoned batch from a dying model."""
        with self._lock:
            self._batches_failed += 1
            self._batch_errors[type(error).__name__] += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def snapshot(
        self,
        decode_cache_stats: Optional[dict] = None,
        queue_depth: int = 0,
    ) -> dict:
        """The ``/metrics`` JSON document."""
        with self._lock:
            uptime = time.monotonic() - self._started
            narrate = self._latency.get(NARRATE_ENDPOINT)
            document = {
                "uptime_s": round(uptime, 3),
                "requests": {
                    "total": self._requests_total,
                    "by_status": {str(k): v for k, v in sorted(self._by_status.items())},
                    "by_endpoint": dict(sorted(self._by_endpoint.items())),
                    "by_format": dict(sorted(self._by_format.items())),
                    "by_mode": dict(sorted(self._by_mode.items())),
                    "rejected_overload": self._rejected_overload,
                    "timed_out": self._timed_out,
                    "per_second": (
                        round(self._requests_total / uptime, 3) if uptime > 0 else 0.0
                    ),
                },
                # headline latency: POST /narrate only (GETs tracked per
                # endpoint below, so they cannot pollute these percentiles)
                "latency_ms": (
                    narrate.snapshot(scale=1000.0, digits=3)
                    if narrate is not None
                    else Histogram(DEFAULT_LATENCY_BUCKETS).snapshot(scale=1000.0, digits=3)
                ),
                "latency_ms_by_endpoint": {
                    endpoint: histogram.snapshot(scale=1000.0, digits=3)
                    for endpoint, histogram in sorted(self._latency.items())
                },
                "stages": {
                    stage: histogram.snapshot(scale=1000.0, digits=3)
                    for stage, histogram in sorted(self._stages.items())
                },
                "batching": {
                    "batches": self._batches_total,
                    "requests_batched": self._requests_batched,
                    "avg_batch_size": round(self._batch_sizes.mean, 3),
                    "max_batch_size": int(self._batch_sizes.max or 0),
                    "queue_depth": queue_depth,
                    "batches_failed": self._batches_failed,
                    "batch_errors": dict(sorted(self._batch_errors.items())),
                },
            }
        if decode_cache_stats is not None:
            document["decode_cache"] = decode_cache_stats
        return document

    def prometheus(
        self,
        decode_cache_stats: Optional[dict] = None,
        rule_memo_stats: Optional[dict] = None,
        queue_depth: int = 0,
        rss_bytes: Optional[int] = None,
    ) -> str:
        """The ``GET /metrics?format=prometheus`` text exposition."""
        writer = PrometheusWriter()
        with self._lock:
            uptime = time.monotonic() - self._started
            writer.counter(
                "requests_total",
                "Finished HTTP requests by endpoint.",
                [({"endpoint": endpoint}, count) for endpoint, count in sorted(self._by_endpoint.items())],
            )
            writer.counter(
                "responses_total",
                "Finished HTTP requests by status code.",
                [({"status": status}, count) for status, count in sorted(self._by_status.items())],
            )
            writer.counter(
                "requests_rejected_total",
                "Requests shed by admission control (429) or timed out (503).",
                [({"reason": "overload"}, self._rejected_overload), ({"reason": "timeout"}, self._timed_out)],
            )
            writer.histogram(
                "request_latency_seconds",
                "End-to-end request latency by endpoint (2xx only).",
                [({"endpoint": endpoint}, histogram) for endpoint, histogram in sorted(self._latency.items())],
            )
            writer.histogram(
                "stage_latency_seconds",
                "Per-stage dwell time of narration requests.",
                [({"stage": stage}, histogram) for stage, histogram in sorted(self._stages.items())],
            )
            writer.counter(
                "batches_total",
                "Micro-batches drained by the decode worker.",
                [(None, self._batches_total)],
            )
            writer.counter(
                "batches_failed_total",
                "Whole-batch decode failures by error class.",
                [(None, self._batches_failed)]
                + [({"error": name}, count) for name, count in sorted(self._batch_errors.items())],
            )
            writer.histogram(
                "batch_size",
                "Requests fused per micro-batch.",
                [(None, self._batch_sizes)],
            )
            writer.gauge("queue_depth", "Narration requests waiting in the queue.", [(None, queue_depth)])
            writer.gauge("uptime_seconds", "Service uptime.", [(None, round(uptime, 3))])
        if rss_bytes is not None:
            writer.gauge("process_resident_bytes", "Resident set size.", [(None, rss_bytes)])
        for prefix, stats in (("decode_cache", decode_cache_stats), ("rule_memo", rule_memo_stats)):
            if not stats:
                continue
            writer.counter(
                f"{prefix}_lookups_total",
                f"{prefix} lookups by outcome.",
                [
                    ({"outcome": "hit"}, stats.get("hits", 0)),
                    ({"outcome": "miss"}, stats.get("misses", 0)),
                ],
            )
            writer.gauge(
                f"{prefix}_entries",
                f"Entries resident in the {prefix}.",
                [(None, stats.get("size", 0))],
            )
        return writer.render()
