"""LANTERN-SERVE: the concurrent narration service.

The serving layer that exposes LANTERN to many clients at once:

* :mod:`repro.service.server` — a stdlib ``ThreadingHTTPServer`` JSON API
  (``POST /narrate``, ``GET /metrics`` — JSON or ``?format=prometheus`` —
  ``GET /trace``, ``GET /healthz``);
* :mod:`repro.service.batcher` — the micro-batching request queue that
  coalesces concurrent narrations into one fused neural decode per batch
  window, with bounded-queue admission control;
* :mod:`repro.service.telemetry` — live request/latency/batching/cache
  metrics behind ``/metrics``, backed by the LANTERN-SCOPE histograms in
  :mod:`repro.obs`;
* :mod:`repro.service.client` — a small ``urllib`` client;
* :mod:`repro.service.fleet` — LANTERN-FLEET: a router process sharding
  ``/narrate`` across N worker processes by consistent-hashed plan
  signature, with heartbeats, draining restarts, and cache handoff.

Run it with ``python -m repro.service`` (see ``--help`` for knobs), or embed
it::

    from repro.service import LanternService, ServiceConfig

    service = LanternService()          # rule-based narration, all formats
    host, port = service.start()        # non-blocking; port=0 → ephemeral
    ...
    service.stop()
"""

from repro.service.batcher import BatcherConfig, MicroBatcher
from repro.service.client import LanternClient, LanternServiceError
from repro.service.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    LanternService,
    ServiceConfig,
    build_service,
)
from repro.service.telemetry import ServiceTelemetry

# fleet names resolve lazily (PEP 562) so that spawned worker processes
# (``python -m repro.service.fleet.worker``) never see the worker module
# imported as a side effect of the parent package — see
# ``repro/service/fleet/__init__.py`` for the companion mechanism
_FLEET_EXPORTS = {
    "ConsistentHashRing",
    "FleetConfig",
    "LanternFleet",
    "WorkerService",
    "plan_routing_signature",
}


def __getattr__(name: str):
    if name in _FLEET_EXPORTS:
        import importlib

        value = getattr(importlib.import_module("repro.service.fleet"), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | _FLEET_EXPORTS)


__all__ = [
    "BatcherConfig",
    "ConsistentHashRing",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "FleetConfig",
    "LanternClient",
    "LanternFleet",
    "LanternService",
    "LanternServiceError",
    "MicroBatcher",
    "ServiceConfig",
    "ServiceTelemetry",
    "WorkerService",
    "build_service",
    "plan_routing_signature",
]
