"""LANTERN-SERVE: the concurrent narration service.

The serving layer that exposes LANTERN to many clients at once:

* :mod:`repro.service.server` — a stdlib ``ThreadingHTTPServer`` JSON API
  (``POST /narrate``, ``GET /metrics`` — JSON or ``?format=prometheus`` —
  ``GET /trace``, ``GET /healthz``);
* :mod:`repro.service.batcher` — the micro-batching request queue that
  coalesces concurrent narrations into one fused neural decode per batch
  window, with bounded-queue admission control;
* :mod:`repro.service.telemetry` — live request/latency/batching/cache
  metrics behind ``/metrics``, backed by the LANTERN-SCOPE histograms in
  :mod:`repro.obs`;
* :mod:`repro.service.client` — a small ``urllib`` client.

Run it with ``python -m repro.service`` (see ``--help`` for knobs), or embed
it::

    from repro.service import LanternService, ServiceConfig

    service = LanternService()          # rule-based narration, all formats
    host, port = service.start()        # non-blocking; port=0 → ephemeral
    ...
    service.stop()
"""

from repro.service.batcher import BatcherConfig, MicroBatcher
from repro.service.client import LanternClient, LanternServiceError
from repro.service.server import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    LanternService,
    ServiceConfig,
    build_service,
)
from repro.service.telemetry import ServiceTelemetry

__all__ = [
    "BatcherConfig",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "LanternClient",
    "LanternService",
    "LanternServiceError",
    "MicroBatcher",
    "ServiceConfig",
    "ServiceTelemetry",
    "build_service",
]
