"""The micro-batching narration queue at the heart of LANTERN-SERVE.

HTTP handler threads never touch the :class:`~repro.core.lantern.Lantern`
directly: they :meth:`MicroBatcher.submit` a parsed operator tree and block
on a per-request event.  A single worker thread drains the queue and drives
:meth:`Lantern.describe_plans`, so

* concurrent requests are **coalesced into one fused neural decode** per
  batch (one padded encoder forward and one beam tensor for every
  neural-bound act of every plan in the window — the cross-plan
  generalization of PR 1's per-plan batching, including cross-plan act
  deduplication through the decode cache), and
* the facade's mutable state (habituation counters, wording-cycle
  exposures, the POEM narrator cache) is only ever touched from one thread,
  which is what makes batched narrations **token-identical** to sequential
  ``describe_plan`` calls in arrival order.

Batches form naturally: the worker takes the first waiting request, then
drains whatever else queued while the previous batch was decoding (up to
``max_batch_size``).  An optional ``batch_window_s`` adds a bounded wait to
coalesce more aggressively under bursty-but-sparse traffic; the default of 0
adds no latency to an idle service.

Admission control is a bounded queue: when ``max_queue_depth`` requests are
already waiting, :meth:`submit` raises
:class:`~repro.errors.ServiceOverloadError` immediately and the HTTP layer
answers 429 — shedding load beats collapsing under it.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.lantern import MODE_RULE, Lantern
from repro.core.narration import Narration
from repro.errors import ServiceOverloadError, ServiceTimeoutError
from repro.obs.tracing import NOOP_SPAN, Span
from repro.plans.operator_tree import OperatorTree
from repro.service.telemetry import ServiceTelemetry


@dataclass
class BatcherConfig:
    """Queueing and coalescing knobs."""

    #: largest number of requests fused into one describe_plans call
    max_batch_size: int = 32
    #: extra time the worker waits to grow a non-empty batch (0 = drain-only)
    batch_window_s: float = 0.0
    #: queued-request bound beyond which submissions are refused (HTTP 429)
    max_queue_depth: int = 256
    #: how long a submitter waits for its narration before giving up (503)
    request_timeout_s: float = 30.0


class _PendingRequest:
    """One submitted narration, owned by the submitting thread.

    Carries its request's span context across the thread boundary: the
    submitting handler owns the root span, the worker attaches completed
    ``queue_wait`` / ``batch_assembly`` / ``decode`` children to it from the
    perf-counter timestamps stamped at enqueue and dequeue.
    """

    __slots__ = (
        "tree", "mode", "event", "narration", "error",
        "span", "enqueued_at", "dequeued_at", "answered_at",
    )

    def __init__(self, tree: OperatorTree, mode: str, span: Span = NOOP_SPAN) -> None:
        self.tree = tree
        self.mode = mode
        self.event = threading.Event()
        self.narration: Optional[Narration] = None
        self.error: Optional[Exception] = None
        self.span = span
        self.enqueued_at = time.perf_counter()
        self.dequeued_at = self.enqueued_at
        self.answered_at: Optional[float] = None


class MicroBatcher:
    """Bounded request queue + single narration worker."""

    def __init__(
        self,
        lantern: Lantern,
        config: Optional[BatcherConfig] = None,
        telemetry: Optional[ServiceTelemetry] = None,
    ) -> None:
        self.lantern = lantern
        self.config = config or BatcherConfig()
        self.telemetry = telemetry
        self._queue: queue.Queue[_PendingRequest] = queue.Queue(
            maxsize=self.config.max_queue_depth
        )
        self._worker: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._worker is not None and self._worker.is_alive():
            return
        self._stopping.clear()
        self._worker = threading.Thread(
            target=self._run, name="lantern-serve-batcher", daemon=True
        )
        self._worker.start()

    def stop(self, drain_timeout_s: float = 5.0) -> None:
        """Stop the worker after letting queued requests finish.

        Requests that miss the drain window are failed **promptly** with
        :class:`~repro.errors.ServiceTimeoutError` — leaving them queued
        would park their submitter threads for the full
        ``request_timeout_s`` with no worker left to answer them.
        """
        self._stopping.set()
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout=drain_timeout_s)
        if worker is None or not worker.is_alive():
            self._worker = None
        # else: the worker is stuck mid-narration past the drain window.  The
        # reference is kept so start() cannot run a second worker alongside
        # it — two workers would race the facade's single-threaded state.
        # It exits on its own once it unblocks (_stopping stays set).
        self._fail_pending("the service shut down before this narration was started")

    def _fail_pending(self, reason: str) -> None:
        """Answer every still-queued request with a timeout error.

        Safe to run concurrently with a straggling worker: each request is
        popped by exactly one side, so it is either narrated or failed,
        never both and never neither.
        """
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                return
            request.error = ServiceTimeoutError(reason)
            request.event.set()

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    @property
    def draining(self) -> bool:
        """True while :meth:`stop` has been requested but the worker is still
        finishing queued narrations.  The serving layer reports this window as
        ``"draining"`` (HTTP 503) from ``GET /healthz`` so a fleet router can
        take the process out of rotation *before* it stops answering."""
        worker = self._worker
        return self._stopping.is_set() and worker is not None and worker.is_alive()

    # ------------------------------------------------------------------
    # submission (handler-thread side)
    # ------------------------------------------------------------------

    def submit(
        self,
        tree: OperatorTree,
        mode: str = MODE_RULE,
        timeout_s: Optional[float] = None,
        span: Optional[Span] = None,
    ) -> Narration:
        """Enqueue one narration and block until the worker answers it.

        ``span`` (when tracing) is the request's root span; the worker
        attaches the queue/batch/decode stage children to it.
        """
        submitted_at = time.perf_counter()
        worker = self._worker  # snapshot: a concurrent stop() may None it
        if self._stopping.is_set():
            # a stuck worker can survive stop() (reference kept, see above);
            # it must not accept new work — without this gate a submission
            # arriving after the drain would block for its full timeout
            raise ServiceTimeoutError("the narration service is shutting down")
        if worker is None or not worker.is_alive():
            raise ServiceTimeoutError("the narration worker is not running")
        request = _PendingRequest(tree, mode, span if span is not None else NOOP_SPAN)
        # queue wait is measured from submit entry: the admission-control
        # checks above are part of getting into the queue, not of admission
        # parsing, and counting them here keeps the trace's stages contiguous
        request.enqueued_at = submitted_at
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            raise ServiceOverloadError(
                f"narration queue is full ({self.config.max_queue_depth} waiting); retry later"
            ) from None
        # re-check after the enqueue: the worker can die (or stop() can
        # begin) between the checks above and the put, in which case the
        # request would sit unanswered until its full timeout.  An unset
        # event with no live, accepting worker means nobody will ever
        # answer — fail fast instead.  The request is failed in place (not
        # just raised past): it stays queued, and a worker started later
        # must see it as already answered rather than decode a narration
        # nobody is waiting for.
        worker = self._worker
        if (
            self._stopping.is_set() or worker is None or not worker.is_alive()
        ) and not request.event.is_set():
            request.error = ServiceTimeoutError(
                "the narration worker exited before the request could be handled"
            )
            request.event.set()
            raise request.error
        timeout = timeout_s if timeout_s is not None else self.config.request_timeout_s
        if not request.event.wait(timeout):
            # the worker may still answer later; the submitter has moved on
            raise ServiceTimeoutError(f"narration not produced within {timeout:.1f}s")
        if request.span and request.answered_at is not None:
            # result hand-off: from the batch decode finishing to this
            # submitter resuming (the worker's result-distribution loop plus
            # the thread wake) — without it the trace's stages would show an
            # unexplained hole after decode
            request.span.add_child_at("wake", request.answered_at, time.perf_counter())
        if request.error is not None:
            raise request.error
        assert request.narration is not None
        return request.narration

    def submit_many(
        self,
        trees: Sequence[OperatorTree],
        modes: Sequence[str],
        timeout_s: Optional[float] = None,
        span: Optional[Span] = None,
    ) -> list[Union[Narration, Exception]]:
        """Enqueue several narrations at once and wait for all of them.

        The batch-wire form of :meth:`submit`: all requests enter the queue
        back to back, so an idle worker drains them into **one fused
        decode** (up to ``max_batch_size``).  Per-request failures —
        admission refusals once the queue fills mid-batch, narration
        errors, timeouts — are returned *in place* as exceptions rather
        than aborting the call, mirroring ``describe_plans(collect_errors=
        True)`` so the serving layer can answer each batch item
        individually.  One shared deadline covers the whole batch.
        """
        submitted_at = time.perf_counter()
        request_span = span if span is not None else NOOP_SPAN
        results: list[Union[Narration, Exception]] = []
        pending: list[tuple[int, _PendingRequest]] = []
        worker = self._worker
        if self._stopping.is_set():
            error: Exception = ServiceTimeoutError("the narration service is shutting down")
            return [error] * len(trees)
        if worker is None or not worker.is_alive():
            error = ServiceTimeoutError("the narration worker is not running")
            return [error] * len(trees)
        for tree, mode in zip(trees, modes):
            request = _PendingRequest(tree, mode, request_span)
            request.enqueued_at = submitted_at
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                results.append(
                    ServiceOverloadError(
                        f"narration queue is full ({self.config.max_queue_depth} waiting); retry later"
                    )
                )
                continue
            pending.append((len(results), request))
            results.append(None)  # type: ignore[arg-type] - filled below
        # same post-enqueue liveness re-check as submit(): a worker dying (or
        # stop() starting) during the puts would otherwise strand the batch
        worker = self._worker
        if self._stopping.is_set() or worker is None or not worker.is_alive():
            for _, request in pending:
                if not request.event.is_set():
                    request.error = ServiceTimeoutError(
                        "the narration worker exited before the request could be handled"
                    )
                    request.event.set()
        timeout = timeout_s if timeout_s is not None else self.config.request_timeout_s
        deadline = time.monotonic() + timeout
        for position, request in pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not request.event.wait(remaining):
                results[position] = ServiceTimeoutError(
                    f"narration not produced within {timeout:.1f}s"
                )
                continue
            results[position] = (
                request.error if request.error is not None else request.narration
            )
        if request_span and pending:
            last = pending[-1][1]
            if last.answered_at is not None:
                request_span.add_child_at("wake", last.answered_at, time.perf_counter())
        return results

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------

    def _collect_batch(self) -> list[_PendingRequest]:
        """Block for the first request, then drain the natural batch."""
        try:
            first = self._queue.get(timeout=0.1)
        except queue.Empty:
            return []
        first.dequeued_at = time.perf_counter()
        batch = [first]
        deadline = time.monotonic() + self.config.batch_window_s
        while len(batch) < self.config.max_batch_size:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    request = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
            request.dequeued_at = time.perf_counter()
            batch.append(request)
        return batch

    def _cache_counters(self) -> tuple[int, int]:
        """Current (hits, misses) of the neural decode cache, or zeros."""
        neural = getattr(self.lantern, "neural", None)
        cache = getattr(neural, "decode_cache", None)
        if cache is None:
            return 0, 0
        return int(cache.hits), int(cache.misses)

    def _decode_precision(self) -> str:
        """The precision tag for decode spans (``"rule"`` when no model)."""
        neural = getattr(self.lantern, "neural", None)
        model = getattr(neural, "model", None)
        precision = getattr(model, "precision", None)
        return str(precision) if precision else "rule"

    def _run(self) -> None:
        while not (self._stopping.is_set() and self._queue.empty()):
            batch = self._collect_batch()
            # requests already answered (failed fast by submit's liveness
            # re-check before this worker started) must not be narrated again
            batch = [request for request in batch if not request.event.is_set()]
            if not batch:
                continue
            if self.telemetry is not None:
                self.telemetry.record_batch(len(batch))
                for request in batch:
                    self.telemetry.record_stage(
                        "queue_wait", max(request.dequeued_at - request.enqueued_at, 0.0)
                    )
            decode_start = time.perf_counter()
            hits_before, misses_before = self._cache_counters()
            try:
                results = self.lantern.describe_plans(
                    [request.tree for request in batch],
                    mode=[request.mode for request in batch],
                    collect_errors=True,
                )
            except Exception as error:  # noqa: BLE001 - fail the whole batch
                decode_end = time.perf_counter()
                if self.telemetry is not None:
                    self.telemetry.record_batch_failure(error)
                for request in batch:
                    request.error = error
                    self._attach_stage_spans(
                        request, decode_start, decode_end, len(batch),
                        0, 0, error=type(error).__name__,
                    )
                    request.answered_at = decode_end
                    request.event.set()
                continue
            decode_end = time.perf_counter()
            hits_after, misses_after = self._cache_counters()
            if self.telemetry is not None:
                for request in batch:
                    self.telemetry.record_stage(
                        "batch_assembly", max(decode_start - request.dequeued_at, 0.0)
                    )
                self.telemetry.record_stage("decode", decode_end - decode_start)
            for request, result in zip(batch, results):
                if isinstance(result, Exception):
                    request.error = result
                else:
                    request.narration = result
                self._attach_stage_spans(
                    request, decode_start, decode_end, len(batch),
                    hits_after - hits_before, misses_after - misses_before,
                )
                request.answered_at = decode_end
                request.event.set()

    def _attach_stage_spans(
        self,
        request: _PendingRequest,
        decode_start: float,
        decode_end: float,
        batch_size: int,
        cache_hits: int,
        cache_misses: int,
        error: Optional[str] = None,
    ) -> None:
        """Attach the worker-side stage children to the request's root span.

        The root span lives on the submitting handler thread; these children
        are complete (explicit start/end timestamps), so attaching them here
        never races the root's own lifecycle.
        """
        span = request.span
        if not span:
            return
        span.add_child_at("queue_wait", request.enqueued_at, request.dequeued_at)
        span.add_child_at("batch_assembly", request.dequeued_at, decode_start)
        decode_tags = {
            "batch_size": batch_size,
            "mode": request.mode,
            "precision": self._decode_precision(),
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
        }
        if error is not None:
            decode_tags["error"] = error
        span.add_child_at("decode", decode_start, decode_end, **decode_tags)
