"""The micro-batching narration queue at the heart of LANTERN-SERVE.

HTTP handler threads never touch the :class:`~repro.core.lantern.Lantern`
directly: they :meth:`MicroBatcher.submit` a parsed operator tree and block
on a per-request event.  A single worker thread drains the queue and drives
:meth:`Lantern.describe_plans`, so

* concurrent requests are **coalesced into one fused neural decode** per
  batch (one padded encoder forward and one beam tensor for every
  neural-bound act of every plan in the window — the cross-plan
  generalization of PR 1's per-plan batching, including cross-plan act
  deduplication through the decode cache), and
* the facade's mutable state (habituation counters, wording-cycle
  exposures, the POEM narrator cache) is only ever touched from one thread,
  which is what makes batched narrations **token-identical** to sequential
  ``describe_plan`` calls in arrival order.

Batches form naturally: the worker takes the first waiting request, then
drains whatever else queued while the previous batch was decoding (up to
``max_batch_size``).  An optional ``batch_window_s`` adds a bounded wait to
coalesce more aggressively under bursty-but-sparse traffic; the default of 0
adds no latency to an idle service.

Admission control is a bounded queue: when ``max_queue_depth`` requests are
already waiting, :meth:`submit` raises
:class:`~repro.errors.ServiceOverloadError` immediately and the HTTP layer
answers 429 — shedding load beats collapsing under it.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.core.lantern import MODE_RULE, Lantern
from repro.core.narration import Narration
from repro.errors import ServiceOverloadError, ServiceTimeoutError
from repro.plans.operator_tree import OperatorTree
from repro.service.telemetry import ServiceTelemetry


@dataclass
class BatcherConfig:
    """Queueing and coalescing knobs."""

    #: largest number of requests fused into one describe_plans call
    max_batch_size: int = 32
    #: extra time the worker waits to grow a non-empty batch (0 = drain-only)
    batch_window_s: float = 0.0
    #: queued-request bound beyond which submissions are refused (HTTP 429)
    max_queue_depth: int = 256
    #: how long a submitter waits for its narration before giving up (503)
    request_timeout_s: float = 30.0


class _PendingRequest:
    """One submitted narration, owned by the submitting thread."""

    __slots__ = ("tree", "mode", "event", "narration", "error")

    def __init__(self, tree: OperatorTree, mode: str) -> None:
        self.tree = tree
        self.mode = mode
        self.event = threading.Event()
        self.narration: Optional[Narration] = None
        self.error: Optional[Exception] = None


class MicroBatcher:
    """Bounded request queue + single narration worker."""

    def __init__(
        self,
        lantern: Lantern,
        config: Optional[BatcherConfig] = None,
        telemetry: Optional[ServiceTelemetry] = None,
    ) -> None:
        self.lantern = lantern
        self.config = config or BatcherConfig()
        self.telemetry = telemetry
        self._queue: queue.Queue[_PendingRequest] = queue.Queue(
            maxsize=self.config.max_queue_depth
        )
        self._worker: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._worker is not None and self._worker.is_alive():
            return
        self._stopping.clear()
        self._worker = threading.Thread(
            target=self._run, name="lantern-serve-batcher", daemon=True
        )
        self._worker.start()

    def stop(self, drain_timeout_s: float = 5.0) -> None:
        """Stop the worker after letting queued requests finish.

        Requests that miss the drain window are failed **promptly** with
        :class:`~repro.errors.ServiceTimeoutError` — leaving them queued
        would park their submitter threads for the full
        ``request_timeout_s`` with no worker left to answer them.
        """
        self._stopping.set()
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout=drain_timeout_s)
        if worker is None or not worker.is_alive():
            self._worker = None
        # else: the worker is stuck mid-narration past the drain window.  The
        # reference is kept so start() cannot run a second worker alongside
        # it — two workers would race the facade's single-threaded state.
        # It exits on its own once it unblocks (_stopping stays set).
        self._fail_pending("the service shut down before this narration was started")

    def _fail_pending(self, reason: str) -> None:
        """Answer every still-queued request with a timeout error.

        Safe to run concurrently with a straggling worker: each request is
        popped by exactly one side, so it is either narrated or failed,
        never both and never neither.
        """
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                return
            request.error = ServiceTimeoutError(reason)
            request.event.set()

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # submission (handler-thread side)
    # ------------------------------------------------------------------

    def submit(
        self, tree: OperatorTree, mode: str = MODE_RULE, timeout_s: Optional[float] = None
    ) -> Narration:
        """Enqueue one narration and block until the worker answers it."""
        worker = self._worker  # snapshot: a concurrent stop() may None it
        if self._stopping.is_set():
            # a stuck worker can survive stop() (reference kept, see above);
            # it must not accept new work — without this gate a submission
            # arriving after the drain would block for its full timeout
            raise ServiceTimeoutError("the narration service is shutting down")
        if worker is None or not worker.is_alive():
            raise ServiceTimeoutError("the narration worker is not running")
        request = _PendingRequest(tree, mode)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            raise ServiceOverloadError(
                f"narration queue is full ({self.config.max_queue_depth} waiting); retry later"
            ) from None
        # re-check after the enqueue: the worker can die (or stop() can
        # begin) between the checks above and the put, in which case the
        # request would sit unanswered until its full timeout.  An unset
        # event with no live, accepting worker means nobody will ever
        # answer — fail fast instead.  The request is failed in place (not
        # just raised past): it stays queued, and a worker started later
        # must see it as already answered rather than decode a narration
        # nobody is waiting for.
        worker = self._worker
        if (
            self._stopping.is_set() or worker is None or not worker.is_alive()
        ) and not request.event.is_set():
            request.error = ServiceTimeoutError(
                "the narration worker exited before the request could be handled"
            )
            request.event.set()
            raise request.error
        timeout = timeout_s if timeout_s is not None else self.config.request_timeout_s
        if not request.event.wait(timeout):
            # the worker may still answer later; the submitter has moved on
            raise ServiceTimeoutError(f"narration not produced within {timeout:.1f}s")
        if request.error is not None:
            raise request.error
        assert request.narration is not None
        return request.narration

    # ------------------------------------------------------------------
    # worker side
    # ------------------------------------------------------------------

    def _collect_batch(self) -> list[_PendingRequest]:
        """Block for the first request, then drain the natural batch."""
        try:
            first = self._queue.get(timeout=0.1)
        except queue.Empty:
            return []
        batch = [first]
        deadline = time.monotonic() + self.config.batch_window_s
        while len(batch) < self.config.max_batch_size:
            try:
                batch.append(self._queue.get_nowait())
                continue
            except queue.Empty:
                pass
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def _run(self) -> None:
        while not (self._stopping.is_set() and self._queue.empty()):
            batch = self._collect_batch()
            # requests already answered (failed fast by submit's liveness
            # re-check before this worker started) must not be narrated again
            batch = [request for request in batch if not request.event.is_set()]
            if not batch:
                continue
            if self.telemetry is not None:
                self.telemetry.record_batch(len(batch))
            try:
                results = self.lantern.describe_plans(
                    [request.tree for request in batch],
                    mode=[request.mode for request in batch],
                    collect_errors=True,
                )
            except Exception as error:  # noqa: BLE001 - fail the whole batch
                for request in batch:
                    request.error = error
                    request.event.set()
                continue
            for request, result in zip(batch, results):
                if isinstance(result, Exception):
                    request.error = result
                else:
                    request.narration = result
                request.event.set()
